"""Packaging for the DIABLO reproduction (src layout, stdlib-only runtime)."""

from setuptools import find_packages, setup

setup(
    name="diablo-repro",
    version="1.1.0",
    description=(
        "Reproduction of Fegaras & Noor, 'Translation of Array-Based Loops to "
        "Distributed Data-Parallel Programs' (PVLDB 2020): loop language, "
        "Figure 2 translation, comprehension optimizer, local DISC runtime, "
        "and the @diablo.jit compiled-function API"
    ),
    long_description=open("README.md", encoding="utf-8").read(),
    long_description_content_type="text/markdown",
    author="DIABLO reproduction contributors",
    license="MIT",
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages("src"),
    entry_points={
        "console_scripts": [
            "repro-eval=repro.evaluation.__main__:main",
            "repro-lint=repro.analysis.cli:main",
            "repro-worker=repro.runtime.cluster.worker:main",
        ],
    },
    extras_require={
        "test": ["pytest", "pytest-benchmark"],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3 :: Only",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Scientific/Engineering",
        "Topic :: System :: Distributed Computing",
    ],
)
