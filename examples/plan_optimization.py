"""Partition-aware plan optimization: PageRank with loop-invariant caching.

Runs the Figure 3.J PageRank loop program for several steps and prints what
the partition-aware planner (PR 5) does to it:

* the while-loop's invariant variables (the edge list ``E``, the out-degree
  vector ``C``) are detected by the runner, and their derived join/merge
  sides are evaluated, materialized and hash-partitioned **once**;
* iterations 2+ reuse the cached sides (``loop_invariant_reuses``) and
  shuffle only the mutated rank data -- the per-iteration structural metrics
  show ``shuffled_bytes`` dropping after iteration 1 and staying flat;
* merges whose two sides end up co-partitioned run as narrow zip stages with
  zero ShuffleStages (``narrow_joins``), reported by ``explain_metrics``
  together with the reason for every eliminated shuffle.

The same program is then re-run with ``plan_optimize=False`` to show the
baseline the planner beats -- results are identical either way.

Usage::

    PYTHONPATH=src python examples/plan_optimization.py
"""

from __future__ import annotations

from repro.algebra.explain import explain_metrics
from repro.evaluation.harness import diablo_for
from repro.programs import get_program
from repro.runtime.context import DistributedContext
from repro.workloads import workload_for_program

GRAPH_SIZE = 60
NUM_STEPS = 4


def run_pagerank(plan_optimize: bool):
    spec = get_program("pagerank")
    inputs = workload_for_program("pagerank", GRAPH_SIZE)
    inputs["num_steps"] = NUM_STEPS
    context = DistributedContext(num_partitions=4, plan_optimize=plan_optimize)
    with context:
        diablo = diablo_for(spec, context)
        result = diablo.compile(spec.source).run(**inputs)
        return result, context.metrics


def main() -> None:
    print(f"PageRank over a {GRAPH_SIZE}-node RMAT graph, {NUM_STEPS} steps\n")

    result, metrics = run_pagerank(plan_optimize=True)
    print("== per-iteration shuffle metrics (planner ON) ==")
    for entry in result.iteration_metrics:
        print(
            f"  iteration {entry['iteration']}: "
            f"{entry['shuffles']} shuffle(s), {entry['shuffled_bytes']} bytes, "
            f"{entry['loop_invariant_reuses']} loop-invariant reuse(s), "
            f"{entry['narrow_joins']} narrow join(s)"
        )
    first, second = result.iteration_metrics[0], result.iteration_metrics[1]
    assert second["shuffled_bytes"] < first["shuffled_bytes"], (
        "iteration 2+ must shuffle only the mutated side"
    )
    assert second["loop_invariant_reuses"] >= 1

    print("\n== explain_metrics report (planner ON) ==")
    for line in explain_metrics(metrics):
        print(f"  {line}")

    loop_lines = [line for line in result.trace if "loop-invariant" in line]
    print("\n== loop-invariant decisions from the run trace ==")
    for line in loop_lines[:6]:
        print(f"  {line}")

    baseline_result, baseline_metrics = run_pagerank(plan_optimize=False)
    print("\n== planner OFF (baseline) ==")
    print(
        f"  total: {baseline_metrics.shuffles} shuffle(s), "
        f"{baseline_metrics.shuffled_bytes} bytes shuffled"
    )
    print(
        f"  vs planner ON: {metrics.shuffles} shuffle(s), "
        f"{metrics.shuffled_bytes} bytes shuffled"
    )
    assert metrics.shuffled_bytes < baseline_metrics.shuffled_bytes
    assert baseline_result.array("P") == result.array("P"), "results must be identical"
    print("\nresults identical with and without the planner ✓")


if __name__ == "__main__":
    main()
