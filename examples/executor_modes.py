"""Executor modes and the lazy fusing engine.

The example builds the same pipeline three times -- once per executor mode --
and shows that (1) chained narrow operations fuse into a single per-partition
pass with zero intermediate datasets, (2) results are identical across
sequential, threaded and process-pool execution, and (3) a picklable stage
chain really crosses the process boundary while a closure falls back to the
driver.

Run with:  python examples/executor_modes.py
"""

import functools
import operator

from repro import Diablo, DistributedContext
from repro.workloads.generators import random_doubles

PAGERANK_STYLE_SUM = """
var sum: double = 0.0;
for v in V do
  if (v < 100)
    sum += v;
"""


def fused_pipeline(ctx: DistributedContext) -> dict:
    """A map→filter→map_values chain ending in a reduceByKey."""
    records = ctx.parallelize([(i % 10, float(i)) for i in range(10_000)])
    return (
        records.map(lambda pair: (pair[0], pair[1] + 1.0))
        .filter(lambda pair: pair[0] != 3)
        .map_values(lambda value: value * 2.0)
        .reduce_by_key(lambda a, b: a + b)
        .collect_as_map()
    )


def main() -> None:
    print("== One fused pass for a three-operator chain ==")
    with DistributedContext(num_partitions=4) as ctx:
        base = ctx.parallelize(range(10_000)).materialize()
        ctx.metrics.reset()
        chain = base.map(lambda x: x + 1).filter(lambda x: x % 2 == 0).map(lambda x: x * 10)
        print(f"datasets materialized after chaining: {ctx.metrics.datasets_created}")
        total = chain.sum()
        print(
            f"after forcing: fused_stages={ctx.metrics.fused_stages}, "
            f"fused_operators={ctx.metrics.fused_operators}, "
            f"datasets_created={ctx.metrics.datasets_created}, sum={total}"
        )
        assert ctx.metrics.fused_stages == 1 and ctx.metrics.fused_operators == 3

    print("\n== Identical results across executor modes ==")
    results = {}
    for mode in ("sequential", "threads", "processes"):
        with DistributedContext(num_partitions=4, executor=mode) as mode_ctx:
            results[mode] = fused_pipeline(mode_ctx)
        print(f"{mode:>10}: {len(results[mode])} keys, key 0 -> {results[mode][0]:.1f}")
    assert results["sequential"] == results["threads"] == results["processes"]

    print("\n== Process-pool dispatch vs driver fallback ==")
    with DistributedContext(num_partitions=4, executor="processes") as pctx:
        picklable = pctx.parallelize(range(1_000)).map(functools.partial(operator.mul, 3))
        picklable.count()
        crossed = pctx.metrics.process_fallbacks == 0
        closure = pctx.parallelize(range(1_000)).map(lambda x: x * 3)
        closure.count()
        fell_back = pctx.metrics.process_fallbacks == 1
    print(f"functools.partial chain crossed the process boundary: {crossed}")
    print(f"lambda chain fell back to the driver: {fell_back}")
    assert crossed and fell_back

    print("\n== Translated loop program under each executor ==")
    values = random_doubles(20_000, seed=7)
    expected = sum(v for v in values if v < 100)
    for mode in ("sequential", "threads", "processes"):
        with DistributedContext(num_partitions=4, executor=mode) as mode_ctx:
            result = Diablo(mode_ctx).run(PAGERANK_STYLE_SUM, V=values)
            assert abs(result["sum"] - expected) < 1e-6
            print(f"{mode:>10}: sum = {result['sum']:.3f}")
    print("all executors agree with the driver-side expectation")


if __name__ == "__main__":
    main()
