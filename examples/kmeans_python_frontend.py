"""KMeans two ways: the Appendix-B loop program and a Python-function frontend.

Part 1 runs one step of the paper's KMeans loop program (with the custom
arg-min / average monoids) and compares the new centroids against the
hand-written broadcast baseline, highlighting the shuffle-volume gap the paper
discusses (DIABLO joins points with centroids; the expert broadcasts them).

Part 2 shows the Python frontend: an ordinary Python function with loops is
converted through the standard ``ast`` module and compiled by the same
pipeline.

Run with:  python examples/kmeans_python_frontend.py
"""

import math

from repro import Diablo, DistributedContext, from_python_function
from repro.baselines import kmeans as handwritten
from repro.evaluation.harness import diablo_for
from repro.programs import get_program
from repro.workloads.generators import kmeans_grid_points, kmeans_initial_centroids

POINTS = 600


def cluster_size_histogram(assignments, counts, total):
    """A plain Python loop program: per-cluster point counts plus a total."""
    for a in assignments:
        counts[a] += 1
        total += 1


def main() -> None:
    points = kmeans_grid_points(POINTS, seed=5)
    centroids = kmeans_initial_centroids()
    inputs = {"P": points, "C": centroids, "N": len(points), "K": len(centroids)}

    # Part 1: the Appendix-B loop program through DIABLO.  Contexts are
    # context managers, so the worker pools never leak.
    spec = get_program("kmeans")
    with DistributedContext(num_partitions=4) as context, DistributedContext(
        num_partitions=4
    ) as baseline_context:
        diablo = diablo_for(spec, context)
        result = diablo.compile(spec.source).run(**inputs)
        new_centroids = result.array("C")

        baseline = handwritten.distributed(baseline_context, inputs)
        worst = max(
            max(abs(a - b) for a, b in zip(new_centroids[index], baseline["C"][index], strict=False))
            for index in baseline["C"]
        )
        print(f"KMeans step on {POINTS} points, {len(centroids)} centroids")
        print(f"  max centroid difference vs hand-written: {worst:.2e}")
        print(
            f"  shuffled records -- DIABLO: {context.metrics.shuffled_records}, "
            f"hand-written (broadcast): {baseline_context.metrics.shuffled_records}"
        )
        assert worst < 1e-9

    # Part 2: the Python frontend on a restricted Python function.  Assign each
    # point to its nearest centroid in the driver, then count cluster sizes
    # with a translated Python loop.
    def nearest(point):
        return min(
            centroids, key=lambda index: math.dist(point, centroids[index])
        )

    assignments = [nearest(point) for point in points]
    with Diablo(DistributedContext(num_partitions=4)) as frontend_diablo:
        program = from_python_function(cluster_size_histogram)
        compiled = frontend_diablo.compile(program)
        counted = compiled.run(assignments=assignments, counts={}, total=0)
        sizes = counted.array("counts")
        print(
            f"  python-frontend cluster counts: {counted['total']} points in {len(sizes)} clusters"
        )
        assert counted["total"] == POINTS
        assert sum(sizes.values()) == POINTS


if __name__ == "__main__":
    main()
