"""The ``@diablo.jit`` API: compiled loop functions with plain-Python calls.

The paper's pitch is that programmers write ordinary imperative loops and the
system turns them into distributed data-parallel programs.  The jit API makes
that literal: decorate a Python function, call it with positional arguments,
get its ``return`` values back -- while translation happens once, lands in a
shared compilation cache, and every call executes on the DISC runtime.

The example shows (1) a jit PageRank driver with typed parameters and a value
return, checked against the sequential reference interpreter, (2) the
compilation cache across an iterative sweep, and (3) scoped configuration
overrides with ``diablo.options``.

Run with:  PYTHONPATH=src python examples/jit_api.py
"""

import repro.api as diablo
from repro.api import Matrix, Vector
from repro.loop_lang.interpreter import interpret_program
from repro.workloads import workload_for_program

VERTICES = 60


@diablo.jit
def pagerank(E: Matrix, N: int, num_steps: int):
    P: Vector = Vector()
    C: Vector = Vector()
    b: float = 0.85
    for i in range(1, N + 1):
        C[i] = 0
        P[i] = 1.0 / N
    for i in range(1, N + 1):
        for j in range(1, N + 1):
            if E[i, j]:
                C[i] += 1
    k: int = 0
    while k < num_steps:
        Q: Matrix = Matrix()
        k += 1
        for i in range(1, N + 1):
            for j in range(1, N + 1):
                if E[i, j]:
                    Q[i, j] = P[i]
        for i in range(1, N + 1):
            P[i] = (1 - b) / N
        for i in range(1, N + 1):
            for j in range(1, N + 1):
                P[i] += b * Q[j, i] / C[j]
    return P


def main() -> None:
    workload = workload_for_program("pagerank", VERTICES)
    E, vertices = workload["E"], workload["N"]
    print(f"jit function: {pagerank!r}")
    declared = {name: info.kind for name, info in pagerank.input_types.items()}
    print(f"declared inputs: {declared}")

    with pagerank:  # releases the runtime's worker pools on exit
        # 1. Call it like a Python function; `return P` comes back as a Dataset.
        diablo.cache_clear()
        ranks = pagerank(E, vertices, 3).collect_as_map()
        oracle = interpret_program(pagerank.program, {"E": E, "N": vertices, "num_steps": 3})
        worst = max(abs(ranks[v] - oracle["P"][v]) for v in oracle["P"])
        print(f"3-step PageRank over {vertices} vertices: "
              f"max |jit - interpreter| = {worst:.2e}")
        assert worst < 1e-9

        # 2. An iterative sweep pays translation exactly once.
        for steps in (1, 2, 3, 4):
            pagerank(E, vertices, steps)
        info = diablo.cache_info()
        print(f"after the sweep: {info} -- one translation, {info.hits} cache hits")
        assert info.misses == 1 and info.hits >= 4

        # 3. Scoped configuration: same translation, different runtime.
        with diablo.options(executor_mode="processes", num_partitions=4):
            ranks_parallel = pagerank(E, vertices, 3).collect_as_map()
        assert max(abs(ranks_parallel[v] - ranks[v]) for v in ranks) < 1e-9
        print("processes executor agrees with the sequential run")
        print(f"cache after the executor switch: {diablo.cache_info()}")


if __name__ == "__main__":
    main()
