"""Cluster mode: the translated program on real multi-process workers.

``executor_mode="cluster"`` runs stages on long-lived worker *processes*
connected over TCP -- the same plans as the in-process executors, but with
partitions resident in worker memory and shuffle payloads moving directly
worker-to-worker (never through the driver).  With no ``cluster_address``
the context spawns a :class:`LocalCluster` of worker subprocesses on
loopback; pointing ``cluster_address`` at a host:port instead makes the
driver wait for externally started ``repro-worker`` daemons, which is the
two-terminal setup described in the README.

The example compiles a loop program once, runs it on a 2-worker cluster and
under the sequential in-process executor, asserts the outputs are
bit-identical, and prints the cluster-side metrics: how many shuffle
payloads moved between workers, how many were served locally, and that zero
payload bytes transited the driver.

Run with:  python examples/cluster_mode.py
"""

from repro import Diablo, DistributedContext
from repro.runtime.cluster import ClusterContext

GROUP_BY = """
var C: vector[double] = vector();
for v in V do
  C[v.K] += v.A;
"""

PAGERANK_STYLE = """
var C: vector[double] = vector();
for e in E do
  C[e.Dst] += R[e.Src] / e.Deg;
"""


def run(diablo, source, **inputs):
    result = diablo.run(source, **inputs)
    return {name: dict(result.array(name)) for name in ("C",)}


def main() -> None:
    records = [{"K": i % 40, "A": float(i)} for i in range(8_000)]
    edges = [{"Src": i % 50, "Dst": (i * 7) % 50, "Deg": float(1 + i % 4)} for i in range(2_000)]
    ranks = [1.0 / 50.0] * 50

    print("== Group By: cluster (2 workers) vs sequential ==")
    cluster = ClusterContext(num_partitions=4, cluster_workers=2)
    with Diablo(cluster) as on_cluster, Diablo(DistributedContext(num_partitions=4)) as on_driver:
        grouped = run(on_cluster, GROUP_BY, V=records)
        sequential = run(on_driver, GROUP_BY, V=records)
        assert grouped == sequential, "cluster outputs must be bit-identical to sequential"
        print(f"groups: {len(grouped['C'])}, bit-identical to the sequential executor")

        metrics = cluster.metrics
        print(f"shuffle payloads fetched worker-to-worker: {metrics.worker_payload_fetches}")
        print(f"payloads served from local worker memory: {metrics.worker_payload_local_reads}")
        print(f"worker-to-worker payload bytes: {metrics.worker_payload_bytes}")
        print(f"payload bytes through the driver: {metrics.driver_payload_bytes}")
        assert metrics.driver_payload_bytes == 0, "reduce inputs must never transit the driver"
        assert metrics.cluster_fallbacks == 0, "every task batch must run on the workers"
        assert metrics.worker_payload_fetches + metrics.worker_payload_local_reads > 0

        # A second program on the same cluster: the workers are long-lived,
        # so there is no per-run process spawn cost (unlike
        # executor="processes").
        print("\n== PageRank-style update on the same workers ==")
        ranked = run(on_cluster, PAGERANK_STYLE, E=edges, R=ranks)
        sequential = run(on_driver, PAGERANK_STYLE, E=edges, R=ranks)
        assert ranked == sequential
        print(f"rank entries: {len(ranked['C'])}, still bit-identical")

    # The config route: executor_mode="cluster" in DiabloConfig builds the
    # same backend through DistributedContext.from_config.
    print("\n== Config plumbing ==")
    from repro import DiabloConfig

    context = DiabloConfig(executor_mode="cluster", cluster_workers=2, num_partitions=4).make_context()
    try:
        assert isinstance(context, ClusterContext)
        total = context.parallelize(range(1_000)).map(lambda x: x * 2).sum()
        assert total == 999_000
        print("DiabloConfig(executor_mode='cluster') -> ClusterContext, sum checks out")
    finally:
        context.shutdown()


if __name__ == "__main__":
    main()
