"""PageRank over an RMAT graph: an iterative analytics pipeline.

This is the workload the paper's introduction motivates: a scientist writes
plain loops over adjacency matrices; DIABLO turns them into shuffling dataflow
so the same program runs on a cluster runtime.  The example generates a
synthetic RMAT graph, runs three PageRank iterations through the translated
loop program, compares the ranks against the hand-written dataflow baseline,
and prints the highest-ranked vertices.

Run with:  python examples/pagerank_pipeline.py
"""

from repro.baselines import pagerank as handwritten
from repro.evaluation.harness import diablo_for
from repro.programs import get_program
from repro.runtime.context import DistributedContext
from repro.workloads.rmat import adjacency_matrix, rmat_graph

VERTICES = 150
STEPS = 3


def main() -> None:
    edges = rmat_graph(VERTICES, edges_per_vertex=8, seed=11)
    inputs = {"E": adjacency_matrix(edges), "N": VERTICES, "num_steps": STEPS}
    print(f"RMAT graph: {VERTICES} vertices, {len(edges)} edges, {STEPS} PageRank steps")

    spec = get_program("pagerank")
    with DistributedContext(num_partitions=4) as context:
        diablo = diablo_for(spec, context)
        translated = diablo.compile(spec.source).run(**inputs)
        ranks = translated.array("P")
        print(
            f"translated program: {context.metrics.shuffles} shuffle stages, "
            f"{context.metrics.shuffled_records} shuffled records"
        )

    with DistributedContext(num_partitions=4) as baseline_context:
        baseline = handwritten.distributed(baseline_context, inputs)
        worst = max(abs(ranks[v] - baseline["P"][v]) for v in baseline["P"])
        print(
            f"hand-written baseline: {baseline_context.metrics.shuffles} shuffle stages, "
            f"{baseline_context.metrics.shuffled_records} shuffled records"
        )
    print(f"max rank difference vs baseline: {worst:.2e}")
    assert worst < 1e-9

    top = sorted(ranks.items(), key=lambda item: item[1], reverse=True)[:5]
    print("top-5 vertices by rank:")
    for vertex, rank in top:
        print(f"  vertex {vertex:>4}  rank {rank:.6f}")


if __name__ == "__main__":
    main()
