"""Quickstart: translate array-based loops to distributed data-parallel plans.

The example compiles three small loop programs -- a conditional aggregation, a
per-key aggregation and sparse matrix multiplication -- runs them on the local
DISC runtime, shows the generated target code, and checks the results against
the sequential reference interpreter.

Run with:  python examples/quickstart.py
"""

from repro import Diablo, DistributedContext
from repro.workloads.generators import random_doubles, random_matrix

CONDITIONAL_SUM = """
var sum: double = 0.0;
for v in V do
  if (v < 100)
    sum += v;
"""

GROUP_BY = """
var C: vector[double] = vector();
for v in V do
  C[v.K] += v.A;
"""

MATRIX_MULTIPLICATION = """
var R: matrix[double] = matrix();
for i = 0, n-1 do
  for j = 0, n-1 do {
    R[i,j] := 0.0;
    for k = 0, n-1 do
      R[i,j] += M[i,k]*N[k,j];
  };
"""


def main() -> None:
    # The facade is a context manager: worker pools shut down on exit.
    with Diablo(DistributedContext(num_partitions=4)) as diablo:
        # 1. A conditional aggregation over a plain collection.
        values = random_doubles(10_000, seed=1)
        program = diablo.compile(CONDITIONAL_SUM)
        print("== Conditional Sum: generated target code ==")
        print(program.explain())
        result = program.run(V=values)
        expected = sum(v for v in values if v < 100)
        print(f"distributed sum = {result['sum']:.3f}, expected {expected:.3f}\n")

        # 2. A per-key aggregation (group-by + sum).
        records = [{"K": i % 50, "A": float(i)} for i in range(5_000)]
        grouped = diablo.run(GROUP_BY, V=records)
        print("== Group By ==")
        print(f"number of groups: {len(grouped.array('C'))}")
        print(f"C[0] = {grouped.array('C')[0]}\n")

        # 3. Sparse matrix multiplication: the loop with recurrences becomes a
        #    join + reduceByKey, exactly as in Section 1 of the paper.
        n = 12
        left = random_matrix(n, n, seed=2)
        right = random_matrix(n, n, seed=3)
        product = diablo.run(MATRIX_MULTIPLICATION, M=left, N=right, n=n)
        sequential = diablo.interpret(MATRIX_MULTIPLICATION, {"M": left, "N": right, "n": n})
        worst = max(
            abs(product.array("R")[(i, j)] - sequential["R"][(i, j)])
            for i in range(n)
            for j in range(n)
        )
        print("== Matrix Multiplication ==")
        print(f"max |distributed - sequential| = {worst:.2e}")
        assert worst < 1e-9, "translated program must agree with the interpreter"
        print("translated program agrees with the sequential interpreter")


if __name__ == "__main__":
    main()
