"""Packed (tiled) matrices: the Section 5 scenario.

Sparse arrays are the translator's abstract representation; real deployments
often store matrices as dense tiles.  This example packs two matrices into
tiles, runs block multiplication and the shuffle-free tile merge (the paper's
⊳′), and checks the results against the sparse representation.

Run with:  python examples/tiled_matrices.py
"""

from repro.arrays.sparse import SparseMatrix
from repro.arrays.tiles import TiledMatrix
from repro.runtime.context import DistributedContext
from repro.workloads.generators import random_matrix

SIZE = 24
TILE = 8


def main() -> None:
    with DistributedContext(num_partitions=4) as context:
        _run(context)


def _run(context: DistributedContext) -> None:
    left_entries = random_matrix(SIZE, SIZE, seed=1)
    right_entries = random_matrix(SIZE, SIZE, seed=2)

    left_tiled = TiledMatrix.from_dict(context, left_entries, (SIZE, SIZE), tile_size=TILE)
    right_tiled = TiledMatrix.from_dict(context, right_entries, (SIZE, SIZE), tile_size=TILE)
    print(f"{SIZE}x{SIZE} matrices packed into {left_tiled.tile_count()} tiles of {TILE}x{TILE}")

    # Block multiplication over tiles vs the sparse join-based multiplication.
    tiled_product = left_tiled.multiply(right_tiled).to_dict()
    sparse_product = (
        SparseMatrix.from_dict(context, left_entries)
        .multiply(SparseMatrix.from_dict(context, right_entries))
        .to_dict()
    )
    worst = max(abs(tiled_product[key] - sparse_product[key]) for key in sparse_product)
    print(f"tiled vs sparse multiplication: max difference {worst:.2e}")
    assert worst < 1e-9

    # The ⊳' merge of co-partitioned tiled matrices moves no data.
    partitioner = context.hash_partitioner()
    left_ready = TiledMatrix(left_tiled.data.partition_by(partitioner), left_tiled.shape, TILE)
    right_ready = TiledMatrix(right_tiled.data.partition_by(partitioner), right_tiled.shape, TILE)
    context.metrics.reset()
    merged = left_ready.merge_tiles(right_ready, lambda a, b: a + b)
    print(f"shuffles during the tile merge: {context.metrics.shuffles}")
    assert context.metrics.shuffles == 0
    assert merged.to_dict()[(0, 0)] == left_entries[(0, 0)] + right_entries[(0, 0)]


if __name__ == "__main__":
    main()
