"""Print the shuffle/combiner/spill metrics of the wide-stage workloads.

The CI benchmark-smoke job runs this after the benchmark suite so shuffle
regressions (extra stages, lost combiner effectiveness, a join silently
switching strategy) are visible in plain logs.  It runs the two
shuffle-dominated Figure 3 workloads -- group_by and matrix_multiplication --
as both the translated DIABLO program and the hand-written baseline, under the
sequential and processes executors, and prints the structural metrics plus one
physical plan.  A final section reruns group_by with a deliberately tiny
``spill_threshold_bytes`` so the out-of-core spill counters (``spilled_bytes``
/ ``spill_files`` / ``peak_shuffle_memory``) show up in the report.

Usage::

    PYTHONPATH=src python examples/shuffle_metrics_report.py
"""

from __future__ import annotations

from repro.algebra.explain import explain_metrics
from repro.baselines import get_baseline
from repro.evaluation.harness import diablo_for
from repro.programs import get_program
from repro.runtime.context import DistributedContext
from repro.workloads import workload_for_program

WORKLOADS = {"group_by": 2_000, "matrix_multiplication": 8}
EXECUTORS = ("sequential", "processes")


def report(title: str, context: DistributedContext) -> None:
    print(f"\n== {title} ==")
    for line in explain_metrics(context.metrics):
        print(f"  {line}")


def main() -> None:
    for name, size in WORKLOADS.items():
        inputs = workload_for_program(name, size)
        for executor in EXECUTORS:
            with DistributedContext(num_partitions=4, executor=executor) as context:
                spec = get_program(name)
                diablo = diablo_for(spec, context)
                diablo.compile(spec.source).run(**inputs)
                report(f"DIABLO {name} [{executor}]", context)
            with DistributedContext(num_partitions=4, executor=executor) as context:
                get_baseline(name).distributed(context, inputs)
                report(f"hand-written {name} [{executor}]", context)

    # The same group_by, but forced out-of-core: a 4 KiB map-side budget
    # makes every shuffle spill framed-pickle runs to disk, and the spill
    # counters appear in the metrics report.
    name, size = "group_by", WORKLOADS["group_by"]
    inputs = workload_for_program(name, size)
    with DistributedContext(
        num_partitions=4, spill_threshold_bytes=4096
    ) as context:
        spec = get_program(name)
        diablo = diablo_for(spec, context)
        diablo.compile(spec.source).run(**inputs)
        report(f"DIABLO {name} [sequential, spill_threshold_bytes=4096]", context)
        print(
            f"  (spilled {context.metrics.spilled_bytes} bytes across "
            f"{context.metrics.spill_files} files; peak shuffle memory "
            f"{context.metrics.peak_shuffle_memory} bytes)"
        )

    # One pending physical plan, as Dataset.explain() renders it.
    with DistributedContext(num_partitions=4) as context:
        words = context.parallelize(["a b", "b c", "c a"] * 4)
        counts = (
            words.flat_map(str.split)
            .map(lambda word: (word, 1))
            .reduce_by_key(lambda a, b: a + b)
        )
        print("\n== physical plan of a pending word count ==")
        print(counts.explain())


if __name__ == "__main__":
    main()
