"""Skewed (Zipf) workload variants: the adaptive execution ablation.

The Figure 3 panels use uniform key distributions, where the PR 7 adaptive
layer deliberately does nothing.  This module runs Zipf-skewed variants of
the key-grouping workloads twice on identical inputs -- adaptive off (the
static plan) and adaptive on -- and records both series into
``BENCH_results.json`` with the new ``plan_cache_hits`` / ``salted_keys`` /
``adaptive_decisions`` counters, so the skew behaviour is tracked across PRs.

Assertions encode the PR's acceptance criteria:

* the skewed ``group_by_key`` (no map-side combiner statically, so every
  record crosses the shuffle) must run at least 2x faster with adaptive
  map-side grouping engaged, with bit-identical groups;
* the skewed reduce must salt its hot keys (``salted_keys > 0``) and still
  produce bit-identical totals.
"""

from __future__ import annotations

import time

from benchmarks.conftest import BENCH_SIZE_SCALE, record_run
from repro.evaluation.harness import diablo_for, translated_outputs
from repro.programs import get_program
from repro.runtime.context import DistributedContext
from repro.workloads import skewed_pairs, skewed_workload_for_program

#: Enough records that shuffle volume dominates the wall clock, few enough
#: keys that the sampled duplication safely clears the map-side-grouping
#: threshold (uniform 50 keys already averages >1000 duplicates each here).
SKEW_SIZE = 60_000 * BENCH_SIZE_SCALE
SKEW_KEYS = 50

ROUNDS = 3


def _skewed_records() -> list[tuple[int, float]]:
    return [(row["K"], row["A"]) for row in skewed_pairs(SKEW_SIZE, num_keys=SKEW_KEYS)]


def _run_group_by_key(records, adaptive: bool):
    """Best-of-N wall time for a skewed group_by_key; returns (wall, groups, metrics)."""
    with DistributedContext(num_partitions=4, adaptive=adaptive) as context:
        dataset = context.parallelize(records)
        dataset.group_by_key().materialize()  # warm-up: exclude planning noise
        timings = []
        for _ in range(ROUNDS):
            context.metrics.reset()
            started = time.perf_counter()
            groups = dict(dataset.group_by_key().collect())
            timings.append(time.perf_counter() - started)
        system = "adaptive" if adaptive else "static"
        record_run(
            "skewed_group_by_key",
            SKEW_SIZE,
            system,
            min(timings),
            context,
            rounds=ROUNDS,
            method="best-of-n",
        )
        return min(timings), groups, context.metrics.snapshot()


def test_skewed_group_by_key_adaptive_speedup():
    """Map-side grouping must be worth >= 2x on Zipf-skewed groups.

    Statically, groupByKey has no combiner, so all ``SKEW_SIZE`` records
    cross the shuffle; the adaptive sampler detects the duplication and
    ships one partial group per (task, key) instead.
    """
    records = _skewed_records()
    static_wall, static_groups, _ = _run_group_by_key(records, adaptive=False)
    adaptive_wall, adaptive_groups, adaptive_metrics = _run_group_by_key(records, adaptive=True)
    assert adaptive_metrics["adaptive_decisions"] >= 1, "adaptive sampler never engaged"
    assert adaptive_groups == static_groups, "adaptive grouping diverged"
    assert adaptive_wall * 2 <= static_wall, (
        f"adaptive skewed group_by_key only {static_wall / adaptive_wall:.2f}x faster "
        f"({adaptive_wall:.4f}s vs {static_wall:.4f}s)"
    )


def test_skewed_reduce_salts_hot_keys():
    """The Zipf head is hot enough to salt; totals stay bit-identical.

    ``reduce_by_key`` already runs a map-side combiner, so the win is
    structural (one partial per (task, hot key) instead of a single reducer
    owning the head key) -- asserted via the counters, not the wall clock.
    """
    records = _skewed_records()
    with DistributedContext(num_partitions=4, adaptive=False) as context:
        static_totals = dict(
            context.parallelize(records).reduce_by_key(lambda a, b: a + b).collect()
        )
    with DistributedContext(num_partitions=4, adaptive=True) as context:
        started = time.perf_counter()
        adaptive_totals = dict(
            context.parallelize(records).reduce_by_key(lambda a, b: a + b).collect()
        )
        wall_seconds = time.perf_counter() - started
        assert context.metrics.salted_keys > 0, "no hot key was salted"
        assert context.metrics.adaptive_decisions >= 1
        record_run("skewed_reduce_by_key", SKEW_SIZE, "adaptive", wall_seconds, context)
    assert adaptive_totals == static_totals, "salted reduce diverged"


def test_skewed_diablo_group_by_records_counters():
    """The translated Group By program on Zipf inputs, both modes recorded.

    ``C[v.K] += v.A`` lowers to a reduceByKey, so this tracks the salting
    path through the full DIABLO pipeline; the adaptive run must match the
    static run exactly.
    """
    size = 20_000 * BENCH_SIZE_SCALE
    inputs = skewed_workload_for_program("group_by", size)
    spec = get_program("group_by")
    outputs = {}
    for adaptive in (False, True):
        context = DistributedContext(num_partitions=4, adaptive=adaptive)
        compiled = diablo_for(spec, context).compile(spec.source)
        started = time.perf_counter()
        result = compiled.run(**inputs)
        wall_seconds = time.perf_counter() - started
        system = "diablo-skewed-adaptive" if adaptive else "diablo-skewed-static"
        record_run("group_by", size, system, wall_seconds, context)
        outputs[adaptive] = translated_outputs("group_by", result)
        if not adaptive:
            assert context.metrics.adaptive_decisions == 0
            assert context.metrics.salted_keys == 0
    assert outputs[True] == outputs[False], "adaptive DIABLO group_by diverged"
