"""Ablation: the Section 3.6 / Section 4 comprehension optimizations.

Not a paper figure, but DESIGN.md calls these design choices out: loop-range
elimination (Section 3.6) removes the join between index ranges and arrays,
and the Rule 16/17 group-by eliminations turn per-key machinery into plain
aggregations.  The benchmark runs matrix multiplication and the vector-copy
kernel with the optimizer on and off; the assertions check the structural
effect (fewer rewrites means more work at run time).
"""

import pytest

from repro.evaluation.harness import diablo_for
from repro.programs import get_program
from repro.runtime.context import DistributedContext
from repro.workloads import workload_for_program

MATMUL_SIZE = 8
VECTOR_SOURCE = "for i = 0, 499 do V[i] += W[i];"


@pytest.mark.parametrize("optimized", [True, False], ids=["optimized", "unoptimized"])
def test_matrix_multiplication_with_and_without_optimizations(benchmark, optimized):
    spec = get_program("matrix_multiplication")
    inputs = workload_for_program("matrix_multiplication", MATMUL_SIZE)
    diablo = diablo_for(spec, DistributedContext(num_partitions=4), optimize=optimized)
    compiled = diablo.compile(spec.source)
    if optimized:
        assert diablo.compiler.optimize
    benchmark.pedantic(lambda: compiled.run(**inputs), rounds=2, iterations=1)
    benchmark.extra_info["optimized"] = optimized


@pytest.mark.parametrize("optimized", [True, False], ids=["optimized", "unoptimized"])
def test_vector_increment_with_and_without_group_by_elimination(benchmark, optimized):
    diablo = diablo_for(get_program("sum"), DistributedContext(num_partitions=4), optimize=optimized)
    compiled = diablo.compile(VECTOR_SOURCE)
    stats = compiled.translation.optimizer_stats
    if optimized:
        assert stats.unique_key_group_bys_removed >= 1
    else:
        assert stats.total() == 0
    inputs = {"V": {}, "W": {i: float(i) for i in range(500)}}
    result = benchmark.pedantic(lambda: compiled.run(**inputs), rounds=2, iterations=1)
    assert result.array("V")[499] == 499.0
    benchmark.extra_info["optimized"] = optimized
