"""Ablation: the Section 3.6 / Section 4 comprehension optimizations.

Not a paper figure, but DESIGN.md calls these design choices out: loop-range
elimination (Section 3.6) removes the join between index ranges and arrays,
and the Rule 16/17 group-by eliminations turn per-key machinery into plain
aggregations.  The benchmark runs matrix multiplication and the vector-copy
kernel with the optimizer on and off; the assertions check the structural
effect (fewer rewrites means more work at run time).
"""

import pytest

from repro.evaluation.harness import diablo_for
from repro.programs import get_program
from repro.runtime.context import DistributedContext
from repro.workloads import skewed_workload_for_program, workload_for_program

MATMUL_SIZE = 8
VECTOR_SOURCE = "for i = 0, 499 do V[i] += W[i];"
SKEWED_GROUP_SIZE = 8_000
PAGERANK_SIZE = 40
PAGERANK_STEPS = 4


@pytest.mark.parametrize("optimized", [True, False], ids=["optimized", "unoptimized"])
def test_matrix_multiplication_with_and_without_optimizations(benchmark, optimized):
    spec = get_program("matrix_multiplication")
    inputs = workload_for_program("matrix_multiplication", MATMUL_SIZE)
    diablo = diablo_for(spec, DistributedContext(num_partitions=4), optimize=optimized)
    compiled = diablo.compile(spec.source)
    if optimized:
        assert diablo.compiler.optimize
    benchmark.pedantic(lambda: compiled.run(**inputs), rounds=2, iterations=1)
    benchmark.extra_info["optimized"] = optimized


@pytest.mark.parametrize("optimized", [True, False], ids=["optimized", "unoptimized"])
def test_vector_increment_with_and_without_group_by_elimination(benchmark, optimized):
    diablo = diablo_for(get_program("sum"), DistributedContext(num_partitions=4), optimize=optimized)
    compiled = diablo.compile(VECTOR_SOURCE)
    stats = compiled.translation.optimizer_stats
    if optimized:
        assert stats.unique_key_group_bys_removed >= 1
    else:
        assert stats.total() == 0
    inputs = {"V": {}, "W": {i: float(i) for i in range(500)}}
    result = benchmark.pedantic(lambda: compiled.run(**inputs), rounds=2, iterations=1)
    assert result.array("V")[499] == 499.0
    benchmark.extra_info["optimized"] = optimized


@pytest.mark.parametrize("adaptive", [True, False], ids=["adaptive", "no-adaptive"])
def test_skewed_group_by_with_and_without_adaptive(benchmark, adaptive):
    """PR 7 ablation: the adaptive skew layer on the Zipf Group By workload.

    ``C[v.K] += v.A`` is a reduceByKey, so adaptive execution salts the Zipf
    head keys; with the knob off the counters must stay at zero.
    """
    spec = get_program("group_by")
    inputs = skewed_workload_for_program("group_by", SKEWED_GROUP_SIZE)
    context = DistributedContext(num_partitions=4, adaptive=adaptive)
    compiled = diablo_for(spec, context).compile(spec.source)
    benchmark.pedantic(lambda: compiled.run(**inputs), rounds=2, iterations=1)
    if adaptive:
        assert context.metrics.adaptive_decisions >= 1
    else:
        assert context.metrics.adaptive_decisions == 0
        assert context.metrics.salted_keys == 0
    benchmark.extra_info["adaptive"] = adaptive


@pytest.mark.parametrize("plan_cache", [True, False], ids=["plan-cache", "no-plan-cache"])
def test_pagerank_multistep_with_and_without_plan_cache(benchmark, plan_cache):
    """PR 7 ablation: plan-skeleton caching across PageRank iterations.

    With the cache on, iterations 2+ reuse the lowered plan trees instead of
    re-running comprehension evaluation; off, the hit counter must stay zero.
    """
    spec = get_program("pagerank")
    inputs = workload_for_program("pagerank", PAGERANK_SIZE)
    inputs["num_steps"] = PAGERANK_STEPS
    context = DistributedContext(num_partitions=4, plan_cache=plan_cache)
    compiled = diablo_for(spec, context).compile(spec.source)
    benchmark.pedantic(lambda: compiled.run(**inputs), rounds=2, iterations=1)
    if plan_cache:
        assert context.metrics.plan_cache_hits > 0
    else:
        assert context.metrics.plan_cache_hits == 0
    benchmark.extra_info["plan_cache"] = plan_cache
