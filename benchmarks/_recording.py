"""Machine-readable benchmark recording shared by the conftest and the tests.

This lives outside ``conftest.py`` on purpose: pytest registers the conftest
as its own plugin module while the benchmark files import it as
``benchmarks.conftest``, which yields *two* module objects.  Keeping the
result list here -- a module both sides import normally -- guarantees exactly
one list exists no matter how the conftest was loaded.

Results are merged into ``BENCH_results.json`` at the repository root keyed
by (workload, size, system, method): a partial run
(``pytest benchmarks/test_xyz.py`` or a ``-k`` selection) updates only the
entries it actually measured and preserves the rest of the tracked
trajectory.  ``method`` distinguishes single-run shape-test timings from
pytest-benchmark round means so methodologically different numbers never
overwrite each other.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_results.json"

#: Entries recorded during this session.
_RESULTS: list[dict[str, Any]] = []


def results_path() -> Path:
    """Where this session's results are merged.

    The ``BENCH_RESULTS_PATH`` environment variable redirects the output --
    the perf-regression gate uses it to collect a fresh run without touching
    the committed baseline, and the nightly job uses it to upload scaled-size
    results as an artifact.
    """
    override = os.environ.get("BENCH_RESULTS_PATH")
    return Path(override) if override else RESULTS_PATH


def record_entry(entry: dict[str, Any]) -> None:
    """Queue one benchmark entry for the results file."""
    _RESULTS.append(entry)


def _key(entry: dict[str, Any]) -> tuple:
    return (entry["workload"], entry["size"], entry["system"], entry.get("method", ""))


def write_results(path: Path | None = None) -> None:
    """Merge this session's entries into the results file (no-op when empty)."""
    if not _RESULTS:
        return
    target = path or results_path()
    merged: dict[tuple, dict[str, Any]] = {}
    if target.exists():
        try:
            previous = json.loads(target.read_text())
            for entry in previous.get("entries", []):
                merged[_key(entry)] = entry
        except (json.JSONDecodeError, KeyError, TypeError):
            # A corrupt results file is replaced rather than crashing the run.
            merged = {}
    for entry in _RESULTS:
        merged[_key(entry)] = entry
    payload = {
        "schema": 1,
        "tier": "laptop-scale benchmark suite",
        "entries": sorted(merged.values(), key=_key),
    }
    target.write_text(json.dumps(payload, indent=2) + "\n")
