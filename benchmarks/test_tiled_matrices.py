"""Ablation: packed (tiled) matrices vs the sparse representation (Section 5).

The paper argues that tiling can improve performance because tiles are dense
units of work and the tile merge needs no shuffling.  The benchmark compares
sparse and tiled matrix addition and multiplication at the same size and
asserts the shuffle-free property of the co-partitioned tile merge.
"""

import pytest

from repro.arrays.sparse import SparseMatrix
from repro.arrays.tiles import TiledMatrix
from repro.runtime.context import DistributedContext
from repro.workloads.generators import random_matrix

SIZE = 48
TILE = 16


def matrices(context):
    a = random_matrix(SIZE, SIZE, seed=21)
    b = random_matrix(SIZE, SIZE, seed=22)
    return (
        SparseMatrix.from_dict(context, a, (SIZE, SIZE)),
        SparseMatrix.from_dict(context, b, (SIZE, SIZE)),
        TiledMatrix.from_dict(context, a, (SIZE, SIZE), tile_size=TILE),
        TiledMatrix.from_dict(context, b, (SIZE, SIZE), tile_size=TILE),
    )


@pytest.mark.parametrize("representation", ["sparse", "tiled"])
def test_matrix_addition_representation(benchmark, representation):
    context = DistributedContext(num_partitions=4)
    sparse_a, sparse_b, tiled_a, tiled_b = matrices(context)
    if representation == "sparse":
        benchmark.pedantic(lambda: sparse_a.add(sparse_b), rounds=2, iterations=1)
    else:
        benchmark.pedantic(lambda: tiled_a.add(tiled_b), rounds=2, iterations=1)
    benchmark.extra_info["representation"] = representation


@pytest.mark.parametrize("representation", ["sparse", "tiled"])
def test_matrix_multiplication_representation(benchmark, representation):
    context = DistributedContext(num_partitions=4)
    sparse_a, sparse_b, tiled_a, tiled_b = matrices(context)
    if representation == "sparse":
        benchmark.pedantic(lambda: sparse_a.multiply(sparse_b), rounds=1, iterations=1)
    else:
        benchmark.pedantic(lambda: tiled_a.multiply(tiled_b), rounds=1, iterations=1)
    benchmark.extra_info["representation"] = representation


def test_tile_merge_is_shuffle_free(benchmark):
    context = DistributedContext(num_partitions=4)
    _sa, _sb, tiled_a, tiled_b = matrices(context)
    partitioner = context.hash_partitioner()
    left = TiledMatrix(tiled_a.data.partition_by(partitioner), tiled_a.shape, TILE)
    right = TiledMatrix(tiled_b.data.partition_by(partitioner), tiled_b.shape, TILE)
    # The packing shuffles are lazy: force them before resetting the counters
    # so the assertion covers only the merge itself.
    left.data.materialize()
    right.data.materialize()
    context.metrics.reset()
    benchmark.pedantic(lambda: left.merge_tiles(right, lambda x, y: x + y), rounds=2, iterations=1)
    assert context.metrics.shuffles == 0
