"""Figure 3.B: Equal -- DIABLO vs hand-written runtime.

The panel sweeps input sizes for an all-equal check over random strings, running the DIABLO-translated loop
program and the expert-written dataflow baseline on the same local DISC
runtime.  Absolute seconds are machine dependent; the reproduced shape is the
relative standing of the two systems (see EXPERIMENTS.md).
"""

import pytest

from benchmarks.conftest import FIGURE3_BENCH_SIZES, figure3_panel_benchmark

PROGRAM = "equal"
SIZES = FIGURE3_BENCH_SIZES[PROGRAM]


@pytest.mark.parametrize("size", SIZES)
def test_diablo(benchmark, size):
    """The DIABLO series of Figure 3.B."""
    figure3_panel_benchmark(benchmark, PROGRAM, size, "diablo")


@pytest.mark.parametrize("size", SIZES)
def test_handwritten(benchmark, size):
    """The hand-written series of Figure 3.B."""
    figure3_panel_benchmark(benchmark, PROGRAM, size, "handwritten")
