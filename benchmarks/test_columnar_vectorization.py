"""Columnar vectorized execution: batch kernels vs. the record path.

Runs numeric Figure 3 workloads three times on identical inputs -- with the
record-at-a-time engine, with ``columnar=True`` and with the default
``columnar="auto"`` -- and records all three series, so BENCH_results.json
carries record/columnar/auto rows per workload and the perf gate tracks all
of them across PRs.  The result assertion is the tentpole contract: every
vectorized run must be bit-identical to the record path, with the batch
kernels demonstrably engaged.

The coverage panel additionally runs *every* Figure 3 program once under
auto mode and records its plan-time vectorization outcome
(``vectorized_stages`` / ``columnar_fallbacks`` plus the batch-runtime
counters), so per-program columnar coverage is tracked in the results file
alongside the wall times.
"""

import time

import pytest

from benchmarks.conftest import BENCH_SIZE_SCALE, FIGURE3_BENCH_SIZES, record_run
from repro.evaluation.harness import diablo_for, translated_outputs
from repro.programs import get_program
from repro.runtime.context import DistributedContext
from repro.workloads import workload_for_program

#: Numeric workloads whose narrow chains lower to batch kernels; sizes are
#: larger than the Figure 3 panels so the per-partition batches are wide
#: enough for vectorization to be visible in the wall time.
COLUMNAR_SIZES = {
    "conditional_sum": 40_000 * BENCH_SIZE_SCALE,
    "histogram": 20_000 * BENCH_SIZE_SCALE,
    "group_by": 20_000 * BENCH_SIZE_SCALE,
    "word_count": 20_000 * BENCH_SIZE_SCALE,
}

#: columnar mode -> recorded system name.
SYSTEMS = {
    False: "diablo-records",
    True: "diablo-columnar",
    "auto": "diablo-columnar-auto",
}

ROUNDS = 7


def _run_once(name: str, size: int, columnar):
    spec = get_program(name)
    inputs = workload_for_program(name, size)
    with DistributedContext(num_partitions=4, columnar=columnar) as context:
        compiled = diablo_for(spec, context).compile(spec.source)
        compiled.run(**inputs)  # warm-up: exclude compilation/planning noise
        timings = []
        for _ in range(ROUNDS):
            context.metrics.reset()
            started = time.perf_counter()
            result = compiled.run(**inputs)
            timings.append(time.perf_counter() - started)
        # Best-of-N: these workloads swing tens of percent run to run, and
        # the minimum is the stablest wall-clock estimator for the perf gate.
        record_run(
            name, size, SYSTEMS[columnar], min(timings), context, rounds=ROUNDS, method="best-of-n"
        )
        return translated_outputs(name, result), context.metrics.vectorized_stages


@pytest.mark.parametrize("name", sorted(COLUMNAR_SIZES))
def test_columnar_matches_record_path_and_engages(name):
    size = COLUMNAR_SIZES[name]
    record_outputs, record_vectorized = _run_once(name, size, columnar=False)
    columnar_outputs, columnar_vectorized = _run_once(name, size, columnar=True)
    auto_outputs, auto_vectorized = _run_once(name, size, columnar="auto")
    assert record_vectorized == 0, "columnar=False must never vectorize"
    assert columnar_vectorized > 0, f"{name}: batch kernels never engaged"
    assert auto_vectorized > 0, f"{name}: auto mode never engaged the kernels"
    assert columnar_outputs == record_outputs, f"{name}: columnar diverged"
    assert auto_outputs == record_outputs, f"{name}: auto mode diverged"


@pytest.mark.parametrize("name", sorted(FIGURE3_BENCH_SIZES))
def test_columnar_coverage_panel(name):
    """One auto-mode run per Figure 3 panel, recording coverage counters."""
    size = FIGURE3_BENCH_SIZES[name][0]
    spec = get_program(name)
    inputs = workload_for_program(name, size)
    with DistributedContext(num_partitions=4, columnar="auto") as context:
        compiled = diablo_for(spec, context).compile(spec.source)
        started = time.perf_counter()
        result = compiled.run(**inputs)
        record_run(
            name,
            size,
            "diablo-columnar-auto",
            time.perf_counter() - started,
            context,
            method="coverage",
        )
        outputs = translated_outputs(name, result)
    with DistributedContext(num_partitions=4, columnar=False) as context:
        compiled = diablo_for(spec, context).compile(spec.source)
        reference = translated_outputs(name, compiled.run(**inputs))
    assert outputs == reference, f"{name}: auto mode diverged from the record path"
