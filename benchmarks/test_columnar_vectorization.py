"""Columnar vectorized execution: batch kernels vs. the record path.

Runs numeric Figure 3 workloads twice on identical inputs -- once with the
default record-at-a-time engine and once with ``columnar=True`` -- and
records both series, so BENCH_results.json carries a before/after row per
workload and the perf gate tracks the columnar path across PRs.  The result
assertion is the tentpole contract: the vectorized run must be bit-identical
to the record path, with the batch kernels demonstrably engaged.
"""

import time

import pytest

from benchmarks.conftest import BENCH_SIZE_SCALE, record_run
from repro.evaluation.harness import diablo_for, translated_outputs
from repro.programs import get_program
from repro.runtime.context import DistributedContext
from repro.workloads import workload_for_program

#: Numeric workloads whose narrow chains lower to batch kernels; sizes are
#: larger than the Figure 3 panels so the per-partition batches are wide
#: enough for vectorization to be visible in the wall time.
COLUMNAR_SIZES = {
    "conditional_sum": 40_000 * BENCH_SIZE_SCALE,
    "histogram": 20_000 * BENCH_SIZE_SCALE,
    "group_by": 20_000 * BENCH_SIZE_SCALE,
}


ROUNDS = 3


def _run_once(name: str, size: int, columnar: bool):
    spec = get_program(name)
    inputs = workload_for_program(name, size)
    with DistributedContext(num_partitions=4, columnar=columnar) as context:
        compiled = diablo_for(spec, context).compile(spec.source)
        compiled.run(**inputs)  # warm-up: exclude compilation/planning noise
        timings = []
        for _ in range(ROUNDS):
            context.metrics.reset()
            started = time.perf_counter()
            result = compiled.run(**inputs)
            timings.append(time.perf_counter() - started)
        system = "diablo-columnar" if columnar else "diablo-records"
        # Best-of-N: these workloads swing tens of percent run to run, and
        # the minimum is the stablest wall-clock estimator for the perf gate.
        record_run(name, size, system, min(timings), context, rounds=ROUNDS, method="best-of-n")
        return translated_outputs(name, result), context.metrics.vectorized_stages


@pytest.mark.parametrize("name", sorted(COLUMNAR_SIZES))
def test_columnar_matches_record_path_and_engages(name):
    size = COLUMNAR_SIZES[name]
    record_outputs, record_vectorized = _run_once(name, size, columnar=False)
    columnar_outputs, columnar_vectorized = _run_once(name, size, columnar=True)
    assert record_vectorized == 0, "columnar=False must never vectorize"
    assert columnar_vectorized > 0, f"{name}: batch kernels never engaged"
    assert columnar_outputs == record_outputs, f"{name}: columnar diverged"
