"""Cluster-mode rows for the machine-readable results file.

Runs a shuffle-heavy subset of the Figure 3 workloads on a multi-process
:class:`ClusterContext` and records them as ``system="cluster"`` entries in
``BENCH_results.json``, alongside the existing ``diablo`` (in-process) rows.
The recorded shuffle metrics include the PR 9 cluster counters, so the
results file tracks how many bytes moved worker-to-worker and asserts the
driver-bypass guarantee held (``driver_payload_bytes == 0``) for the runs
behind each number.

``check_regression.py`` compares ``wall_seconds`` only on keys present in
both files, so baselines that predate the ``cluster`` system are unaffected.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import CLUSTER_BENCH_WORKERS, record_run
from repro.evaluation.harness import diablo_for
from repro.programs import get_program
from repro.runtime.cluster import ClusterContext
from repro.workloads import workload_for_program

#: Shuffle-heavy subset; sizes match the executor-comparison panels so the
#: cluster rows are directly comparable to the in-process ``diablo`` rows.
CLUSTER_BENCH_SIZES = {
    "word_count": 2_000,
    "group_by": 2_000,
    "matrix_multiplication": 8,
    "pagerank": 60,
}


@pytest.fixture(scope="module")
def cluster_context():
    with ClusterContext(num_partitions=4, cluster_workers=CLUSTER_BENCH_WORKERS) as context:
        yield context


@pytest.mark.parametrize("name", sorted(CLUSTER_BENCH_SIZES))
def test_cluster_executor_panel(benchmark, name, cluster_context):
    """One (workload, cluster) point: translated plan on live worker processes."""
    size = CLUSTER_BENCH_SIZES[name]
    spec = get_program(name)
    inputs = workload_for_program(name, size)
    compiled = diablo_for(spec, cluster_context).compile(spec.source)
    timings: list[float] = []

    def timed_round():
        cluster_context.metrics.reset()
        started = time.perf_counter()
        value = compiled.run(**inputs)
        timings.append(time.perf_counter() - started)
        return value

    benchmark.pedantic(timed_round, rounds=2, iterations=1)
    metrics = cluster_context.metrics
    assert metrics.cluster_fallbacks == 0, f"{name}: task batches fell back to the driver"
    assert metrics.driver_payload_bytes == 0, f"{name}: payload bytes transited the driver"
    record_run(
        name,
        size,
        "cluster",
        sum(timings) / len(timings),
        cluster_context,
        rounds=len(timings),
        method="benchmark-mean",
    )
    benchmark.extra_info["program"] = name
    benchmark.extra_info["size"] = size
    benchmark.extra_info["system"] = "cluster"
    benchmark.extra_info["cluster_workers"] = CLUSTER_BENCH_WORKERS
    benchmark.extra_info["worker_payload_fetches"] = metrics.worker_payload_fetches
    benchmark.extra_info["worker_payload_bytes"] = metrics.worker_payload_bytes
    benchmark.extra_info["worker_payload_local_reads"] = metrics.worker_payload_local_reads
