#!/usr/bin/env python
"""CI perf-regression gate: fresh benchmark walls vs. the committed baseline.

Runs the smoke benchmark suite (``pytest benchmarks --benchmark-disable``)
with ``BENCH_RESULTS_PATH`` redirected to a scratch file, then compares every
matching (workload, size, system, method) entry's ``wall_seconds`` against
the committed ``BENCH_results.json`` baseline.

CI runners and the machines that committed the baseline differ in absolute
speed, so the comparison is **normalized**: the median new/baseline ratio
across all entries is taken as the machine-speed factor, and an entry fails
only when it is more than ``--tolerance`` (default 30%) slower than the
baseline *after* dividing out that factor.  A per-entry absolute grace
(default 50 ms) additionally ignores micro-benchmark jitter -- entries whose
excess over the allowance is smaller than the grace never fail.  A uniform
machine-wide slowdown therefore passes while a *per-workload* regression
(one workload suddenly 2x its peers) fails.

Usage::

    PYTHONPATH=src python benchmarks/check_regression.py              # run + compare
    python benchmarks/check_regression.py --results fresh.json       # compare only
    python benchmarks/check_regression.py --no-normalize ...         # raw ratios

Exit status: 0 when no entry regressed, 1 when at least one did, 2 when the
benchmark run itself failed or the inputs are unusable.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import Any, NamedTuple

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "BENCH_results.json"

#: Default relative tolerance: fail entries > 30% slower than the
#: (normalized) baseline.
DEFAULT_TOLERANCE = 0.30

#: Default absolute grace in seconds: sub-50ms excursions are timer noise on
#: the tiny smoke sizes, never regressions.
DEFAULT_GRACE_SECONDS = 0.05


class Comparison(NamedTuple):
    """One baseline/new entry pair with its verdict."""

    key: tuple
    baseline_seconds: float
    new_seconds: float
    allowed_seconds: float
    regressed: bool


def entry_key(entry: dict[str, Any]) -> tuple:
    return (
        entry["workload"],
        entry["size"],
        entry["system"],
        entry.get("method", ""),
    )


def load_entries(path: Path) -> dict[tuple, dict[str, Any]]:
    payload = json.loads(path.read_text())
    entries = payload.get("entries", [])
    if not entries:
        raise ValueError(f"{path} contains no benchmark entries")
    return {entry_key(entry): entry for entry in entries}


def compare(
    baseline: dict[tuple, dict[str, Any]],
    fresh: dict[tuple, dict[str, Any]],
    tolerance: float = DEFAULT_TOLERANCE,
    grace_seconds: float = DEFAULT_GRACE_SECONDS,
    normalize: bool = True,
) -> tuple[list[Comparison], float]:
    """Compare matching entries; returns (comparisons, machine factor).

    Only keys present on both sides are compared: the benchmark set may
    gain or lose entries between PRs without breaking the gate.
    """
    shared = sorted(set(baseline) & set(fresh))
    if not shared:
        raise ValueError("no benchmark entries in common between baseline and fresh results")
    ratios = []
    for key in shared:
        base_wall = baseline[key]["wall_seconds"]
        new_wall = fresh[key]["wall_seconds"]
        if base_wall > 0:
            ratios.append(new_wall / base_wall)
    factor = statistics.median(ratios) if (normalize and ratios) else 1.0
    comparisons = []
    for key in shared:
        base_wall = baseline[key]["wall_seconds"]
        new_wall = fresh[key]["wall_seconds"]
        allowed = base_wall * factor * (1.0 + tolerance) + grace_seconds
        comparisons.append(
            Comparison(key, base_wall, new_wall, allowed, new_wall > allowed)
        )
    return comparisons, factor


def format_report(comparisons: list[Comparison], factor: float) -> str:
    lines = [
        f"perf gate: {len(comparisons)} entries compared, "
        f"machine-speed factor {factor:.3f} (median new/baseline ratio)"
    ]
    for result in sorted(comparisons, key=lambda c: c.key):
        workload, size, system, method = result.key
        verdict = "REGRESSED" if result.regressed else "ok"
        lines.append(
            f"  [{verdict:>9}] {workload}/{size}/{system}/{method}: "
            f"{result.new_seconds:.4f}s vs baseline {result.baseline_seconds:.4f}s "
            f"(allowed {result.allowed_seconds:.4f}s)"
        )
    return "\n".join(lines)


#: Structural planner counters tracked (informationally) across PRs: losing
#: eliminations or loop-invariant reuses is an optimizer regression even when
#: the wall clock hides it in noise.
TRACKED_STRUCTURAL_COUNTERS = (
    "shuffles",
    "shuffled_bytes",
    "shuffles_eliminated",
    "loop_invariant_reuses",
    "plan_cache_hits",
    "salted_keys",
    "adaptive_decisions",
    # PR 10: columnar coverage -- baseline entries recorded before these
    # counters existed compare as "n/a" (see below), never as drift.
    "vectorized_stages",
    "columnar_fallbacks",
    "columnar_memoized_skips",
    "columnar_resident_reuses",
    "columnar_vector_bucket_tasks",
)


def structural_drift(
    baseline: dict[tuple, dict[str, Any]], fresh: dict[tuple, dict[str, Any]]
) -> list[str]:
    """Per-entry changes in the tracked structural shuffle counters.

    Reported, not gated: structural metrics legitimately change when the
    planner changes, and the committed baseline is refreshed in the same PR.
    The report makes *unintentional* drift (an optimization silently lost)
    visible in the gate's log.
    """
    lines: list[str] = []
    for key in sorted(set(baseline) & set(fresh)):
        old_metrics = baseline[key].get("shuffle_metrics") or {}
        new_metrics = fresh[key].get("shuffle_metrics") or {}
        deltas = []
        for counter in TRACKED_STRUCTURAL_COUNTERS:
            old_value = old_metrics.get(counter)
            new_value = new_metrics.get(counter)
            if old_value == new_value:
                continue
            if old_value is None and new_value in (0, None):
                # Baseline predates this counter and the fresh run doesn't
                # exercise it -- not drift, just an older results file.
                continue
            # Entries recorded before a counter existed show as "n/a" rather
            # than raising or being silently dropped: a counter appearing for
            # the first time IS informative (e.g. the adaptive counters
            # introduced after the committed baseline was recorded).
            old_label = "n/a" if old_value is None else old_value
            new_label = "n/a" if new_value is None else new_value
            deltas.append(f"{counter} {old_label} -> {new_label}")
        if deltas:
            workload, size, system, method = key
            lines.append(f"  {workload}/{size}/{system}/{method}: {', '.join(deltas)}")
    if lines:
        lines.insert(0, "structural shuffle counters changed vs baseline (informational):")
    return lines


def run_benchmarks(output: Path) -> None:
    """Run the smoke benchmark suite, recording results into ``output``."""
    environment = dict(os.environ)
    environment["BENCH_RESULTS_PATH"] = str(output)
    source_dir = str(REPO_ROOT / "src")
    existing = environment.get("PYTHONPATH")
    environment["PYTHONPATH"] = f"{source_dir}:{existing}" if existing else source_dir
    command = [
        sys.executable,
        "-m",
        "pytest",
        "benchmarks",
        "-q",
        "-x",
        "--benchmark-disable",
    ]
    completed = subprocess.run(command, cwd=REPO_ROOT, env=environment)
    if completed.returncode != 0:
        raise RuntimeError(f"benchmark run failed with exit code {completed.returncode}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help="committed baseline results file (default: BENCH_results.json)",
    )
    parser.add_argument(
        "--results",
        type=Path,
        default=None,
        help="compare an existing results file instead of running the benchmarks",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="where to write the fresh results when running (default: temp file)",
    )
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE)
    parser.add_argument("--grace-seconds", type=float, default=DEFAULT_GRACE_SECONDS)
    parser.add_argument(
        "--no-normalize",
        action="store_true",
        help="compare raw ratios without dividing out the machine-speed factor",
    )
    arguments = parser.parse_args(argv)

    try:
        baseline = load_entries(arguments.baseline)
    except (OSError, ValueError, json.JSONDecodeError) as error:
        print(f"perf gate: cannot load baseline: {error}", file=sys.stderr)
        return 2

    if arguments.results is not None:
        results_file = arguments.results
    else:
        if arguments.output is not None:
            # Resolve against the invoker's cwd *before* the benchmark
            # subprocess runs with cwd=REPO_ROOT, so both sides agree.
            results_file = arguments.output.resolve()
        else:
            descriptor, temp_name = tempfile.mkstemp(prefix="fresh-bench-", suffix=".json")
            os.close(descriptor)
            results_file = Path(temp_name)
        results_file.unlink(missing_ok=True)  # conftest merges into an existing file
        try:
            run_benchmarks(results_file)
        except RuntimeError as error:
            print(f"perf gate: {error}", file=sys.stderr)
            return 2

    try:
        fresh = load_entries(results_file)
        comparisons, factor = compare(
            baseline,
            fresh,
            tolerance=arguments.tolerance,
            grace_seconds=arguments.grace_seconds,
            normalize=not arguments.no_normalize,
        )
    except (OSError, ValueError, json.JSONDecodeError) as error:
        print(f"perf gate: cannot compare results: {error}", file=sys.stderr)
        return 2

    print(format_report(comparisons, factor))
    for line in structural_drift(baseline, fresh):
        print(line)
    regressions = [c for c in comparisons if c.regressed]
    if regressions:
        print(
            f"perf gate: {len(regressions)} workload(s) regressed beyond "
            f"{arguments.tolerance:.0%} + {arguments.grace_seconds * 1000:.0f}ms",
            file=sys.stderr,
        )
        return 1
    print("perf gate: no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
