"""Plan-optimization benchmarks: loop-invariant caching on iterative loops.

The Figure 3.J/3.K panels measure a *single* step (as the paper does), so the
while-loop wins of the PR 5 planner -- loop-invariant inputs shuffled exactly
once, iterations 2+ shuffling only the mutated side -- do not show up there.
This module runs PageRank for several steps and records the per-iteration
structural metrics into ``BENCH_results.json`` (system ``diablo-multistep``),
with assertions on the reduction shape so CI fails if the planner stops
eliminating.
"""

from __future__ import annotations

import time

from benchmarks._recording import record_entry
from benchmarks.conftest import compiled_program
from repro.runtime.context import DistributedContext
from repro.workloads import workload_for_program

PAGERANK_SIZE = 50
NUM_STEPS = 4


def test_pagerank_multistep_iteration_shuffles_drop():
    """Iterations 2+ shuffle strictly less than iteration 1 (the invariant
    edge/degree sides are served from the loop cache), and the reduction is
    recorded for the cross-PR trajectory."""
    inputs = workload_for_program("pagerank", PAGERANK_SIZE)
    inputs["num_steps"] = NUM_STEPS
    compiled, context = compiled_program("pagerank")
    started = time.perf_counter()
    result = compiled.run(**inputs)
    wall_seconds = time.perf_counter() - started

    iterations = result.iteration_metrics
    assert len(iterations) == NUM_STEPS
    first, rest = iterations[0], iterations[1:]
    for entry in rest:
        assert entry["shuffled_bytes"] < first["shuffled_bytes"]
        assert entry["shuffles"] < first["shuffles"]
        assert entry["loop_invariant_reuses"] >= 1
    # The invariant placement shuffled exactly once across the whole run.
    assert context.metrics.shuffle_operations.get("partitionBy") == 1

    metrics = context.metrics
    record_entry(
        {
            "workload": "pagerank",
            "size": PAGERANK_SIZE,
            "system": "diablo-multistep",
            "method": "single-run",
            "wall_seconds": round(wall_seconds, 6),
            "rounds": 1,
            "num_steps": NUM_STEPS,
            "shuffle_metrics": {
                "shuffles": metrics.shuffles,
                "shuffled_records": metrics.shuffled_records,
                "shuffled_bytes": metrics.shuffled_bytes,
                "shuffles_eliminated": metrics.shuffles_eliminated,
                "narrow_joins": metrics.narrow_joins,
                "prepartitioned_inputs": metrics.prepartitioned_inputs,
                "loop_invariant_reuses": metrics.loop_invariant_reuses,
                "vectorized_stages": metrics.vectorized_stages,
                "columnar_fallbacks": metrics.columnar_fallbacks,
            },
            "iteration_metrics": [
                {
                    "iteration": entry["iteration"],
                    "shuffles": entry["shuffles"],
                    "shuffled_bytes": entry["shuffled_bytes"],
                    "loop_invariant_reuses": entry["loop_invariant_reuses"],
                }
                for entry in iterations
            ],
        }
    )


def test_pagerank_multistep_planner_off_baseline():
    """The same multi-step run with the planner off: every iteration pays the
    full shuffle bill.  Recorded so the delta is tracked across PRs."""
    inputs = workload_for_program("pagerank", PAGERANK_SIZE)
    inputs["num_steps"] = NUM_STEPS
    from repro.evaluation.harness import diablo_for
    from repro.programs import get_program

    spec = get_program("pagerank")
    context = DistributedContext(num_partitions=4, plan_optimize=False)
    diablo = diablo_for(spec, context)
    compiled = diablo.compile(spec.source)
    started = time.perf_counter()
    result = compiled.run(**inputs)
    wall_seconds = time.perf_counter() - started

    iterations = result.iteration_metrics
    # Without the planner every iteration shuffles the same (full) volume.
    assert len({entry["shuffled_bytes"] for entry in iterations}) == 1
    assert context.metrics.loop_invariant_reuses == 0

    metrics = context.metrics
    record_entry(
        {
            "workload": "pagerank",
            "size": PAGERANK_SIZE,
            "system": "diablo-multistep-noplanner",
            "method": "single-run",
            "wall_seconds": round(wall_seconds, 6),
            "rounds": 1,
            "num_steps": NUM_STEPS,
            "shuffle_metrics": {
                "shuffles": metrics.shuffles,
                "shuffled_records": metrics.shuffled_records,
                "shuffled_bytes": metrics.shuffled_bytes,
                "shuffles_eliminated": metrics.shuffles_eliminated,
                "narrow_joins": metrics.narrow_joins,
                "prepartitioned_inputs": metrics.prepartitioned_inputs,
                "loop_invariant_reuses": metrics.loop_invariant_reuses,
                "vectorized_stages": metrics.vectorized_stages,
                "columnar_fallbacks": metrics.columnar_fallbacks,
            },
        }
    )
