"""Table 2: parallel (DISC runtime) vs sequential (interpreter) evaluation.

The paper compiles each loop program to parallel and sequential collections;
here the parallel column is the translated program on the local DISC runtime
and the sequential column is the reference loop interpreter (see DESIGN.md).

A third axis compares the runtime's executor modes (sequential / threads /
processes) on a CPU-heavy subset, exercising the fused-stage dispatch path of
each executor with identical plans.
"""

import pytest

from repro.evaluation.harness import diablo_for
from repro.programs import get_program, table2_program_names
from repro.runtime.context import EXECUTOR_MODES, DistributedContext
from repro.workloads import workload_for_program

#: Smaller sizes than the evaluation harness so the bench suite stays fast.
SIZES = {
    "conditional_sum": 4_000,
    "equal": 4_000,
    "string_match": 4_000,
    "word_count": 2_000,
    "histogram": 1_500,
    "linear_regression": 2_000,
    "group_by": 2_000,
    "matrix_addition": 16,
    "matrix_multiplication": 8,
    "pagerank": 60,
    "kmeans": 200,
    "matrix_factorization": 8,
}


@pytest.mark.parametrize("name", table2_program_names())
def test_parallel_translated_evaluation(benchmark, name):
    """The 'par' column: translated program on the DISC runtime."""
    spec = get_program(name)
    inputs = workload_for_program(name, SIZES[name])
    diablo = diablo_for(spec)
    compiled = diablo.compile(spec.source)
    benchmark.pedantic(lambda: compiled.run(**inputs), rounds=2, iterations=1)
    benchmark.extra_info["program"] = name
    benchmark.extra_info["mode"] = "parallel"


@pytest.mark.parametrize("name", table2_program_names())
def test_sequential_interpreter_evaluation(benchmark, name):
    """The 'seq' column: the original loop program, interpreted sequentially."""
    spec = get_program(name)
    inputs = workload_for_program(name, SIZES[name])
    diablo = diablo_for(spec)
    benchmark.pedantic(lambda: diablo.interpret(spec.source, dict(inputs)), rounds=2, iterations=1)
    benchmark.extra_info["program"] = name
    benchmark.extra_info["mode"] = "sequential"


#: CPU-heavy subset for the executor-mode comparison (kept small; the point
#: is exercising each executor's fused-stage execution path, not absolute
#: numbers).
EXECUTOR_COMPARISON_PROGRAMS = ["conditional_sum", "word_count", "pagerank", "kmeans"]


@pytest.mark.parametrize("executor", EXECUTOR_MODES)
@pytest.mark.parametrize("name", EXECUTOR_COMPARISON_PROGRAMS)
def test_translated_evaluation_by_executor(benchmark, name, executor):
    """The same translated plan under each executor mode.

    Note: evaluator-generated stage functions close over driver state and do
    not pickle, so under ``"processes"`` every fused stage falls back to the
    driver -- this column measures the dispatch/fallback overhead, not
    multi-core speedup.  The recorded ``process_fallbacks`` makes that
    visible; see ``test_picklable_pipeline_by_executor`` for a pipeline that
    really crosses the process boundary.
    """
    spec = get_program(name)
    inputs = workload_for_program(name, SIZES[name])
    with DistributedContext(num_partitions=4, executor=executor) as context:
        diablo = diablo_for(spec, context)
        compiled = diablo.compile(spec.source)
        benchmark.pedantic(lambda: compiled.run(**inputs), rounds=2, iterations=1)
        benchmark.extra_info["process_fallbacks"] = context.metrics.process_fallbacks
        benchmark.extra_info["fused_stages"] = context.metrics.fused_stages
    benchmark.extra_info["program"] = name
    benchmark.extra_info["mode"] = "parallel"
    benchmark.extra_info["executor"] = executor


def _shift(value: float) -> float:
    return value + 1.0


def _positive(value: float) -> bool:
    return value > 0.0


@pytest.mark.parametrize("executor", EXECUTOR_MODES)
def test_picklable_pipeline_by_executor(benchmark, executor):
    """A fused map→filter chain of module-level (picklable) functions: the
    one configuration where the ``"processes"`` executor actually ships work
    to the pool instead of falling back."""
    with DistributedContext(num_partitions=4, executor=executor) as context:
        records = [float(i - 25_000) for i in range(50_000)]

        def run_once():
            return (
                context.parallelize(records).map(_shift).filter(_positive).count()
            )

        benchmark.pedantic(run_once, rounds=2, iterations=1)
        benchmark.extra_info["process_fallbacks"] = context.metrics.process_fallbacks
        if executor == "processes":
            assert context.metrics.process_fallbacks == 0, (
                "picklable chain must cross the process boundary"
            )
    benchmark.extra_info["executor"] = executor
    benchmark.extra_info["mode"] = "picklable-pipeline"
