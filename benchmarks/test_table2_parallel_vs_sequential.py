"""Table 2: parallel (DISC runtime) vs sequential (interpreter) evaluation.

The paper compiles each loop program to parallel and sequential collections;
here the parallel column is the translated program on the local DISC runtime
and the sequential column is the reference loop interpreter (see DESIGN.md).

A third axis compares the runtime's executor modes (sequential / threads /
processes / cluster) on a CPU-heavy subset, exercising the fused-stage
dispatch path of each executor with identical plans.
"""

import pytest

from benchmarks.conftest import ALL_EXECUTOR_MODES, make_context
from repro.evaluation.harness import diablo_for
from repro.programs import get_program, table2_program_names
from repro.workloads import workload_for_program

#: Smaller sizes than the evaluation harness so the bench suite stays fast.
SIZES = {
    "conditional_sum": 4_000,
    "equal": 4_000,
    "string_match": 4_000,
    "word_count": 2_000,
    "histogram": 1_500,
    "linear_regression": 2_000,
    "group_by": 2_000,
    "matrix_addition": 16,
    "matrix_multiplication": 8,
    "pagerank": 60,
    "kmeans": 200,
    "matrix_factorization": 8,
}


@pytest.mark.parametrize("name", table2_program_names())
def test_parallel_translated_evaluation(benchmark, name):
    """The 'par' column: translated program on the DISC runtime."""
    spec = get_program(name)
    inputs = workload_for_program(name, SIZES[name])
    diablo = diablo_for(spec)
    compiled = diablo.compile(spec.source)
    benchmark.pedantic(lambda: compiled.run(**inputs), rounds=2, iterations=1)
    benchmark.extra_info["program"] = name
    benchmark.extra_info["mode"] = "parallel"


@pytest.mark.parametrize("name", table2_program_names())
def test_sequential_interpreter_evaluation(benchmark, name):
    """The 'seq' column: the original loop program, interpreted sequentially."""
    spec = get_program(name)
    inputs = workload_for_program(name, SIZES[name])
    diablo = diablo_for(spec)
    benchmark.pedantic(lambda: diablo.interpret(spec.source, dict(inputs)), rounds=2, iterations=1)
    benchmark.extra_info["program"] = name
    benchmark.extra_info["mode"] = "sequential"


#: CPU-heavy subset for the executor-mode comparison (kept small; the point
#: is exercising each executor's fused-stage and shuffle-stage execution
#: paths, not absolute numbers).  ``group_by`` and ``matrix_multiplication``
#: are the wide-stage workloads: their runtime is dominated by
#: groupBy/reduceByKey/join shuffles whose map and reduce sides now dispatch
#: through the executor.
EXECUTOR_COMPARISON_PROGRAMS = [
    "conditional_sum",
    "word_count",
    "group_by",
    "matrix_multiplication",
    "pagerank",
    "kmeans",
]


def _record_shuffle_metrics(benchmark, context):
    """Attach the shuffle/combiner metrics to the benchmark record so the CI
    smoke job can print them and regressions show up in logs."""
    metrics = context.metrics
    benchmark.extra_info["process_fallbacks"] = metrics.process_fallbacks
    benchmark.extra_info["fused_stages"] = metrics.fused_stages
    benchmark.extra_info["shuffle_stages"] = metrics.shuffles
    benchmark.extra_info["shuffled_records"] = metrics.shuffled_records
    benchmark.extra_info["shuffled_bytes"] = metrics.shuffled_bytes
    benchmark.extra_info["shuffle_map_tasks"] = metrics.shuffle_map_tasks
    benchmark.extra_info["shuffle_reduce_tasks"] = metrics.shuffle_reduce_tasks
    benchmark.extra_info["combiner_hit_rate"] = round(metrics.combiner_hit_rate, 4)
    benchmark.extra_info["parallel_tasks"] = metrics.parallel_tasks
    benchmark.extra_info["join_strategies"] = dict(metrics.join_strategies)
    benchmark.extra_info["cluster_fallbacks"] = metrics.cluster_fallbacks
    benchmark.extra_info["driver_payload_bytes"] = metrics.driver_payload_bytes
    benchmark.extra_info["worker_payload_fetches"] = metrics.worker_payload_fetches
    benchmark.extra_info["worker_payload_local_reads"] = metrics.worker_payload_local_reads


@pytest.mark.parametrize("executor", ALL_EXECUTOR_MODES)
@pytest.mark.parametrize("name", EXECUTOR_COMPARISON_PROGRAMS)
def test_translated_evaluation_by_executor(benchmark, name, executor):
    """The same translated plan under each executor mode.

    Evaluator-generated *map-side* stage functions close over driver state
    and do not pickle, so under ``"processes"`` those fall back to the driver
    (counted by ``process_fallbacks``).  The *reduce sides* of the wide
    operators (group/merge/join of shuffle buckets) are module-level stage
    chains that do pickle, so groupBy/join-heavy workloads now genuinely use
    the pool -- ``parallel_tasks`` records how many tasks crossed into an
    executor.  ``"cluster"`` ships even the closure-laden map sides to
    worker processes (the cluster wire pickles functions by value) and keeps
    shuffle payloads worker-to-worker.
    """
    spec = get_program(name)
    inputs = workload_for_program(name, SIZES[name])
    with make_context(executor) as context:
        diablo = diablo_for(spec, context)
        compiled = diablo.compile(spec.source)
        benchmark.pedantic(lambda: compiled.run(**inputs), rounds=2, iterations=1)
        _record_shuffle_metrics(benchmark, context)
    benchmark.extra_info["program"] = name
    benchmark.extra_info["mode"] = "parallel"
    benchmark.extra_info["executor"] = executor


def _add(a, b):
    return a + b


@pytest.mark.parametrize("executor", ALL_EXECUTOR_MODES)
@pytest.mark.parametrize("name", ["group_by", "matrix_multiplication"])
def test_wide_stage_workloads_by_executor(benchmark, name, executor):
    """Hand-written wide-stage pipelines (picklable stage functions), so every
    executor runs the shuffle map/reduce sides itself -- the configuration
    where the processes pool helps the paper's shuffle-dominated workloads."""
    from repro.baselines import get_baseline

    inputs = workload_for_program(name, SIZES[name])
    with make_context(executor) as context:
        module = get_baseline(name)
        benchmark.pedantic(lambda: module.distributed(context, inputs), rounds=2, iterations=1)
        _record_shuffle_metrics(benchmark, context)
        if executor == "processes":
            assert context.metrics.shuffles > 0, "wide-stage workload must shuffle"
    benchmark.extra_info["program"] = name
    benchmark.extra_info["mode"] = "baseline-wide"
    benchmark.extra_info["executor"] = executor


def _shift(value: float) -> float:
    return value + 1.0


def _positive(value: float) -> bool:
    return value > 0.0


def _bucket_pair(value: float) -> tuple[int, float]:
    return (int(value) % 64, value)


@pytest.mark.parametrize("executor", ALL_EXECUTOR_MODES)
def test_picklable_pipeline_by_executor(benchmark, executor):
    """A fused map→filter chain plus a reduceByKey shuffle of module-level
    (picklable) functions: narrow map side, combiner, bucketing and the
    reduce side all cross the process boundary under ``"processes"``."""
    with make_context(executor) as context:
        records = [float(i - 25_000) for i in range(50_000)]

        def run_once():
            kept = context.parallelize(records).map(_shift).filter(_positive)
            return kept.map(_bucket_pair).reduce_by_key(_add).collect_as_map()

        benchmark.pedantic(run_once, rounds=2, iterations=1)
        _record_shuffle_metrics(benchmark, context)
        if executor == "processes":
            assert context.metrics.process_fallbacks == 0, (
                "picklable chain must cross the process boundary"
            )
    benchmark.extra_info["executor"] = executor
    benchmark.extra_info["mode"] = "picklable-pipeline"
