"""Table 2: parallel (DISC runtime) vs sequential (interpreter) evaluation.

The paper compiles each loop program to parallel and sequential collections;
here the parallel column is the translated program on the local DISC runtime
and the sequential column is the reference loop interpreter (see DESIGN.md).
"""

import pytest

from repro.evaluation.harness import diablo_for
from repro.programs import get_program, table2_program_names
from repro.workloads import workload_for_program

#: Smaller sizes than the evaluation harness so the bench suite stays fast.
SIZES = {
    "conditional_sum": 4_000,
    "equal": 4_000,
    "string_match": 4_000,
    "word_count": 2_000,
    "histogram": 1_500,
    "linear_regression": 2_000,
    "group_by": 2_000,
    "matrix_addition": 16,
    "matrix_multiplication": 8,
    "pagerank": 60,
    "kmeans": 200,
    "matrix_factorization": 8,
}


@pytest.mark.parametrize("name", table2_program_names())
def test_parallel_translated_evaluation(benchmark, name):
    """The 'par' column: translated program on the DISC runtime."""
    spec = get_program(name)
    inputs = workload_for_program(name, SIZES[name])
    diablo = diablo_for(spec)
    compiled = diablo.compile(spec.source)
    benchmark.pedantic(lambda: compiled.run(**inputs), rounds=2, iterations=1)
    benchmark.extra_info["program"] = name
    benchmark.extra_info["mode"] = "parallel"


@pytest.mark.parametrize("name", table2_program_names())
def test_sequential_interpreter_evaluation(benchmark, name):
    """The 'seq' column: the original loop program, interpreted sequentially."""
    spec = get_program(name)
    inputs = workload_for_program(name, SIZES[name])
    diablo = diablo_for(spec)
    benchmark.pedantic(lambda: diablo.interpret(spec.source, dict(inputs)), rounds=2, iterations=1)
    benchmark.extra_info["program"] = name
    benchmark.extra_info["mode"] = "sequential"
