"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures at laptop
scale.  Wall-clock numbers are machine dependent; the assertions attached to
the benchmarks check the *shapes* the paper reports (who wins, where the
generated plans shuffle more) using the runtime's structural metrics.
"""

from __future__ import annotations

import pytest

from repro.baselines import get_baseline
from repro.evaluation.harness import diablo_for
from repro.programs import get_program
from repro.runtime.context import DistributedContext
from repro.workloads import workload_for_program

#: Input sizes per Figure 3 panel, kept small so the whole suite runs quickly.
FIGURE3_BENCH_SIZES: dict[str, list[int]] = {
    "conditional_sum": [2_000, 8_000],
    "equal": [2_000, 8_000],
    "string_match": [2_000, 8_000],
    "word_count": [1_000, 4_000],
    "histogram": [1_000, 3_000],
    "linear_regression": [1_000, 4_000],
    "group_by": [1_000, 4_000],
    "matrix_addition": [16, 32],
    "matrix_multiplication": [8, 12],
    "pagerank": [50, 100],
    "kmeans": [150, 300],
    "matrix_factorization": [8, 14],
}


def compiled_program(name: str):
    """A compiled DIABLO program plus its configured runner context."""
    spec = get_program(name)
    context = DistributedContext(num_partitions=4)
    diablo = diablo_for(spec, context)
    return diablo.compile(spec.source), context


def run_diablo(name: str, size: int):
    """Run the translated program once; returns (result, context)."""
    inputs = workload_for_program(name, size)
    compiled, context = compiled_program(name)
    return compiled.run(**inputs), context


def run_handwritten(name: str, size: int):
    """Run the hand-written baseline once; returns (result, context)."""
    inputs = workload_for_program(name, size)
    context = DistributedContext(num_partitions=4)
    return get_baseline(name).distributed(context, inputs), context


def figure3_panel_benchmark(benchmark, name: str, size: int, system: str):
    """Benchmark one (panel, size, system) point of Figure 3."""
    inputs = workload_for_program(name, size)
    if system == "diablo":
        compiled, _context = compiled_program(name)
        benchmark.pedantic(lambda: compiled.run(**inputs), rounds=2, iterations=1)
    else:
        module = get_baseline(name)
        context = DistributedContext(num_partitions=4)
        benchmark.pedantic(lambda: module.distributed(context, inputs), rounds=2, iterations=1)
    benchmark.extra_info["program"] = name
    benchmark.extra_info["size"] = size
    benchmark.extra_info["system"] = system


@pytest.fixture
def small_sizes():
    return FIGURE3_BENCH_SIZES
