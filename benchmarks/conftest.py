"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures at laptop
scale.  Wall-clock numbers are machine dependent; the assertions attached to
the benchmarks check the *shapes* the paper reports (who wins, where the
generated plans shuffle more) using the runtime's structural metrics.

Every run that goes through the helpers below is also recorded and dumped to
``BENCH_results.json`` at the repository root when the session ends: one
entry per (workload, size, system) with wall seconds plus the shuffle-side
structural metrics, so the performance trajectory is tracked across PRs
without digging into pytest-benchmark's storage.
"""

from __future__ import annotations

import os
import time
from typing import Any

import pytest

from benchmarks._recording import record_entry, write_results
from repro.baselines import get_baseline
from repro.evaluation.harness import diablo_for
from repro.programs import get_program
from repro.runtime.cluster import ClusterContext
from repro.runtime.context import EXECUTOR_MODES, DistributedContext
from repro.workloads import workload_for_program

#: The executor-comparison axis: the three in-process modes plus the
#: multi-process cluster backend (PR 9).
ALL_EXECUTOR_MODES = EXECUTOR_MODES + ("cluster",)

#: Worker count for cluster-mode benchmark contexts.
CLUSTER_BENCH_WORKERS = max(1, int(os.environ.get("DIABLO_CLUSTER_WORKERS", "2")))


def make_context(executor: str, num_partitions: int = 4) -> DistributedContext:
    """A context for one executor-comparison cell, cluster mode included."""
    if executor == "cluster":
        return ClusterContext(num_partitions=num_partitions, cluster_workers=CLUSTER_BENCH_WORKERS)
    return DistributedContext(num_partitions=num_partitions, executor=executor)


#: Multiplies every benchmark input size; per-PR CI runs at 1, the nightly
#: workflow sets BENCH_SIZE_SCALE=4 for the sizes too slow to gate on.
BENCH_SIZE_SCALE = max(1, int(os.environ.get("BENCH_SIZE_SCALE", "1")))

#: Input sizes per Figure 3 panel, kept small so the whole suite runs quickly.
FIGURE3_BENCH_SIZES: dict[str, list[int]] = {
    name: [size * BENCH_SIZE_SCALE for size in sizes]
    for name, sizes in {
        "conditional_sum": [2_000, 8_000],
        "equal": [2_000, 8_000],
        "string_match": [2_000, 8_000],
        "word_count": [1_000, 4_000],
        "histogram": [1_000, 3_000],
        "linear_regression": [1_000, 4_000],
        "group_by": [1_000, 4_000],
        "matrix_addition": [16, 32],
        "matrix_multiplication": [8, 12],
        "pagerank": [50, 100],
        "kmeans": [150, 300],
        "matrix_factorization": [8, 14],
    }.items()
}


def record_run(
    workload: str,
    size: int,
    system: str,
    wall_seconds: float,
    context: DistributedContext | None = None,
    rounds: int = 1,
    method: str = "single-run",
) -> None:
    """Record one benchmark run for the machine-readable results file.

    ``method`` keeps methodologically different timings apart in the merged
    file: shape tests record ``"single-run"`` wall time, the pytest-benchmark
    panels record a ``"benchmark-mean"`` over their rounds.
    """
    entry: dict[str, Any] = {
        "workload": workload,
        "size": size,
        "system": system,
        "method": method,
        "wall_seconds": round(wall_seconds, 6),
        "rounds": rounds,
    }
    if context is not None:
        metrics = context.metrics
        entry["shuffle_metrics"] = {
            "shuffles": metrics.shuffles,
            "shuffled_records": metrics.shuffled_records,
            "shuffled_bytes": metrics.shuffled_bytes,
            "shuffle_map_tasks": metrics.shuffle_map_tasks,
            "shuffle_reduce_tasks": metrics.shuffle_reduce_tasks,
            "combiner_hit_rate": round(metrics.combiner_hit_rate, 6),
            "join_strategies": dict(metrics.join_strategies),
            "fused_stages": metrics.fused_stages,
            # PR 5 planner counters: tracked across PRs by the perf gate so a
            # regression that re-introduces eliminated shuffles is visible.
            "shuffles_eliminated": metrics.shuffles_eliminated,
            "narrow_joins": metrics.narrow_joins,
            "prepartitioned_inputs": metrics.prepartitioned_inputs,
            "loop_invariant_reuses": metrics.loop_invariant_reuses,
            # PR 6 columnar counters: how many narrow stages / combiners ran
            # as batch kernels (0 whenever columnar execution is off).
            "vectorized_stages": metrics.vectorized_stages,
            "columnar_fallbacks": metrics.columnar_fallbacks,
            # PR 10 batch-runtime counters: conversion-tax bookkeeping for
            # the columnar engine (memoized fallback skips, resident
            # partition reuses across forces, vectorized bucket tasks).
            "columnar_memoized_skips": metrics.columnar_memoized_skips,
            "columnar_resident_reuses": metrics.columnar_resident_reuses,
            "columnar_vector_bucket_tasks": metrics.columnar_vector_bucket_tasks,
            # PR 7 adaptive counters: plan-skeleton reuse across loop
            # iterations plus the runtime's skew decisions (salted hot keys,
            # map-side grouping, histogram ranges, broadcast re-decisions).
            "plan_cache_hits": metrics.plan_cache_hits,
            "salted_keys": metrics.salted_keys,
            "adaptive_decisions": metrics.adaptive_decisions,
            # PR 9 cluster counters: worker-to-worker shuffle transfers and
            # the driver-bypass guarantee (all 0 under the in-process
            # executors; check_regression compares wall_seconds only, so
            # baseline entries predating these keys stay comparable).
            "cluster_fallbacks": metrics.cluster_fallbacks,
            "resident_partition_reuses": metrics.resident_partition_reuses,
            "driver_payload_bytes": metrics.driver_payload_bytes,
            "worker_payload_fetches": metrics.worker_payload_fetches,
            "worker_payload_bytes": metrics.worker_payload_bytes,
            "worker_payload_local_reads": metrics.worker_payload_local_reads,
        }
    record_entry(entry)


def pytest_sessionfinish(session: pytest.Session, exitstatus: int) -> None:
    """Merge every recorded run into BENCH_results.json at the repo root."""
    write_results()


def compiled_program(name: str):
    """A compiled DIABLO program plus its configured runner context."""
    spec = get_program(name)
    context = DistributedContext(num_partitions=4)
    diablo = diablo_for(spec, context)
    return diablo.compile(spec.source), context


def run_diablo(name: str, size: int):
    """Run the translated program once; returns (result, context)."""
    inputs = workload_for_program(name, size)
    compiled, context = compiled_program(name)
    started = time.perf_counter()
    result = compiled.run(**inputs)
    record_run(name, size, "diablo", time.perf_counter() - started, context)
    return result, context


def run_handwritten(name: str, size: int):
    """Run the hand-written baseline once; returns (result, context)."""
    inputs = workload_for_program(name, size)
    context = DistributedContext(num_partitions=4)
    started = time.perf_counter()
    result = get_baseline(name).distributed(context, inputs)
    record_run(name, size, "handwritten", time.perf_counter() - started, context)
    return result, context


def figure3_panel_benchmark(benchmark, name: str, size: int, system: str):
    """Benchmark one (panel, size, system) point of Figure 3."""
    inputs = workload_for_program(name, size)
    timings: list[float] = []

    if system == "diablo":
        compiled, context = compiled_program(name)
        call = lambda: compiled.run(**inputs)  # noqa: E731
    else:
        module = get_baseline(name)
        context = DistributedContext(num_partitions=4)
        call = lambda: module.distributed(context, inputs)  # noqa: E731

    def timed_round():
        # Reset per round so the recorded shuffle metrics describe a single
        # run, matching the run_diablo/run_handwritten entries.
        context.metrics.reset()
        started = time.perf_counter()
        value = call()
        timings.append(time.perf_counter() - started)
        return value

    benchmark.pedantic(timed_round, rounds=2, iterations=1)
    if timings:
        record_run(
            name,
            size,
            system,
            sum(timings) / len(timings),
            context,
            rounds=len(timings),
            method="benchmark-mean",
        )
    benchmark.extra_info["program"] = name
    benchmark.extra_info["size"] = size
    benchmark.extra_info["system"] = system


@pytest.fixture
def small_sizes():
    return FIGURE3_BENCH_SIZES
