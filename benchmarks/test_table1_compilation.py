"""Table 1: translator running time (DIABLO vs the MOLD/Casper simulators).

The paper's observation: DIABLO translates every one of the sixteen programs
in seconds (compositional rules, no search), while the template-search and
synthesis-based translators are orders of magnitude slower and fail on the
complex programs.  Here the DIABLO column is this package's compiler; the
comparator columns run the simulators described in DESIGN.md.
"""

import pytest

from repro.comparators.casper import CasperTranslator
from repro.comparators.mold import MoldTranslator
from repro.evaluation.harness import diablo_for
from repro.programs import get_program, table1_program_names
from repro.workloads import workload_for_program


@pytest.mark.parametrize("name", table1_program_names())
def test_diablo_translation_time(benchmark, name):
    """DIABLO translation time for every Table 1 program."""
    spec = get_program(name)
    diablo = diablo_for(spec)

    def translate():
        # The compiler memoizes translations; clear between rounds so the
        # benchmark keeps measuring real translation, not cache lookups.
        diablo.compiler.cache_clear()
        return diablo.compiler.compile(spec.source)

    result = benchmark(translate)
    assert result.target.statements
    benchmark.extra_info["program"] = name
    benchmark.extra_info["system"] = "diablo"


@pytest.mark.parametrize("name", ["word_count", "matrix_multiplication", "pagerank"])
def test_mold_simulator_translation_time(benchmark, name):
    """MOLD-style template search on a representative subset."""
    spec = get_program(name)
    translator = MoldTranslator(search_budget=20_000)
    result = benchmark.pedantic(lambda: translator.translate(spec.source, name), rounds=2, iterations=1)
    benchmark.extra_info["program"] = name
    benchmark.extra_info["system"] = "mold-sim"
    benchmark.extra_info["succeeded"] = result.succeeded
    if name == "pagerank":
        assert not result.succeeded


@pytest.mark.parametrize("name", ["word_count", "matrix_multiplication", "linear_regression"])
def test_casper_simulator_translation_time(benchmark, name):
    """Casper-style synthesis on a representative subset."""
    spec = get_program(name)
    translator = CasperTranslator(candidate_budget=4_000)
    workload = lambda size: workload_for_program(name, size, seed=29)  # noqa: E731
    result = benchmark.pedantic(
        lambda: translator.translate(spec.source, name, workload=workload), rounds=2, iterations=1
    )
    benchmark.extra_info["program"] = name
    benchmark.extra_info["system"] = "casper-sim"
    benchmark.extra_info["succeeded"] = result.succeeded
    if name == "matrix_multiplication":
        assert not result.succeeded


def test_diablo_succeeds_on_all_table1_programs(benchmark):
    """The completeness half of Table 1: every program translates."""

    def translate_all():
        return [
            diablo_for(get_program(name)).compiler.compile(get_program(name).source)
            for name in table1_program_names()
        ]

    results = benchmark.pedantic(translate_all, rounds=1, iterations=1)
    assert len(results) == 16
