"""Logical plan nodes for the comprehension-to-dataflow compiler.

The :class:`~repro.algebra.evaluator.TermEvaluator` no longer emits
:class:`~repro.runtime.dataset.Dataset` operations directly while walking a
comprehension's qualifiers: it builds a tree of :class:`PlanNode`\\ s -- the
**logical plan** -- which the :class:`~repro.algebra.planner.Planner`
annotates and lowers to Dataset operations in a separate pass.  Splitting
"what dataflow the comprehension denotes" from "how the runtime executes it"
is what enables the partition-aware optimizations of this layer:

* **partitioner propagation** -- group-by/reduce-by-key nodes know which
  key *term* their output rows are placed by; let/condition nodes are
  key-transparent; when the comprehension head rebuilds ``(key, value)``
  pairs keyed by that same term, the planner threads the partitioner through
  the whole chain so downstream merges/joins can skip their shuffles;
* **loop-invariant signatures** -- every node carries an ``invariant`` flag
  (its subtree's value cannot change across iterations of the enclosing
  ``while`` loop) and a structural signature built from the IR terms it was
  compiled from; the planner uses the signature as a cache key so invariant
  join sides and scans are evaluated (and shuffled) once per loop instead of
  once per iteration;
* **common sub-expressions** -- two plan nodes built from the same
  comprehension sub-term share one Dataset at lowering time (the evaluator
  memoizes domain datasets per statement), so the sub-term is computed once.

Nodes hold both the lowering payload (the per-row closures the evaluator
built, identical to what it used to hand straight to Datasets -- lowering a
plan therefore produces record-for-record the same results as the historical
direct emission) and the planner metadata (IR terms, patterns, invariance).

``render_plan`` pretty-prints a plan tree; the planner adds per-node
decisions (cache hits, eliminated shuffles, chosen strategies) as
annotations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.comprehension import ir

# ---------------------------------------------------------------------------
# Plan nodes
# ---------------------------------------------------------------------------


@dataclass(eq=False)
class PlanNode:
    """Base class of logical plan nodes.

    Attributes:
        invariant: True when the subtree's value is independent of the
            enclosing while-loop's mutated variables (set at build time by
            the evaluator; meaningless outside a loop).
        sig: the node's *local* signature component -- a hashable tuple over
            IR terms/patterns identifying what this node computes, or None
            when the node cannot be identified structurally.  The full
            subtree signature is :meth:`signature`.
        row_key_term: the IR term by whose (per-row) value this node's output
            rows are placed across partitions, or None when placement is
            unknown.  Filled in by the planner's annotate pass.
        notes: planner decision annotations, rendered by ``render_plan``.
    """

    invariant: bool = field(default=False, init=False)
    sig: tuple | None = field(default=None, init=False)
    row_key_term: ir.Term | None = field(default=None, init=False)
    notes: list[str] = field(default_factory=list, init=False)

    @property
    def children(self) -> tuple["PlanNode", ...]:
        return ()

    @property
    def label(self) -> str:
        return type(self).__name__

    def signature(self) -> tuple | None:
        """The full structural signature of the subtree (a loop-cache key),
        or None when any node in it is not invariant / not identifiable."""
        if not self.invariant or self.sig is None:
            return None
        child_signatures = []
        for child in self.children:
            child_signature = child.signature()
            if child_signature is None:
                return None
            child_signatures.append(child_signature)
        return (self.sig, tuple(child_signatures))


@dataclass(eq=False)
class ScanNode(PlanNode):
    """A leaf over an already-available runtime Dataset.

    ``term`` is the comprehension sub-term the dataset came from (a program
    variable, a range, a nested comprehension already lowered by the
    evaluator); it drives the CSE and loop-invariance machinery.
    """

    dataset: Any
    term: ir.Term | None = None
    name: str = ""

    @property
    def label(self) -> str:
        tag = self.name or (str(self.term) if self.term is not None else "dataset")
        return f"Scan[{tag}]"


#: Narrow node kinds (mirror the Dataset methods they lower to).
MAP = "map"
FLAT_MAP = "flat_map"
FILTER = "filter"


@dataclass(eq=False)
class NarrowNode(PlanNode):
    """A per-row operation: map / flat_map / filter over the child's rows.

    ``key_transparent`` marks operations that neither drop nor rebind rows
    (lets, conditions, group-by rebuilds): they preserve the child's
    ``row_key_term`` placement.  ``head_key_term`` is set on the final
    head-projection map of a comprehension whose head is a ``(key, value)``
    pair: when it equals the incoming ``row_key_term`` the planner lowers the
    whole chain with ``preserves_partitioning=True``.
    """

    kind: str = MAP
    function: Callable[..., Any] | None = None
    child: PlanNode | None = None
    describe: str = ""
    key_transparent: bool = False
    head_key_term: ir.Term | None = None
    #: Row variables this node (re)binds -- a let rebinding a variable the
    #: incoming ``row_key_term`` mentions invalidates the placement claim
    #: (the rows stay placed by the *old* value).
    binds: tuple[str, ...] = ()
    #: Set by the planner: lower with preserves_partitioning=True.
    carry_partitioner: bool = field(default=False, init=False)

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,) if self.child is not None else ()

    @property
    def label(self) -> str:
        suffix = f" {self.describe}" if self.describe else ""
        return f"{self.kind.capitalize().replace('_', '')}{suffix}"


@dataclass(eq=False)
class HashJoinNode(PlanNode):
    """An equi-join of the rows built so far with a new generator's dataset.

    ``left``/``right`` produce the two inputs; ``left_key_fn``/``right_key_fn``
    compute the (composite) join key per record; ``rebuild_fn`` merges a
    joined pair back into one row dict.  ``left_key_terms``/``right_key_terms``
    are the IR key expressions (for signatures and trace).
    """

    left: PlanNode
    right: PlanNode
    left_key_fn: Callable[[Any], Any]
    right_key_fn: Callable[[Any], Any]
    rebuild_fn: Callable[[Any], Any]
    left_key_terms: tuple[ir.Term, ...] = ()
    right_key_terms: tuple[ir.Term, ...] = ()
    domain_label: str = ""
    #: Set by the planner: the side's keying map keeps an already-correct
    #: placement (the records are hash-placed by the single join key), so the
    #: join lowers to a narrow or map-side-bypassed shuffle.
    left_prepartitioned: bool = field(default=False, init=False)
    right_prepartitioned: bool = field(default=False, init=False)

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    @property
    def label(self) -> str:
        keys = ", ".join(str(term) for term in self.right_key_terms)
        return f"HashJoin[{self.domain_label} on ({keys})]"


@dataclass(eq=False)
class ProductNode(PlanNode):
    """A no-key nested-loop combination of rows with a generator's dataset.

    Lowered as a broadcast of the smaller side when it fits under the
    context's ``broadcast_join_threshold`` (plan-time strategy selection),
    as a cartesian shuffle otherwise.
    """

    left: PlanNode
    right: PlanNode
    bind_right_fn: Callable[[Any], dict]
    domain_label: str = ""

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    @property
    def label(self) -> str:
        return f"Product[{self.domain_label}]"


@dataclass(eq=False)
class ReduceByKeyNode(PlanNode):
    """An aggregation-only group-by compiled to keyBy + reduceByKey + rebuild.

    ``pattern_term`` (the group-by pattern read as a term) is the key term
    the *output rows* are placed by -- the anchor of partitioner propagation.
    """

    child: PlanNode
    key_fn: Callable[[Any], Any]
    combine_fn: Callable[[Any, Any], Any]
    rebuild_fn: Callable[[Any], dict]
    key_term: ir.Term
    pattern_term: ir.Term
    monoid_op: str = ""
    #: Set by the planner: the keying map keeps an already-correct placement.
    input_prepartitioned: bool = field(default=False, init=False)
    #: Set by the planner: carry the output partitioner through the rebuild.
    carry_partitioner: bool = field(default=False, init=False)

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    @property
    def label(self) -> str:
        return f"ReduceByKey[{self.monoid_op} by {self.key_term}]"


@dataclass(eq=False)
class GroupByKeyNode(PlanNode):
    """A general group-by compiled to keyBy + groupByKey + lift."""

    child: PlanNode
    key_fn: Callable[[Any], Any]
    lift_fn: Callable[[Any], dict]
    key_term: ir.Term
    pattern_term: ir.Term
    input_prepartitioned: bool = field(default=False, init=False)
    carry_partitioner: bool = field(default=False, init=False)

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    @property
    def label(self) -> str:
        return f"GroupByKey[by {self.key_term}]"


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def render_plan(node: PlanNode) -> str:
    """Pretty-print a plan tree with the planner's per-node annotations."""
    lines: list[str] = []
    _render_into(node, lines, 0)
    return "\n".join(lines)


def _render_into(node: PlanNode, lines: list[str], depth: int) -> None:
    pad = "  " * depth
    flags = []
    if node.invariant:
        flags.append("loop-invariant")
    if node.row_key_term is not None:
        flags.append(f"partitioned-by={node.row_key_term}")
    tag = f" [{', '.join(flags)}]" if flags else ""
    lines.append(f"{pad}{node.label}{tag}")
    for note in node.notes:
        lines.append(f"{pad}  * {note}")
    for child in node.children:
        _render_into(child, lines, depth + 1)
