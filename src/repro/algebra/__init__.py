"""Compilation of monoid comprehensions to DISC dataflow and execution.

* :mod:`repro.algebra.evaluator` -- walks comprehension terms and builds the
  logical plan: equi-joins discovered from generator/condition patterns,
  group-bys turned into groupByKey or reduceByKey, array merges ⊳ / ⊳⊕ into
  coGroups.
* :mod:`repro.algebra.plan` -- the logical plan nodes the evaluator builds
  (scan / narrow / hash-join / product / reduce- and group-by-key), carrying
  the IR terms and invariance metadata the planner optimizes with.
* :mod:`repro.algebra.planner` -- annotates plans (partitioner propagation)
  and lowers them to runtime Datasets, eliminating shuffles over
  co-partitioned inputs and caching loop-invariant sub-plans.
* :mod:`repro.algebra.runner` -- executes whole target programs (the output of
  the translator) over caller-supplied inputs, with while-loop invariant
  hoisting and per-iteration shuffle accounting.
* :mod:`repro.algebra.explain` -- renders the dataflow decisions taken for a
  term (which joins, which shuffles, which eliminations) for docs and tests.
"""

from repro.algebra.evaluator import TermEvaluator, EvaluationEnvironment
from repro.algebra.planner import LoopInvariantCache, Planner
from repro.algebra.runner import ProgramRunner, ProgramResult
from repro.algebra.explain import explain_plan, explain_term

__all__ = [
    "TermEvaluator",
    "EvaluationEnvironment",
    "LoopInvariantCache",
    "Planner",
    "ProgramRunner",
    "ProgramResult",
    "explain_plan",
    "explain_term",
]
