"""Compilation of monoid comprehensions to DISC dataflow and execution.

* :mod:`repro.algebra.evaluator` -- evaluates comprehension terms against the
  local DISC runtime, discovering equi-joins from generator/condition
  patterns, turning group-bys into groupByKey or reduceByKey, and the array
  merges ⊳ / ⊳⊕ into coGroups.
* :mod:`repro.algebra.runner` -- executes whole target programs (the output of
  the translator) over caller-supplied inputs.
* :mod:`repro.algebra.explain` -- renders the dataflow decisions taken for a
  term (which joins, which shuffles) for documentation and tests.
"""

from repro.algebra.evaluator import TermEvaluator, EvaluationEnvironment
from repro.algebra.runner import ProgramRunner, ProgramResult
from repro.algebra.explain import explain_term

__all__ = [
    "TermEvaluator",
    "EvaluationEnvironment",
    "ProgramRunner",
    "ProgramResult",
    "explain_term",
]
