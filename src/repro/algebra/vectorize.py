"""Lowering comprehension terms to columnar batch kernels.

The term evaluator builds each narrow plan node around a record closure
(bind a generator element, filter on a condition term, project the head).
This module inspects the *term* behind such a closure and, when it is pure
scalar arithmetic/comparison over row variables, driver bindings and
constants, produces the matching vectorized record function from
:mod:`repro.runtime.columnar` -- with the original closure attached as the
``oracle``, so record-at-a-time execution is byte-for-byte the closure it
replaces and only the batch path is new.

Every function here returns ``None`` when the term falls outside the
vectorizable fragment (projections, comprehensions, unregistered calls, ...);
the caller then keeps the plain closure.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.comprehension import ir
from repro.runtime import columnar

#: Constant types a :class:`~repro.runtime.columnar.Lit` may hold.
_SCALAR_TYPES = (bool, int, float, str)


def lower_term(
    term: ir.Term, row_names: frozenset[str], functions: Any = None
) -> columnar.Expr | None:
    """A scalar term as a batch expression; None outside the fragment.

    Variables bound by the current row become :class:`Col` reads; everything
    else becomes a :class:`Ref` resolved against the driver scope at batch
    time (so cached plan nodes see updated loop scalars).  ``functions`` is
    the program's scalar-function registry: a :class:`~repro.runtime.columnar.Call`
    is only emitted when the registered implementation *is* the builtin the
    batch kernel mirrors.
    """
    if isinstance(term, ir.CVar):
        if term.name in row_names:
            return columnar.Col((term.name,))
        return columnar.Ref(term.name)
    if isinstance(term, ir.CConst):
        if type(term.value) in _SCALAR_TYPES:
            return columnar.Lit(term.value)
        return None
    if isinstance(term, ir.CBinOp) and term.op in columnar.SUPPORTED_BINOPS:
        left = lower_term(term.left, row_names, functions)
        right = lower_term(term.right, row_names, functions)
        if left is not None and right is not None:
            return columnar.BinOp(term.op, left, right)
        return None
    if isinstance(term, ir.CUnaryOp) and term.op in columnar.SUPPORTED_UNOPS:
        operand = lower_term(term.operand, row_names, functions)
        if operand is not None:
            return columnar.UnOp(term.op, operand)
        return None
    if isinstance(term, ir.CCall):
        impl = columnar.VECTOR_CALL_IMPLS.get(term.function)
        if impl is None or functions is None or functions.get(term.function) is not impl:
            return None
        if term.function == "abs" and len(term.arguments) != 1:
            return None
        if term.function in ("min", "max") and len(term.arguments) < 2:
            # One argument means the builtin iterates a bag, not scalars.
            return None
        args = [lower_term(argument, row_names, functions) for argument in term.arguments]
        if any(argument is None for argument in args):
            return None
        return columnar.Call(term.function, args)
    return None


def lower_output(
    term: ir.Term, row_names: frozenset[str], functions: Any = None
) -> Any | None:
    """A head/key term as an output spec (tuples allowed at any depth)."""
    if isinstance(term, ir.CTuple):
        specs = []
        for element in term.elements:
            spec = lower_output(element, row_names, functions)
            if spec is None:
                return None
            specs.append(spec)
        return columnar.OutTuple(specs)
    return lower_term(term, row_names, functions)


def pattern_spec(pattern: ir.Pattern) -> tuple[Any, ...] | None:
    """A binding pattern as the picklable spec ``VectorizedBind`` consumes."""
    if isinstance(pattern, ir.PVar):
        return ("var", pattern.name)
    if isinstance(pattern, ir.PWildcard):
        return ("wildcard",)
    if isinstance(pattern, ir.PTuple):
        specs = []
        for element in pattern.elements:
            spec = pattern_spec(element)
            if spec is None:
                return None
            specs.append(spec)
        return ("tuple", tuple(specs))
    return None


def _scope(
    base: dict[str, Any], values_provider: Callable[[], dict[str, Any]]
) -> columnar.ScalarScope:
    return columnar.ScalarScope(base, values_provider)


def head_map(
    head: ir.Term,
    row_names: frozenset[str],
    base: dict[str, Any],
    values_provider: Callable[[], dict[str, Any]],
    oracle: Callable[..., Any],
    functions: Any = None,
) -> columnar.VectorizedMap | None:
    """The head-projection ``map`` as a batch kernel, or None."""
    spec = lower_output(head, row_names, functions)
    if spec is None:
        return None
    return columnar.VectorizedMap(spec, _scope(base, values_provider), oracle=oracle)


def row_filter(
    term: ir.Term,
    row_names: frozenset[str],
    base: dict[str, Any],
    values_provider: Callable[[], dict[str, Any]],
    oracle: Callable[..., Any],
    functions: Any = None,
) -> columnar.VectorizedFilter | None:
    """A condition qualifier's ``filter`` as a batch kernel, or None."""
    predicate = lower_term(term, row_names, functions)
    if predicate is None:
        return None
    return columnar.VectorizedFilter(predicate, _scope(base, values_provider), oracle=oracle)


def extend_flat_map(
    bindings: list[dict[str, Any]], oracle: Callable[..., Any]
) -> columnar.VectorizedFlatMap | None:
    """A constant-bag expansion ``row -> [{**row, **b} for b in bindings]``.

    ``bindings`` are the pre-computed pattern bindings of the bag elements
    (one dict per element, in bag order).  Vectorizable only when every
    element binds the same names, in the same order, to scalar constants --
    the bindings then become per-copy :class:`Lit` extension columns.
    """
    if not bindings:
        return None
    names = tuple(bindings[0])
    exts = []
    for binding in bindings:
        if tuple(binding) != names:
            return None
        ext = []
        for name in names:
            value = binding[name]
            if type(value) not in _SCALAR_TYPES:
                return None
            ext.append(columnar.Lit(value))
        exts.append(tuple(ext))
    return columnar.VectorizedFlatMap(("extend", names, tuple(exts)), oracle=oracle)


def bind_map(pattern: ir.Pattern, oracle: Callable[..., Any]) -> columnar.VectorizedBind | None:
    """The generator-binding ``map`` as a (structural) batch kernel, or None."""
    spec = pattern_spec(pattern)
    if spec is None:
        return None
    return columnar.VectorizedBind(spec, oracle=oracle)


def let_map(
    pattern: ir.Pattern,
    term: ir.Term,
    row_names: frozenset[str],
    base: dict[str, Any],
    values_provider: Callable[[], dict[str, Any]],
    oracle: Callable[..., Any],
    functions: Any = None,
) -> columnar.VectorizedLet | None:
    """The let-binding ``map`` as a batch kernel (single fresh variable only)."""
    if not isinstance(pattern, ir.PVar):
        return None
    expr = lower_term(term, row_names, functions)
    if expr is None:
        return None
    return columnar.VectorizedLet(
        pattern.name, expr, _scope(base, values_provider), oracle=oracle
    )


def key_value_map(
    key_term: ir.Term,
    value_name: str,
    row_names: frozenset[str],
    base: dict[str, Any],
    values_provider: Callable[[], dict[str, Any]],
    oracle: Callable[..., Any],
    functions: Any = None,
) -> columnar.VectorizedMap | None:
    """The reduceByKey keying ``map`` ``row -> (key, row[value])``, or None."""
    key_spec = lower_output(key_term, row_names, functions)
    if key_spec is None:
        return None
    out = columnar.OutTuple([key_spec, columnar.Col((value_name,))])
    return columnar.VectorizedMap(out, _scope(base, values_provider), oracle=oracle)


def vector_combine(op: str, fn: Callable[[Any, Any], Any]) -> Callable[[Any, Any], Any]:
    """Tag a monoid combine with its operator when a fold kernel exists.

    The wrapper delegates ``__call__`` to ``fn``, so wrapping is free for the
    record path and merely *enables* the grouped-fold kernel when columnar
    execution is on.
    """
    if op in columnar.VECTOR_COMBINE_OPS:
        return columnar.VectorizedCombine(op, fn)
    return fn
