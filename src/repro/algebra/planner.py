"""The partition-aware planner: annotates and lowers logical plans.

The :class:`Planner` consumes the :class:`~repro.algebra.plan.PlanNode` trees
built by the :class:`~repro.algebra.evaluator.TermEvaluator` and produces
runtime :class:`~repro.runtime.dataset.Dataset` dataflows.  Lowering emits
exactly the Dataset operations the evaluator historically emitted inline, so
results are record-for-record identical; what the planner adds are the
*decisions* the inline emission could not make:

* **partitioner propagation** (:meth:`Planner.annotate`): group-by nodes
  place their output rows by the group key term; key-transparent nodes
  (lets, conditions, rebuilds) pass that placement along; when the
  comprehension head re-keys its output pairs by the same term, the chain is
  lowered with ``preserves_partitioning=True`` and the runtime's
  partitioner metadata survives -- enabling the Dataset layer's narrow
  (shuffle-free) fast paths for every downstream merge, join and group-by
  over the same key.
* **plan-time join strategy** (:meth:`Planner._lower_product`): the
  no-join-key nested loop picks broadcast vs. cartesian by comparing the
  materialized side sizes against ``context.broadcast_join_threshold`` --
  the same knob the runtime's hash joins use.
* **loop-invariant caching**: subtrees whose :meth:`PlanNode.signature` is
  defined (structurally identifiable *and* independent of every variable the
  enclosing ``while`` body assigns) are looked up in the loop's
  :class:`LoopInvariantCache`.  A hash-join side built from invariant data
  is keyed, materialized and -- when too big to broadcast -- hash-partitioned
  *once*; iterations 2+ reuse the placed dataset, so only the mutated side
  of the join is ever re-shuffled (``metrics.loop_invariant_reuses`` counts
  the hits).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.algebra import plan as plan_mod
from repro.algebra.plan import (
    FILTER,
    FLAT_MAP,
    MAP,
    GroupByKeyNode,
    HashJoinNode,
    NarrowNode,
    PlanNode,
    ProductNode,
    ReduceByKeyNode,
    ScanNode,
)
from repro.algebra import vectorize
from repro.comprehension import ir
from repro.errors import ExecutionError
from repro.translate.target import TargetAssign
from repro.runtime.context import DistributedContext
from repro.runtime.dataset import Dataset, choose_broadcast_side
from repro.runtime.partitioner import HashPartitioner


class LoopInvariantCache:
    """Datasets hoisted out of a ``while`` loop, keyed by plan signature.

    Created by the :class:`~repro.algebra.runner.ProgramRunner` per ``while``
    statement.  ``invariants`` are the environment variables the loop body
    never assigns; only values derived exclusively from them are admitted.
    Every entry records the environment variables it was derived from, so a
    defensive :meth:`invalidate` on each assignment drops entries even if the
    static analysis and the executed writes ever disagree.
    """

    def __init__(self, invariants: frozenset[str]):
        self.invariants = invariants
        self._entries: dict[Any, tuple[Any, frozenset[str]]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Any) -> Any | None:
        entry = self._entries.get(key)
        return entry[0] if entry is not None else None

    def put(self, key: Any, value: Any, depends: frozenset[str]) -> None:
        self._entries[key] = (value, frozenset(depends))

    def invalidate(self, name: str) -> int:
        """Drop every cached value derived from environment variable ``name``."""
        stale = [key for key, (_value, depends) in self._entries.items() if name in depends]
        for key in stale:
            del self._entries[key]
        return len(stale)


class PlanSkeletonCache:
    """Lowered plan skeletons reused across ``while``-loop iterations.

    Created by the :class:`~repro.algebra.runner.ProgramRunner` per ``while``
    statement (like the :class:`LoopInvariantCache`, but for plan *structure*
    rather than plan *data*).  An entry maps a comprehension term -- the loop
    body statements repeat the same terms every iteration -- to the annotated
    :class:`~repro.algebra.plan.PlanNode` tree its first evaluation built,
    plus the scan leaves that read mutated program variables.  Iterations 2+
    rebind those scans to the variables' current datasets and re-lower the
    tree, skipping the qualifier walk, CSE bookkeeping and the annotate pass
    (``metrics.plan_cache_hits`` counts the reuses).

    The evaluator only admits *skeleton-safe* builds: every value snapshotted
    into the tree's closures at build time (driver bindings, local bags,
    derived scan datasets) was loop-invariant, and every mutated input is a
    bare program variable readable from the live environment.  Everything
    else the closures touch resolves late through ``env.values``, so a reused
    skeleton computes record-for-record what a rebuild would.  ``depends``
    lists the invariant variables a skeleton snapshotted; a defensive
    :meth:`invalidate` on every assignment drops entries if the static
    invariance analysis and the executed writes ever disagree.
    """

    def __init__(self) -> None:
        self._entries: dict[
            Any, tuple[PlanNode, tuple[tuple[Any, str], ...], frozenset[str]]
        ] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Any) -> tuple[PlanNode, tuple[tuple[Any, str], ...]] | None:
        entry = self._entries.get(key)
        return (entry[0], entry[1]) if entry is not None else None

    def put(
        self,
        key: Any,
        root: PlanNode,
        rebinds: tuple[tuple[Any, str], ...],
        depends: frozenset[str],
    ) -> None:
        self._entries[key] = (root, rebinds, frozenset(depends))

    def invalidate(self, name: str) -> int:
        """Drop every skeleton that snapshotted environment variable ``name``."""
        stale = [key for key, entry in self._entries.items() if name in entry[2]]
        for key in stale:
            del self._entries[key]
        return len(stale)


def keyed_demand_counts(program: Any, *, top_level_only: bool = False) -> dict[str, int]:
    """Program-wide demand for key-placed variables (the global pass).

    Walks every assignment term of a translated
    :class:`~repro.translate.target.TargetProgram` and counts, per program
    variable, how many downstream operators would consume it *by its pair
    key*: array merges (⊳ / ⊳⊕ coGroup both operands by key) and generators
    whose pattern's key component feeds an equi-join condition or a group-by
    key in the same comprehension.  The runner hash-partitions a freshly
    assigned, not-yet-placed pair dataset whose demand is at least 2: one
    placement shuffle then lets every keyed consumer run narrow, which a
    per-statement planner (seeing one consumer at a time) could never
    justify.

    With ``top_level_only`` the walk skips while-loop bodies: an unmutated
    input consumed inside a loop is loop-invariant there, and the
    loop-invariant cache already shuffles it exactly once -- counting those
    consumers would justify a placement shuffle that buys nothing.
    """
    demand: dict[str, int] = {}

    def count(name: str) -> None:
        demand[name] = demand.get(name, 0) + 1

    def keyed_variables(comp: ir.Comprehension) -> set[str]:
        names: set[str] = set()
        for qualifier in comp.qualifiers:
            if isinstance(qualifier, ir.Condition):
                term = qualifier.term
                if isinstance(term, ir.CBinOp) and term.op == "==":
                    names |= ir.free_variables(term)
            elif isinstance(qualifier, ir.GroupBy):
                names |= ir.free_variables(qualifier.key_term())
        return names

    def walk(term: ir.Term) -> None:
        if isinstance(term, (ir.Merge, ir.MergeWith)):
            for side in (term.left, term.right):
                if isinstance(side, ir.CVar):
                    count(side.name)
                else:
                    walk(side)
            return
        if isinstance(term, ir.Comprehension):
            keyed = keyed_variables(term)
            for qualifier in term.qualifiers:
                if isinstance(qualifier, ir.Generator):
                    domain = qualifier.domain
                    pattern = qualifier.pattern
                    if (
                        isinstance(domain, ir.CVar)
                        and isinstance(pattern, ir.PTuple)
                        and len(pattern.elements) == 2
                    ):
                        key_vars = set(pattern.elements[0].variables())
                        if key_vars and key_vars <= keyed:
                            count(domain.name)
                            continue
                for sub in qualifier.terms():
                    walk(sub)
            walk(term.head)
            return
        for child in term.children():
            walk(child)

    if top_level_only:
        assignments = (s for s in program.statements if isinstance(s, TargetAssign))
    else:
        assignments = program.assignments()
    for assignment in assignments:
        walk(assignment.term)
    return demand


def signature_env_deps(signature: Any) -> frozenset[str]:
    """Environment variable names a plan signature's terms mention.

    Bound row variables show up too; they are harmless extras -- invalidation
    only ever asks about assigned program variables.
    """
    names: set[str] = set()

    def walk(obj: Any) -> None:
        if isinstance(obj, ir.Term):
            names.update(ir.free_variables(obj))
        elif isinstance(obj, tuple):
            for element in obj:
                walk(element)

    walk(signature)
    return frozenset(names)


class Planner:
    """Annotates a logical plan and lowers it to a runtime Dataset."""

    def __init__(
        self,
        context: DistributedContext,
        trace: list[str] | None = None,
        loop_cache: LoopInvariantCache | None = None,
    ):
        self.context = context
        self.trace = trace if trace is not None else []
        self.loop_cache = loop_cache if context.plan_optimize else None
        self._lowered: dict[int, Dataset] = {}

    # -- the public entry point --------------------------------------------------

    def lower(self, root: PlanNode) -> Dataset:
        """Annotate ``root`` and lower it to a Dataset."""
        self.annotate(root)
        return self._lower(root)

    def relower(self, root: PlanNode) -> Dataset:
        """Lower an already-annotated tree (plan-skeleton cache hits).

        The annotate pass is structural -- it compares IR terms, never
        datasets -- so its per-node decisions from the first lowering are
        still exact after the skeleton's mutated scans were rebound; only
        the Dataset emission needs to run again."""
        return self._lower(root)

    # -- annotation --------------------------------------------------------------

    def annotate(self, node: PlanNode) -> None:
        """Post-order pass computing partitioner propagation decisions."""
        for child in node.children:
            self.annotate(child)
        if not self.context.plan_optimize:
            return
        if isinstance(node, (ReduceByKeyNode, GroupByKeyNode)):
            child_key = node.child.row_key_term
            if child_key is not None and child_key == node.key_term:
                node.input_prepartitioned = True
                node.notes.append("input rows already placed by the group key")
                # Thread the upstream group's runtime partitioner through the
                # intermediate rebuild/let maps so the keying map's
                # preserves_partitioning claim is backed by real metadata and
                # the keyed shuffle lowers to a narrow pass.
                self._mark_carry_chain(node.child)
            node.row_key_term = node.pattern_term
        elif isinstance(node, HashJoinNode):
            # One equi-join key: when a side's records are already placed by
            # that key (a pre-placed input, or rows carrying an upstream
            # group's placement), its keying map emits the same raw key and
            # can keep the partitioner -- the runtime then skips that side's
            # map-side shuffle, or runs the whole join narrow when both
            # sides qualify.  Composite keys re-key by a tuple the placement
            # does not cover, so they never claim preservation.
            if len(node.left_key_terms) == 1:
                left_key = node.left.row_key_term
                if left_key is not None and left_key == node.left_key_terms[0]:
                    node.left_prepartitioned = True
                    node.notes.append("build rows already placed by the join key")
                    self._mark_carry_chain(node.left)
                if self._scan_placed_by(node.right, node.sig, node.right_key_terms):
                    node.right_prepartitioned = True
                    node.notes.append(
                        f"{node.domain_label}: scan already placed by the join key"
                    )
        elif isinstance(node, NarrowNode):
            if (
                node.sig is not None
                and node.sig
                and node.sig[0] == "bind"
                and isinstance(node.child, ScanNode)
                and node.child.dataset is not None
                and node.child.dataset.partitioner is not None
            ):
                # The first generator scans a placed pair dataset: after the
                # bind map its rows are (still) grouped by the pattern's key
                # variable.  Seeding the claim here is what lets downstream
                # group-bys and joins on that key skip their shuffle -- the
                # payoff of the whole-program placement pass.
                pattern = node.sig[1]
                if (
                    isinstance(pattern, ir.PTuple)
                    and len(pattern.elements) == 2
                    and isinstance(pattern.elements[0], ir.PVar)
                ):
                    node.row_key_term = ir.CVar(pattern.elements[0].name)
                    node.carry_partitioner = True
                    node.notes.append("scan of a placed dataset: rows keep its placement")
            elif node.key_transparent and node.child is not None:
                incoming = node.child.row_key_term
                if incoming is not None and set(node.binds) & ir.free_variables(incoming):
                    # A let rebinding a variable of the key term: the rows
                    # remain placed by the *old* value, so the claim (which a
                    # later head would compare against the *new* binding)
                    # must be dropped.
                    incoming = None
                node.row_key_term = incoming
            if node.head_key_term is not None and node.child is not None:
                incoming = node.child.row_key_term
                if incoming is not None and incoming == node.head_key_term:
                    node.carry_partitioner = True
                    node.row_key_term = node.head_key_term
                    node.notes.append(
                        f"head re-keys by {node.head_key_term}: partitioner preserved"
                    )
                    self._mark_carry_chain(node.child)

    @staticmethod
    def _scan_placed_by(
        side: PlanNode, join_sig: tuple | None, key_terms: tuple[ir.Term, ...]
    ) -> bool:
        """True when a join's scan side is hash-placed by its single join key.

        The scan feeds the join as raw (key, value) pairs; the join signature
        carries the generator pattern, so the placement claim holds exactly
        when the join key is the pattern's key variable."""
        if not isinstance(side, ScanNode) or side.dataset is None:
            return False
        if side.dataset.partitioner is None:
            return False
        if join_sig is None or len(join_sig) < 4:
            return False
        pattern = join_sig[3]
        return (
            isinstance(pattern, ir.PTuple)
            and len(pattern.elements) == 2
            and isinstance(pattern.elements[0], ir.PVar)
            and key_terms == (ir.CVar(pattern.elements[0].name),)
        )

    def _mark_carry_chain(self, node: PlanNode) -> None:
        """Thread ``preserves_partitioning`` from a group node to the head."""
        current: PlanNode | None = node
        while current is not None:
            if isinstance(current, NarrowNode) and current.key_transparent:
                current.carry_partitioner = True
                current = current.child
                continue
            if isinstance(current, (ReduceByKeyNode, GroupByKeyNode)):
                current.carry_partitioner = True
            return

    # -- lowering ----------------------------------------------------------------

    def _lower(self, node: PlanNode) -> Dataset:
        cached = self._lowered.get(id(node))
        if cached is not None:
            return cached
        if isinstance(node, ScanNode):
            dataset = node.dataset
        elif isinstance(node, NarrowNode):
            dataset = self._lower_narrow(node)
        elif isinstance(node, HashJoinNode):
            dataset = self._lower_hash_join(node)
        elif isinstance(node, ProductNode):
            dataset = self._lower_product(node)
        elif isinstance(node, ReduceByKeyNode):
            dataset = self._lower_reduce_by_key(node)
        elif isinstance(node, GroupByKeyNode):
            dataset = self._lower_group_by_key(node)
        else:  # pragma: no cover - the evaluator only builds the above
            raise ExecutionError(f"unknown plan node {node!r}")
        self._lowered[id(node)] = dataset
        return dataset

    def _lower_narrow(self, node: NarrowNode) -> Dataset:
        child = self._lower(node.child)
        keep = node.carry_partitioner
        if node.kind == MAP:
            return child.map(node.function, preserves_partitioning=keep)
        if node.kind == FLAT_MAP:
            return child.flat_map(node.function, preserves_partitioning=keep)
        if node.kind == FILTER:
            return child.filter(node.function)
        raise ExecutionError(f"unknown narrow plan kind {node.kind!r}")  # pragma: no cover

    def _lower_hash_join(self, node: HashJoinNode) -> Dataset:
        keyed_left = self._keyed_join_side(
            node,
            node.left,
            node.left_key_fn,
            node.left_key_terms,
            "build rows",
            node.left_prepartitioned,
        )
        keyed_right = self._keyed_join_side(
            node,
            node.right,
            node.right_key_fn,
            node.right_key_terms,
            node.domain_label,
            node.right_prepartitioned,
        )
        joined = keyed_left.join(keyed_right)
        return joined.map(node.rebuild_fn)

    def _keyed_join_side(
        self,
        join: HashJoinNode,
        side: PlanNode,
        key_fn: Callable[[Any], Any],
        key_terms: tuple[ir.Term, ...],
        label: str,
        prepartitioned: bool = False,
    ) -> Dataset:
        """Lower one join input keyed by its join-key terms.

        Loop-invariant sides are materialized once per loop: placed with the
        shuffle's hash partitioner when they are too big to broadcast (the
        runtime then skips their map-side shuffle on every iteration), plainly
        cached otherwise (the broadcast build side is at least not recomputed).
        """
        cache_key = None
        if self.loop_cache is not None:
            side_signature = side.signature()
            if side_signature is not None:
                cache_key = ("join-side", side_signature, key_terms)
                hit = self.loop_cache.get(cache_key)
                if hit is not None:
                    self.context.metrics.record_loop_invariant_reuse()
                    self.trace.append(f"loop-invariant join side reused: {label}")
                    join.notes.append(f"loop-invariant side reused: {label}")
                    return hit
        keyed = self._lower(side).map(key_fn, preserves_partitioning=prepartitioned)
        if cache_key is not None:
            keyed = keyed.materialize()
            if keyed.count() > self.context.broadcast_join_threshold:
                keyed = keyed.partition_by(HashPartitioner(self.context.num_partitions))
                placement = "hash-partitioned"
            else:
                placement = "materialized"
            self.loop_cache.put(cache_key, keyed, signature_env_deps(cache_key))
            self.trace.append(f"loop-invariant join side cached ({placement}): {label}")
            join.notes.append(f"loop-invariant side cached ({placement}): {label}")
        return keyed

    def _lower_product(self, node: ProductNode) -> Dataset:
        """The no-key nested loop: broadcast the smaller side when it fits.

        This is the plan-time broadcast-vs-shuffle selection for products --
        the same heuristic (and threshold) the runtime applies to hash joins
        at force time.
        """
        rows = self._lower(node.left)
        dataset = self._lower(node.right)
        context = self.context
        bind = node.bind_right_fn
        side = choose_broadcast_side(
            rows.count(), dataset.count(), context.broadcast_join_threshold
        )
        if side == "right":
            elements = dataset.collect()
            context.metrics.record_broadcast()
            context.metrics.record_join_strategy("broadcast")
            node.notes.append("broadcast right side")

            def expand_broadcast(row: dict[str, Any]) -> list[dict[str, Any]]:
                return [{**row, **bind(element)} for element in elements]

            flat_fn = vectorize.extend_flat_map(
                [bind(element) for element in elements], expand_broadcast
            )
            return rows.flat_map(flat_fn or expand_broadcast)
        if side == "left":
            row_list = rows.collect()
            context.metrics.record_broadcast()
            context.metrics.record_join_strategy("broadcast")
            node.notes.append("broadcast left side (rows)")
            return dataset.flat_map(
                lambda element: [{**row, **bind(element)} for row in row_list]
            )
        context.metrics.record_join_strategy("cartesian")
        node.notes.append("cartesian (both sides above the broadcast threshold)")
        product = rows.cartesian(dataset)
        return product.map(lambda pair: {**pair[0], **bind(pair[1])})

    def _lower_reduce_by_key(self, node: ReduceByKeyNode) -> Dataset:
        child = self._lower(node.child)
        keyed = child.map(node.key_fn, preserves_partitioning=node.input_prepartitioned)
        reduced = keyed.reduce_by_key(node.combine_fn)
        return reduced.map(node.rebuild_fn, preserves_partitioning=node.carry_partitioner)

    def _lower_group_by_key(self, node: GroupByKeyNode) -> Dataset:
        child = self._lower(node.child)
        keyed = child.map(node.key_fn, preserves_partitioning=node.input_prepartitioned)
        grouped = keyed.group_by_key()
        return grouped.map(node.lift_fn, preserves_partitioning=node.carry_partitioner)


def render_plan(node: PlanNode) -> str:
    """Re-exported for convenience (see :func:`repro.algebra.plan.render_plan`)."""
    return plan_mod.render_plan(node)
