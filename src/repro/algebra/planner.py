"""The partition-aware planner: annotates and lowers logical plans.

The :class:`Planner` consumes the :class:`~repro.algebra.plan.PlanNode` trees
built by the :class:`~repro.algebra.evaluator.TermEvaluator` and produces
runtime :class:`~repro.runtime.dataset.Dataset` dataflows.  Lowering emits
exactly the Dataset operations the evaluator historically emitted inline, so
results are record-for-record identical; what the planner adds are the
*decisions* the inline emission could not make:

* **partitioner propagation** (:meth:`Planner.annotate`): group-by nodes
  place their output rows by the group key term; key-transparent nodes
  (lets, conditions, rebuilds) pass that placement along; when the
  comprehension head re-keys its output pairs by the same term, the chain is
  lowered with ``preserves_partitioning=True`` and the runtime's
  partitioner metadata survives -- enabling the Dataset layer's narrow
  (shuffle-free) fast paths for every downstream merge, join and group-by
  over the same key.
* **plan-time join strategy** (:meth:`Planner._lower_product`): the
  no-join-key nested loop picks broadcast vs. cartesian by comparing the
  materialized side sizes against ``context.broadcast_join_threshold`` --
  the same knob the runtime's hash joins use.
* **loop-invariant caching**: subtrees whose :meth:`PlanNode.signature` is
  defined (structurally identifiable *and* independent of every variable the
  enclosing ``while`` body assigns) are looked up in the loop's
  :class:`LoopInvariantCache`.  A hash-join side built from invariant data
  is keyed, materialized and -- when too big to broadcast -- hash-partitioned
  *once*; iterations 2+ reuse the placed dataset, so only the mutated side
  of the join is ever re-shuffled (``metrics.loop_invariant_reuses`` counts
  the hits).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.algebra import plan as plan_mod
from repro.algebra.plan import (
    FILTER,
    FLAT_MAP,
    MAP,
    GroupByKeyNode,
    HashJoinNode,
    NarrowNode,
    PlanNode,
    ProductNode,
    ReduceByKeyNode,
    ScanNode,
)
from repro.comprehension import ir
from repro.errors import ExecutionError
from repro.runtime.context import DistributedContext
from repro.runtime.dataset import Dataset, choose_broadcast_side
from repro.runtime.partitioner import HashPartitioner


class LoopInvariantCache:
    """Datasets hoisted out of a ``while`` loop, keyed by plan signature.

    Created by the :class:`~repro.algebra.runner.ProgramRunner` per ``while``
    statement.  ``invariants`` are the environment variables the loop body
    never assigns; only values derived exclusively from them are admitted.
    Every entry records the environment variables it was derived from, so a
    defensive :meth:`invalidate` on each assignment drops entries even if the
    static analysis and the executed writes ever disagree.
    """

    def __init__(self, invariants: frozenset[str]):
        self.invariants = invariants
        self._entries: dict[Any, tuple[Any, frozenset[str]]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Any) -> Any | None:
        entry = self._entries.get(key)
        return entry[0] if entry is not None else None

    def put(self, key: Any, value: Any, depends: frozenset[str]) -> None:
        self._entries[key] = (value, frozenset(depends))

    def invalidate(self, name: str) -> int:
        """Drop every cached value derived from environment variable ``name``."""
        stale = [key for key, (_value, depends) in self._entries.items() if name in depends]
        for key in stale:
            del self._entries[key]
        return len(stale)


def signature_env_deps(signature: Any) -> frozenset[str]:
    """Environment variable names a plan signature's terms mention.

    Bound row variables show up too; they are harmless extras -- invalidation
    only ever asks about assigned program variables.
    """
    names: set[str] = set()

    def walk(obj: Any) -> None:
        if isinstance(obj, ir.Term):
            names.update(ir.free_variables(obj))
        elif isinstance(obj, tuple):
            for element in obj:
                walk(element)

    walk(signature)
    return frozenset(names)


class Planner:
    """Annotates a logical plan and lowers it to a runtime Dataset."""

    def __init__(
        self,
        context: DistributedContext,
        trace: list[str] | None = None,
        loop_cache: LoopInvariantCache | None = None,
    ):
        self.context = context
        self.trace = trace if trace is not None else []
        self.loop_cache = loop_cache if context.plan_optimize else None
        self._lowered: dict[int, Dataset] = {}

    # -- the public entry point --------------------------------------------------

    def lower(self, root: PlanNode) -> Dataset:
        """Annotate ``root`` and lower it to a Dataset."""
        self.annotate(root)
        return self._lower(root)

    # -- annotation --------------------------------------------------------------

    def annotate(self, node: PlanNode) -> None:
        """Post-order pass computing partitioner propagation decisions."""
        for child in node.children:
            self.annotate(child)
        if not self.context.plan_optimize:
            return
        if isinstance(node, (ReduceByKeyNode, GroupByKeyNode)):
            child_key = node.child.row_key_term
            if child_key is not None and child_key == node.key_term:
                node.input_prepartitioned = True
                node.notes.append("input rows already placed by the group key")
                # Thread the upstream group's runtime partitioner through the
                # intermediate rebuild/let maps so the keying map's
                # preserves_partitioning claim is backed by real metadata and
                # the keyed shuffle lowers to a narrow pass.
                self._mark_carry_chain(node.child)
            node.row_key_term = node.pattern_term
        elif isinstance(node, NarrowNode):
            if node.key_transparent and node.child is not None:
                incoming = node.child.row_key_term
                if incoming is not None and set(node.binds) & ir.free_variables(incoming):
                    # A let rebinding a variable of the key term: the rows
                    # remain placed by the *old* value, so the claim (which a
                    # later head would compare against the *new* binding)
                    # must be dropped.
                    incoming = None
                node.row_key_term = incoming
            if node.head_key_term is not None and node.child is not None:
                incoming = node.child.row_key_term
                if incoming is not None and incoming == node.head_key_term:
                    node.carry_partitioner = True
                    node.row_key_term = node.head_key_term
                    node.notes.append(
                        f"head re-keys by {node.head_key_term}: partitioner preserved"
                    )
                    self._mark_carry_chain(node.child)

    def _mark_carry_chain(self, node: PlanNode) -> None:
        """Thread ``preserves_partitioning`` from a group node to the head."""
        current: PlanNode | None = node
        while current is not None:
            if isinstance(current, NarrowNode) and current.key_transparent:
                current.carry_partitioner = True
                current = current.child
                continue
            if isinstance(current, (ReduceByKeyNode, GroupByKeyNode)):
                current.carry_partitioner = True
            return

    # -- lowering ----------------------------------------------------------------

    def _lower(self, node: PlanNode) -> Dataset:
        cached = self._lowered.get(id(node))
        if cached is not None:
            return cached
        if isinstance(node, ScanNode):
            dataset = node.dataset
        elif isinstance(node, NarrowNode):
            dataset = self._lower_narrow(node)
        elif isinstance(node, HashJoinNode):
            dataset = self._lower_hash_join(node)
        elif isinstance(node, ProductNode):
            dataset = self._lower_product(node)
        elif isinstance(node, ReduceByKeyNode):
            dataset = self._lower_reduce_by_key(node)
        elif isinstance(node, GroupByKeyNode):
            dataset = self._lower_group_by_key(node)
        else:  # pragma: no cover - the evaluator only builds the above
            raise ExecutionError(f"unknown plan node {node!r}")
        self._lowered[id(node)] = dataset
        return dataset

    def _lower_narrow(self, node: NarrowNode) -> Dataset:
        child = self._lower(node.child)
        keep = node.carry_partitioner
        if node.kind == MAP:
            return child.map(node.function, preserves_partitioning=keep)
        if node.kind == FLAT_MAP:
            return child.flat_map(node.function, preserves_partitioning=keep)
        if node.kind == FILTER:
            return child.filter(node.function)
        raise ExecutionError(f"unknown narrow plan kind {node.kind!r}")  # pragma: no cover

    def _lower_hash_join(self, node: HashJoinNode) -> Dataset:
        keyed_left = self._keyed_join_side(
            node, node.left, node.left_key_fn, node.left_key_terms, "build rows"
        )
        keyed_right = self._keyed_join_side(
            node, node.right, node.right_key_fn, node.right_key_terms, node.domain_label
        )
        joined = keyed_left.join(keyed_right)
        return joined.map(node.rebuild_fn)

    def _keyed_join_side(
        self,
        join: HashJoinNode,
        side: PlanNode,
        key_fn: Callable[[Any], Any],
        key_terms: tuple[ir.Term, ...],
        label: str,
    ) -> Dataset:
        """Lower one join input keyed by its join-key terms.

        Loop-invariant sides are materialized once per loop: placed with the
        shuffle's hash partitioner when they are too big to broadcast (the
        runtime then skips their map-side shuffle on every iteration), plainly
        cached otherwise (the broadcast build side is at least not recomputed).
        """
        cache_key = None
        if self.loop_cache is not None:
            side_signature = side.signature()
            if side_signature is not None:
                cache_key = ("join-side", side_signature, key_terms)
                hit = self.loop_cache.get(cache_key)
                if hit is not None:
                    self.context.metrics.record_loop_invariant_reuse()
                    self.trace.append(f"loop-invariant join side reused: {label}")
                    join.notes.append(f"loop-invariant side reused: {label}")
                    return hit
        keyed = self._lower(side).map(key_fn)
        if cache_key is not None:
            keyed = keyed.materialize()
            if keyed.count() > self.context.broadcast_join_threshold:
                keyed = keyed.partition_by(HashPartitioner(self.context.num_partitions))
                placement = "hash-partitioned"
            else:
                placement = "materialized"
            self.loop_cache.put(cache_key, keyed, signature_env_deps(cache_key))
            self.trace.append(f"loop-invariant join side cached ({placement}): {label}")
            join.notes.append(f"loop-invariant side cached ({placement}): {label}")
        return keyed

    def _lower_product(self, node: ProductNode) -> Dataset:
        """The no-key nested loop: broadcast the smaller side when it fits.

        This is the plan-time broadcast-vs-shuffle selection for products --
        the same heuristic (and threshold) the runtime applies to hash joins
        at force time.
        """
        rows = self._lower(node.left)
        dataset = self._lower(node.right)
        context = self.context
        bind = node.bind_right_fn
        side = choose_broadcast_side(
            rows.count(), dataset.count(), context.broadcast_join_threshold
        )
        if side == "right":
            elements = dataset.collect()
            context.metrics.record_broadcast()
            context.metrics.record_join_strategy("broadcast")
            node.notes.append("broadcast right side")
            return rows.flat_map(
                lambda row: [{**row, **bind(element)} for element in elements]
            )
        if side == "left":
            row_list = rows.collect()
            context.metrics.record_broadcast()
            context.metrics.record_join_strategy("broadcast")
            node.notes.append("broadcast left side (rows)")
            return dataset.flat_map(
                lambda element: [{**row, **bind(element)} for row in row_list]
            )
        context.metrics.record_join_strategy("cartesian")
        node.notes.append("cartesian (both sides above the broadcast threshold)")
        product = rows.cartesian(dataset)
        return product.map(lambda pair: {**pair[0], **bind(pair[1])})

    def _lower_reduce_by_key(self, node: ReduceByKeyNode) -> Dataset:
        child = self._lower(node.child)
        keyed = child.map(node.key_fn, preserves_partitioning=node.input_prepartitioned)
        reduced = keyed.reduce_by_key(node.combine_fn)
        return reduced.map(node.rebuild_fn, preserves_partitioning=node.carry_partitioner)

    def _lower_group_by_key(self, node: GroupByKeyNode) -> Dataset:
        child = self._lower(node.child)
        keyed = child.map(node.key_fn, preserves_partitioning=node.input_prepartitioned)
        grouped = keyed.group_by_key()
        return grouped.map(node.lift_fn, preserves_partitioning=node.carry_partitioner)


def render_plan(node: PlanNode) -> str:
    """Re-exported for convenience (see :func:`repro.algebra.plan.render_plan`)."""
    return plan_mod.render_plan(node)
