"""Evaluation of comprehension terms over the local DISC runtime.

The :class:`TermEvaluator` is the analogue of DIQL's comprehension-to-algebra
compiler: it walks the qualifiers of a comprehension from left to right and
builds a **logical plan** (:mod:`repro.algebra.plan`) that the partition-aware
:class:`~repro.algebra.planner.Planner` annotates and lowers to a dataflow of
:class:`~repro.runtime.dataset.Dataset` operations.

The important plan decisions are the ones the paper relies on:

* a generator over a dataset joined to the rows built so far through an
  equality condition becomes a **hash equi-join** (possibly with a composite
  key);
* a generator with no linking condition becomes a **broadcast nested-loop
  join** of the smaller side (semantically a cartesian product -- this is the
  "expensive join" the paper observes for KMeans);
* a group-by whose lifted variables are only consumed by aggregations becomes
  a **reduceByKey**; otherwise it is a **groupByKey**;
* the array merges ⊳ and ⊳⊕ become **coGroups**.

Building the plan first (instead of emitting Dataset calls inline) lets the
planner eliminate work the inline emission could not see:

* the same comprehension sub-term scanned twice in one statement shares one
  dataset (**common sub-expression elimination**, memoized per statement);
* sub-terms and join sides that depend only on variables the enclosing
  ``while`` loop never assigns are evaluated -- and shuffled -- **once per
  loop** through the runner-owned
  :class:`~repro.algebra.planner.LoopInvariantCache`;
* group-by outputs whose head re-keys by the group key keep their
  partitioner, so downstream merges and joins on the same key run as narrow,
  shuffle-free stages.

Scalar sub-terms are evaluated locally inside tasks with the shared operator
semantics of :mod:`repro.operators`, so the distributed path and the
sequential interpreter agree on every arithmetic detail.  The Dataset
operations the planner emits are lazy: scans, per-row expansions, filters and
head projections fuse into single per-partition passes at the next shuffle or
action, exactly as before.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro import operators
from repro.algebra import plan as plan_mod
from repro.algebra.plan import (
    GroupByKeyNode,
    HashJoinNode,
    NarrowNode,
    PlanNode,
    ProductNode,
    ReduceByKeyNode,
    ScanNode,
)
from repro.algebra import vectorize
from repro.algebra.planner import LoopInvariantCache, Planner, PlanSkeletonCache
from repro.comprehension import ir
from repro.comprehension.monoids import DEFAULT_MONOIDS, MonoidRegistry
from repro.errors import CompilationError, ExecutionError
from repro.functions import DEFAULT_FUNCTIONS, FunctionRegistry
from repro.runtime.context import DistributedContext
from repro.runtime.dataset import DEFAULT_BROADCAST_JOIN_THRESHOLD, Dataset
from repro.runtime.partitioner import HashPartitioner

#: Backwards-compatible alias: the evaluator now shares the runtime's join
#: strategy knob (``context.broadcast_join_threshold``) instead of keeping its
#: own.  The threshold only affects performance, never results.
BROADCAST_THRESHOLD = DEFAULT_BROADCAST_JOIN_THRESHOLD


@dataclass
class EvaluationEnvironment:
    """Everything a term needs to be evaluated.

    Attributes:
        context: the runtime context used to create datasets.
        values: program variables -- Datasets for arrays/collections, plain
            Python values for scalars.
        functions: scalar function registry.
        monoids: commutative monoid registry.
    """

    context: DistributedContext
    values: dict[str, Any] = field(default_factory=dict)
    functions: FunctionRegistry = field(default_factory=lambda: DEFAULT_FUNCTIONS)
    monoids: MonoidRegistry = field(default_factory=lambda: DEFAULT_MONOIDS)

    def copy_with(self, values: dict[str, Any]) -> "EvaluationEnvironment":
        merged = dict(self.values)
        merged.update(values)
        return EvaluationEnvironment(self.context, merged, self.functions, self.monoids)


@dataclass
class _CompBuild:
    """Mutable state of one comprehension's plan construction.

    ``driver_invariant`` tracks whether every driver-level binding so far was
    computed from loop-invariant data -- a prerequisite for marking plan
    nodes (whose closures capture those bindings) loop-invariant.
    """

    rows: PlanNode | None = None
    bound_order: list[str] = field(default_factory=list)
    driver_bindings: dict[str, Any] = field(default_factory=dict)
    driver_invariant: bool = True
    driver_alive: bool = True
    #: Set when a generator's domain is empty: the comprehension denotes the
    #: empty bag and the remaining qualifiers are neither built nor
    #: evaluated (matching the sequential interpreter, which never reaches
    #: inner loops of an empty outer loop).
    dead: bool = False
    #: Whether the finished plan tree may enter the per-loop
    #: :class:`~repro.algebra.planner.PlanSkeletonCache`.  Cleared whenever a
    #: build-time snapshot (a local bag baked into an expand closure, a
    #: driver-evaluated condition, a derived scan dataset) captured a value
    #: that could change across iterations; everything else in the tree's
    #: closures resolves late through ``env.values`` or is rebound on reuse.
    skeleton_safe: bool = True
    #: Scan leaves over mutable bare program variables, with the variable
    #: name: a reused skeleton rebinds each to the variable's current value.
    rebind_scans: list[tuple[ScanNode, str]] = field(default_factory=list)

    def bound_names(self) -> frozenset[str]:
        return frozenset(self.bound_order) | frozenset(self.driver_bindings)


class TermEvaluator:
    """Evaluates comprehension terms against an :class:`EvaluationEnvironment`."""

    def __init__(
        self,
        environment: EvaluationEnvironment,
        trace: list[str] | None = None,
        loop_cache: LoopInvariantCache | None = None,
        skeleton_cache: PlanSkeletonCache | None = None,
    ):
        self.env = environment
        # Keyed by id() for speed but the value keeps a strong reference to
        # the keyed object *and* re-checks identity on lookup: a bare
        # id()-keyed dict would silently serve a stale bag when the original
        # object was garbage collected and its id reused.
        self._local_bag_cache: dict[int, tuple[Any, list[Any]]] = {}
        #: Per-statement CSE memo: comprehension sub-term -> lowered Dataset.
        self._term_dataset_cache: dict[Any, Dataset] = {}
        #: While-loop cache shared across iterations (None outside loops).
        self.loop_cache = loop_cache
        #: While-loop plan-skeleton cache (None outside loops or when the
        #: context's ``plan_cache`` knob is off).
        self.skeleton_cache = skeleton_cache
        #: The last logical plan lowered by :meth:`evaluate_comprehension`.
        self.last_plan: PlanNode | None = None
        #: Human-readable log of plan decisions (joins, group-bys, merges).
        self.trace: list[str] = trace if trace is not None else []

    # ------------------------------------------------------------------
    # driver-level evaluation
    # ------------------------------------------------------------------

    def evaluate(self, term: ir.Term) -> Any:
        """Evaluate a term at the driver: datasets for bag terms, scalars otherwise."""
        if isinstance(term, ir.Comprehension):
            return self.evaluate_comprehension(term)
        if isinstance(term, ir.Merge):
            left = self._merge_operand(term.left)
            right = self._merge_operand(term.right)
            self.trace.append("merge (<|) via coGroup")
            return left.merge(right)
        if isinstance(term, ir.MergeWith):
            left = self._merge_operand(term.left)
            right = self._merge_operand(term.right)
            monoid = self.env.monoids.get(term.op)
            self.trace.append(f"merge (<|{term.op}) via coGroup")
            return left.merge_with(right, monoid.combine)
        if isinstance(term, ir.RangeTerm):
            lower = self.evaluate_local(term.lower, {})
            upper = self.evaluate_local(term.upper, {})
            return self.env.context.range_dataset(int(lower), int(upper))
        if isinstance(term, ir.EmptyBag):
            return self.env.context.empty()
        if isinstance(term, ir.CVar):
            return self._lookup(term.name, {})
        return self.evaluate_local(term, {})

    def evaluate_bag(self, term: ir.Term) -> Dataset:
        """Evaluate a term that denotes a bag, coercing the result to a Dataset."""
        return self.as_dataset(self.evaluate(term))

    def as_dataset(self, value: Any) -> Dataset:
        """Coerce a driver value to a Dataset."""
        if isinstance(value, Dataset):
            return value
        if isinstance(value, dict):
            return self.env.context.parallelize_pairs(value)
        if isinstance(value, (list, tuple, set)):
            return self.env.context.parallelize(list(value))
        raise ExecutionError(f"expected a collection, got {value!r}")

    def _merge_operand(self, term: ir.Term) -> Dataset:
        """Evaluate one side of an array merge (⊳ / ⊳⊕).

        A loop-invariant side is materialized and hash-partitioned *once* per
        while loop: the merge's coGroup then either skips that side's
        map-side shuffle or (when the other side is co-partitioned too) runs
        as a fully narrow zip stage.  Merge operands are always key-value
        arrays, so partitioning by the pair key is well-defined.
        """
        cache = self.loop_cache
        if (
            cache is not None
            and self.env.context.plan_optimize
            and self._term_is_invariant(term)
        ):
            key = ("merge-side", term)
            hit = cache.get(key)
            if hit is not None:
                self.env.context.metrics.record_loop_invariant_reuse()
                self.trace.append(f"loop-invariant merge side reused: {term}")
                return hit
            placed = (
                self.as_dataset(self.evaluate(term))
                .materialize()
                .partition_by(HashPartitioner(self.env.context.num_partitions))
            )
            cache.put(key, placed, ir.free_variables(term))
            self.trace.append(f"loop-invariant merge side cached (hash-partitioned): {term}")
            return placed
        return self.as_dataset(self.evaluate(term))

    # ------------------------------------------------------------------
    # loop-invariance helpers
    # ------------------------------------------------------------------

    def _term_is_invariant(self, term: ir.Term, bound: frozenset[str] = frozenset()) -> bool:
        """Whether ``term``'s free variables are loop-invariant (or locally bound)."""
        if self.loop_cache is None:
            return False
        invariants = self.loop_cache.invariants
        return all(
            name in invariants or name in bound for name in ir.free_variables(term)
        )

    def _node_invariant(self, build: _CompBuild, child_invariant: bool, *terms: ir.Term | None) -> bool:
        """Invariance of a new plan node: child subtree, driver bindings and
        every referenced term must be iteration-independent."""
        if self.loop_cache is None or not build.driver_invariant or not child_invariant:
            return False
        bound = build.bound_names()
        return all(
            self._term_is_invariant(term, bound) for term in terms if term is not None
        )

    # ------------------------------------------------------------------
    # comprehension evaluation
    # ------------------------------------------------------------------

    def evaluate_comprehension(self, comp: ir.Comprehension) -> Dataset | list[Any]:
        """Build and lower the logical plan for one comprehension.

        Returns a Dataset when the comprehension ranges over at least one
        dataset generator, or a plain list for purely local comprehensions
        (e.g. singleton bags).
        """
        if self.skeleton_cache is not None:
            reused = self._reuse_plan_skeleton(comp)
            if reused is not None:
                return reused
        build = _CompBuild()
        consumed: set[int] = set()
        qualifiers = list(comp.qualifiers)

        for position, qualifier in enumerate(qualifiers):
            if position in consumed:
                continue
            if not build.driver_alive or build.dead:
                break
            if isinstance(qualifier, ir.Generator):
                self._generator(qualifier, qualifiers, position, consumed, build)
            elif isinstance(qualifier, ir.LetBinding):
                self._let(qualifier, build)
            elif isinstance(qualifier, ir.Condition):
                self._condition(qualifier, build)
            elif isinstance(qualifier, ir.GroupBy):
                self._group_by(qualifier, qualifiers[position + 1 :], comp.head, build)
            else:
                raise CompilationError(f"unknown qualifier {qualifier!r}")

        if build.dead:
            # Nothing left to do; the result is empty regardless of the
            # remaining qualifiers.
            return self.env.context.empty()
        if not build.driver_alive:
            return []
        if build.rows is None:
            return [self.evaluate_local(comp.head, dict(build.driver_bindings))]
        head = comp.head
        base = dict(build.driver_bindings)
        evaluator = self

        def project_head(row: dict[str, Any]) -> Any:
            return evaluator.evaluate_local(head, {**base, **row})

        head_fn = vectorize.head_map(
            head,
            frozenset(build.bound_order),
            base,
            self._scope_values,
            project_head,
            self.env.functions,
        )
        head_key_term = None
        if isinstance(head, ir.CTuple) and len(head.elements) == 2:
            head_key_term = head.elements[0]
        node = NarrowNode(
            kind=plan_mod.MAP,
            function=head_fn or project_head,
            child=build.rows,
            describe="head",
            head_key_term=head_key_term,
        )
        node.sig = ("head", head)
        node.invariant = self._node_invariant(build, build.rows.invariant, head)
        lowered = self._lower_plan(node)
        if (
            self.skeleton_cache is not None
            and build.skeleton_safe
            and build.driver_invariant
        ):
            invariants = (
                self.loop_cache.invariants if self.loop_cache is not None else frozenset()
            )
            depends = frozenset(ir.free_variables(comp)) & invariants
            try:
                self.skeleton_cache.put(comp, node, tuple(build.rebind_scans), depends)
            except TypeError:
                # A term holding an unhashable constant cannot key the cache.
                pass
            else:
                self.trace.append(
                    f"plan skeleton cached ({len(build.rebind_scans)} rebindable scan(s))"
                )
        return lowered

    def _reuse_plan_skeleton(self, comp: ir.Comprehension) -> Dataset | None:
        """Rebind and re-lower a cached plan skeleton for ``comp``, if any.

        Returns None (build from scratch) when there is no cached skeleton or
        a mutated scan variable no longer holds a collection."""
        try:
            entry = self.skeleton_cache.get(comp)
        except TypeError:
            return None
        if entry is None:
            return None
        root, rebinds = entry
        datasets: dict[str, Dataset] = {}
        for _scan, name in rebinds:
            if name in datasets:
                continue
            value = self.env.values.get(name)
            if isinstance(value, Dataset):
                datasets[name] = value
            elif isinstance(value, dict):
                datasets[name] = self.env.context.parallelize_pairs(value)
            elif isinstance(value, (list, tuple, set)):
                datasets[name] = self.env.context.parallelize(list(value))
            else:
                return None
        for scan, name in rebinds:
            scan.dataset = datasets[name]
        self.env.context.metrics.record_plan_cache_hit()
        self.trace.append(f"plan skeleton reused ({len(rebinds)} scan(s) rebound)")
        self.last_plan = root
        planner = Planner(self.env.context, self.trace, self.loop_cache)
        return planner.relower(root)

    def _lower_plan(self, root: PlanNode) -> Dataset:
        self.last_plan = root
        planner = Planner(self.env.context, self.trace, self.loop_cache)
        return planner.lower(root)

    def _scope_values(self) -> dict[str, Any]:
        """Late-bound driver variables for vectorized kernels.

        Plan nodes are CSE/loop-cached, so a kernel built in one loop
        iteration may run in a later one; resolving free scalars through
        this hook (instead of a snapshot) keeps the batch path aligned with
        the record closures, which read ``env.values`` at call time.
        """
        return self.env.values

    # -- generators -----------------------------------------------------------

    def _generator(
        self,
        qualifier: ir.Generator,
        qualifiers: list[ir.Qualifier],
        position: int,
        consumed: set[int],
        build: _CompBuild,
    ) -> None:
        pattern = qualifier.pattern
        domain = qualifier.domain
        domain_variables = ir.free_variables(domain)
        row_dependent = build.rows is not None and any(
            name in build.bound_order for name in domain_variables
        )

        if row_dependent:
            # The domain depends on per-row values: expand it locally per row.
            base = dict(build.driver_bindings)
            evaluator = self

            def expand(row: dict[str, Any]) -> list[dict[str, Any]]:
                local = {**base, **row}
                bag = evaluator._as_local_bag(evaluator.evaluate_local(domain, local))
                out = []
                for element in bag:
                    binding = _bind_pattern(pattern, element)
                    out.append({**row, **binding})
                return out

            self.trace.append(f"per-row expansion of generator over {domain}")
            node = NarrowNode(
                kind=plan_mod.FLAT_MAP,
                function=expand,
                child=build.rows,
                describe=f"expand {domain}",
            )
            node.sig = ("expand", pattern, domain)
            node.invariant = self._node_invariant(build, build.rows.invariant, domain)
            build.rows = node
            build.bound_order.extend(pattern.variables())
            return

        dataset = self._domain_dataset(domain, build.driver_bindings)
        from_environment = dataset is not None
        domain_invariant = build.driver_invariant and self._term_is_invariant(
            domain, frozenset(build.driver_bindings)
        )
        if dataset is None:
            # The domain is a local (driver) bag: bind it per element.
            bag = self._as_local_bag(self.evaluate_local(domain, dict(build.driver_bindings)))
            if build.rows is None:
                if len(bag) == 1:
                    binding = _bind_pattern(pattern, bag[0])
                    build.driver_bindings.update(binding)
                    build.driver_invariant = build.driver_invariant and domain_invariant
                    return
                dataset = self.env.context.parallelize(bag)
            else:
                if not bag:
                    build.dead = True
                    return

                def expand_local(row: dict[str, Any]) -> list[dict[str, Any]]:
                    return [{**row, **_bind_pattern(pattern, element)} for element in bag]

                flat_fn = vectorize.extend_flat_map(
                    [_bind_pattern(pattern, element) for element in bag], expand_local
                )
                node = NarrowNode(
                    kind=plan_mod.FLAT_MAP,
                    function=flat_fn or expand_local,
                    child=build.rows,
                    describe=f"expand local {domain}",
                )
                node.sig = ("local-expand", pattern, domain)
                node.invariant = self._node_invariant(build, build.rows.invariant, domain)
                if not domain_invariant:
                    # The closure snapshots the bag; a variant domain would
                    # serve iteration 1's elements forever.
                    build.skeleton_safe = False
                build.rows = node
                build.bound_order.extend(pattern.variables())
                return

        if dataset.is_empty():
            # A generator over an empty bag empties the whole comprehension:
            # stop here so the remaining qualifiers' domains are never
            # evaluated (the interpreter oracle never reaches them either).
            build.dead = True
            return

        scan = ScanNode(dataset=dataset, term=domain, name=str(domain))
        scan.sig = ("scan", domain)
        scan.invariant = domain_invariant
        if not domain_invariant:
            if (
                from_environment
                and isinstance(domain, ir.CVar)
                and domain.name not in build.driver_bindings
            ):
                # A mutable bare program variable: a reused skeleton rebinds
                # this leaf to the variable's current dataset.
                build.rebind_scans.append((scan, domain.name))
            else:
                # A variant derived dataset (range over a mutated bound, a
                # nested comprehension, a parallelized local bag) is baked in
                # at build time and cannot be refreshed structurally.
                build.skeleton_safe = False

        if build.rows is None:
            def bind_element(element: Any) -> dict[str, Any]:
                return {**_bind_pattern(pattern, element)}

            node = NarrowNode(
                kind=plan_mod.MAP,
                function=vectorize.bind_map(pattern, bind_element) or bind_element,
                child=scan,
                describe=f"bind {pattern}",
            )
            node.sig = ("bind", pattern)
            node.invariant = scan.invariant
            self.trace.append(f"scan {domain}")
            build.rows = node
            build.bound_order.extend(pattern.variables())
            return

        # Try to find equi-join conditions linking the new pattern to the rows
        # built so far.
        join_conditions = self._find_join_conditions(
            qualifiers,
            position,
            consumed,
            set(build.bound_order),
            set(pattern.variables()),
            build.driver_bindings,
        )
        if join_conditions:
            node = self._hash_join_node(build, scan, pattern, join_conditions, domain)
            for condition_position, _left, _right in join_conditions:
                consumed.add(condition_position)
            self.trace.append(
                f"hash join on {len(join_conditions)} key(s) with {domain}"
            )
        else:
            node = self._product_node(build, scan, pattern, domain)
            self.trace.append(f"broadcast nested-loop join with {domain} (no join key)")
        build.rows = node
        build.bound_order.extend(pattern.variables())

    def _domain_dataset(self, domain: ir.Term, driver_bindings: dict[str, Any]) -> Dataset | None:
        """Return the domain as a Dataset when it is naturally one, else None.

        Datasets are memoized per statement by the domain *term* (common
        sub-expression elimination) and, when the term only mentions
        loop-invariant variables, per while loop -- so a sub-term scanned by
        several generators (or re-scanned every iteration) is computed once.
        """
        cacheable = not (ir.free_variables(domain) & set(driver_bindings))
        cache_key = ("bag", domain)
        if cacheable:
            hit = self._term_dataset_cache.get(cache_key)
            if hit is not None:
                self.trace.append(f"CSE: reused sub-term dataset for {domain}")
                return hit
            if self.loop_cache is not None and self._term_is_invariant(domain):
                loop_hit = self.loop_cache.get(cache_key)
                if loop_hit is not None:
                    self.env.context.metrics.record_loop_invariant_reuse()
                    self.trace.append(f"loop-invariant sub-term reused: {domain}")
                    self._term_dataset_cache[cache_key] = loop_hit
                    return loop_hit
        dataset = self._build_domain_dataset(domain, driver_bindings)
        if dataset is not None and cacheable:
            self._term_dataset_cache[cache_key] = dataset
            if (
                self.loop_cache is not None
                and self.env.context.plan_optimize
                and self._term_is_invariant(domain)
                and not isinstance(domain, ir.CVar)
            ):
                # Environment variables are already shared objects; derived
                # datasets (ranges, nested comprehensions) are worth hoisting.
                self.loop_cache.put(cache_key, dataset, ir.free_variables(domain))
                self.trace.append(f"loop-invariant sub-term cached: {domain}")
        return dataset

    def _build_domain_dataset(
        self, domain: ir.Term, driver_bindings: dict[str, Any]
    ) -> Dataset | None:
        if isinstance(domain, ir.CVar):
            value = self._lookup(domain.name, driver_bindings)
            if isinstance(value, Dataset):
                return value
            if isinstance(value, dict):
                return self.env.context.parallelize_pairs(value)
            if isinstance(value, (list, tuple, set)):
                return self.env.context.parallelize(list(value))
            return None
        if isinstance(domain, ir.RangeTerm):
            lower = self.evaluate_local(domain.lower, dict(driver_bindings))
            upper = self.evaluate_local(domain.upper, dict(driver_bindings))
            return self.env.context.range_dataset(int(lower), int(upper))
        if isinstance(domain, (ir.Comprehension, ir.Merge, ir.MergeWith)):
            value = self.evaluate(domain)
            if isinstance(value, Dataset):
                return value
            if isinstance(value, list):
                return None if len(value) <= 1 else self.env.context.parallelize(value)
        return None

    def _find_join_conditions(
        self,
        qualifiers: list[ir.Qualifier],
        position: int,
        consumed: set[int],
        bound: set[str],
        new_variables: set[str],
        driver_bindings: dict[str, Any],
    ) -> list[tuple[int, ir.Term, ir.Term]]:
        """Equality conditions usable as join keys for the generator at ``position``.

        Returns (condition position, left-key term over bound rows, right-key
        term over the new pattern variables).
        """
        available = bound | set(driver_bindings) | self._scalar_names()
        conditions: list[tuple[int, ir.Term, ir.Term]] = []
        for later_position in range(position + 1, len(qualifiers)):
            if later_position in consumed:
                continue
            qualifier = qualifiers[later_position]
            if isinstance(qualifier, ir.GroupBy):
                break
            if not isinstance(qualifier, ir.Condition):
                # Conditions that refer to variables bound by later qualifiers
                # are filtered out by the availability checks below, so other
                # qualifier kinds can simply be skipped here.
                continue
            term = qualifier.term
            if not (isinstance(term, ir.CBinOp) and term.op == "=="):
                continue
            sides = [(term.left, term.right), (term.right, term.left)]
            for bound_side, new_side in sides:
                bound_side_vars = ir.free_variables(bound_side)
                new_side_vars = ir.free_variables(new_side)
                if not bound_side_vars <= available:
                    continue
                if bound_side_vars & new_variables:
                    continue
                if not (new_side_vars & new_variables):
                    continue
                if not new_side_vars <= (new_variables | set(driver_bindings) | self._scalar_names()):
                    continue
                conditions.append((later_position, bound_side, new_side))
                break
        return conditions

    def _scalar_names(self) -> set[str]:
        return {name for name, value in self.env.values.items() if not isinstance(value, Dataset)}

    def _hash_join_node(
        self,
        build: _CompBuild,
        scan: ScanNode,
        pattern: ir.Pattern,
        join_conditions: list[tuple[int, ir.Term, ir.Term]],
        domain: ir.Term,
    ) -> HashJoinNode:
        base = dict(build.driver_bindings)
        left_terms = tuple(left for _, left, _ in join_conditions)
        right_terms = tuple(right for _, _, right in join_conditions)
        evaluator = self

        # Single-key joins key records by the raw value (not a 1-tuple): the
        # record key then coincides with the scanned pair's own key, so when
        # a side is already hash-placed by that key the keying map can
        # truthfully claim preserves_partitioning and the join lowers to a
        # narrow / map-side-bypassed pass (see Planner.annotate).  Both sides
        # use the same convention, so join-key equality is unaffected.
        single_key = len(left_terms) == 1

        def left_key(row: dict[str, Any]) -> tuple[Any, Any]:
            local = {**base, **row}
            if single_key:
                return (evaluator.evaluate_local(left_terms[0], local), row)
            return (
                tuple(evaluator.evaluate_local(term, local) for term in left_terms),
                row,
            )

        def right_key(element: Any) -> tuple[Any, Any]:
            local = {**base, **_bind_pattern(pattern, element)}
            if single_key:
                return (evaluator.evaluate_local(right_terms[0], local), element)
            return (
                tuple(evaluator.evaluate_local(term, local) for term in right_terms),
                element,
            )

        def rebuild(pair: Any) -> dict[str, Any]:
            return {**pair[1][0], **_bind_pattern(pattern, pair[1][1])}

        node = HashJoinNode(
            left=build.rows,
            right=scan,
            left_key_fn=left_key,
            right_key_fn=right_key,
            rebuild_fn=rebuild,
            left_key_terms=left_terms,
            right_key_terms=right_terms,
            domain_label=str(domain),
        )
        node.sig = ("hash-join", left_terms, right_terms, pattern)
        node.invariant = self._node_invariant(
            build,
            build.rows.invariant and scan.invariant,
            *left_terms,
            *right_terms,
        )
        return node

    def _product_node(
        self, build: _CompBuild, scan: ScanNode, pattern: ir.Pattern, domain: ir.Term
    ) -> ProductNode:
        """Cartesian combination, broadcasting the smaller side when possible.

        The strategy itself (broadcast vs. cartesian, which side) is chosen
        by the planner at lowering time with the runtime's shared
        ``broadcast_join_threshold`` heuristic.
        """

        def bind_right(element: Any) -> dict[str, Any]:
            return _bind_pattern(pattern, element)

        node = ProductNode(
            left=build.rows,
            right=scan,
            bind_right_fn=bind_right,
            domain_label=str(domain),
        )
        node.sig = ("product", pattern, domain)
        node.invariant = self._node_invariant(
            build, build.rows.invariant and scan.invariant
        )
        return node

    # -- let bindings and conditions ----------------------------------------------

    def _let(self, qualifier: ir.LetBinding, build: _CompBuild) -> None:
        pattern = qualifier.pattern
        term = qualifier.term
        if build.rows is None:
            value = self.evaluate_local_or_dataset(term, dict(build.driver_bindings))
            binding = _bind_pattern(pattern, value)
            build.driver_bindings.update(binding)
            build.driver_invariant = build.driver_invariant and self._term_is_invariant(
                term, frozenset(build.driver_bindings)
            )
            return
        base = dict(build.driver_bindings)
        evaluator = self

        def add_binding(row: dict[str, Any]) -> dict[str, Any]:
            local = {**base, **row}
            value = evaluator.evaluate_local(term, local)
            return {**row, **_bind_pattern(pattern, value)}

        let_fn = vectorize.let_map(
            pattern,
            term,
            frozenset(build.bound_order),
            base,
            self._scope_values,
            add_binding,
            self.env.functions,
        )
        node = NarrowNode(
            kind=plan_mod.MAP,
            function=let_fn or add_binding,
            child=build.rows,
            describe=f"let {pattern}",
            key_transparent=True,
            binds=tuple(pattern.variables()),
        )
        node.sig = ("let", pattern, term)
        node.invariant = self._node_invariant(build, build.rows.invariant, term)
        build.rows = node
        build.bound_order.extend(pattern.variables())

    def _condition(self, qualifier: ir.Condition, build: _CompBuild) -> None:
        if build.rows is None:
            value = self.evaluate_local(qualifier.term, dict(build.driver_bindings))
            build.driver_alive = build.driver_alive and bool(value)
            if not self._term_is_invariant(
                qualifier.term, frozenset(build.driver_bindings)
            ):
                # The plan's shape depends on this driver-evaluated truth
                # value; a variant condition could flip on a later iteration.
                build.skeleton_safe = False
            return
        base = dict(build.driver_bindings)
        term = qualifier.term
        evaluator = self

        def keep_row(row: dict[str, Any]) -> bool:
            return bool(evaluator.evaluate_local(term, {**base, **row}))

        filter_fn = vectorize.row_filter(
            term,
            frozenset(build.bound_order),
            base,
            self._scope_values,
            keep_row,
            self.env.functions,
        )
        node = NarrowNode(
            kind=plan_mod.FILTER,
            function=filter_fn or keep_row,
            child=build.rows,
            describe=f"filter {term}",
            key_transparent=True,
        )
        node.sig = ("filter", term)
        node.invariant = self._node_invariant(build, build.rows.invariant, term)
        build.rows = node

    # -- group-by -------------------------------------------------------------------

    def _group_by(
        self,
        qualifier: ir.GroupBy,
        post_qualifiers: list[ir.Qualifier],
        head: ir.Term,
        build: _CompBuild,
    ) -> None:
        if build.rows is None:
            # With no generators the group-by degenerates to a let of the key;
            # every "lifted" variable is already a single value.
            key_value = self.evaluate_local(qualifier.key_term(), dict(build.driver_bindings))
            build.driver_bindings.update(_bind_pattern(qualifier.pattern, key_value))
            build.driver_invariant = build.driver_invariant and self._term_is_invariant(
                qualifier.key_term(), frozenset(build.driver_bindings)
            )
            return
        base = dict(build.driver_bindings)
        key_term = qualifier.key_term()
        pattern = qualifier.pattern
        pattern_variables = list(pattern.variables())
        lifted = [name for name in build.bound_order if name not in pattern_variables]
        evaluator = self
        pattern_term = ir.pattern_to_term(pattern)

        def key_row(row: dict[str, Any]) -> tuple[Any, Any]:
            return (evaluator.evaluate_local(key_term, {**base, **row}), row)

        aggregation = self._aggregation_only_plan(head, post_qualifiers, pattern_variables, lifted)
        if aggregation is not None:
            op, value_name = aggregation
            monoid = self.env.monoids.get(op)

            def key_value_row(row: dict[str, Any]) -> tuple[Any, Any]:
                return (
                    evaluator.evaluate_local(key_term, {**base, **row}),
                    row.get(value_name),
                )

            key_value_fn = vectorize.key_value_map(
                key_term,
                value_name,
                frozenset(build.bound_order),
                base,
                self._scope_values,
                key_value_row,
                self.env.functions,
            )

            self.trace.append(f"group-by on {key_term} compiled to reduceByKey({op})")
            aggregate_marker = f"__aggregate_{value_name}"

            def rebuild(pair: Any) -> dict[str, Any]:
                key, value = pair
                row = _bind_pattern(pattern, key)
                row[aggregate_marker] = value
                # The lifted variable is represented by its already-reduced
                # aggregate; local evaluation of Aggregate(op, var) will pick
                # it up through the marker.
                row[value_name] = _PreAggregated(value)
                return row

            node = ReduceByKeyNode(
                child=build.rows,
                key_fn=key_value_fn or key_value_row,
                combine_fn=vectorize.vector_combine(op, monoid.combine),
                rebuild_fn=rebuild,
                key_term=key_term,
                pattern_term=pattern_term,
                monoid_op=op,
            )
            node.sig = ("reduce-by-key", op, key_term, pattern)
            node.invariant = self._node_invariant(build, build.rows.invariant, key_term)
            build.rows = node
            build.bound_order[:] = pattern_variables + lifted
            return

        self.trace.append(f"group-by on {key_term} compiled to groupByKey")

        def lift(pair: Any) -> dict[str, Any]:
            key, group_rows = pair
            row = _bind_pattern(pattern, key)
            for name in lifted:
                row[name] = [member.get(name) for member in group_rows]
            return row

        node = GroupByKeyNode(
            child=build.rows,
            key_fn=key_row,
            lift_fn=lift,
            key_term=key_term,
            pattern_term=pattern_term,
        )
        node.sig = ("group-by-key", key_term, pattern, tuple(lifted))
        node.invariant = self._node_invariant(build, build.rows.invariant, key_term)
        build.rows = node
        build.bound_order[:] = pattern_variables + lifted

    @staticmethod
    def _aggregation_only_plan(
        head: ir.Term,
        post_qualifiers: list[ir.Qualifier],
        pattern_variables: list[str],
        lifted: list[str],
    ) -> tuple[str, str] | None:
        """Detect the canonical aggregation head ``(key, ⊕/v)``.

        Returns ``(op, lifted variable)`` when the group-by can be compiled to
        a reduceByKey, or None when a general groupByKey is needed.
        """
        if post_qualifiers:
            return None
        if not isinstance(head, ir.CTuple) or len(head.elements) != 2:
            return None
        key_part, value_part = head.elements
        if not isinstance(value_part, ir.Aggregate):
            return None
        if not isinstance(value_part.operand, ir.CVar):
            return None
        value_name = value_part.operand.name
        if value_name not in lifted:
            return None
        key_variables = ir.free_variables(key_part)
        if not key_variables <= set(pattern_variables):
            return None
        # No lifted variable other than the aggregated one may be referenced.
        for name in ir.free_variables(key_part):
            if name in lifted:
                return None
        return value_part.op, value_name

    # ------------------------------------------------------------------
    # local (per-task) evaluation
    # ------------------------------------------------------------------

    def evaluate_local_or_dataset(self, term: ir.Term, bindings: dict[str, Any]) -> Any:
        """Evaluate locally, but allow the result to be a driver Dataset."""
        if isinstance(term, ir.CVar) and term.name not in bindings:
            return self._lookup(term.name, bindings)
        if isinstance(term, (ir.Comprehension, ir.Merge, ir.MergeWith, ir.RangeTerm)):
            free = ir.free_variables(term)
            if not (free & set(bindings)):
                return self.evaluate(term)
        return self.evaluate_local(term, bindings)

    def evaluate_local(self, term: ir.Term, bindings: dict[str, Any]) -> Any:
        """Evaluate a scalar (or local-bag) term under per-row bindings."""
        if isinstance(term, ir.CVar):
            return self._lookup(term.name, bindings)
        if isinstance(term, ir.CConst):
            return term.value
        if isinstance(term, ir.CTuple):
            return tuple(self.evaluate_local(e, bindings) for e in term.elements)
        if isinstance(term, ir.CRecord):
            return {name: self.evaluate_local(e, bindings) for name, e in term.fields}
        if isinstance(term, ir.CProject):
            return operators.project_value(self.evaluate_local(term.base, bindings), term.attribute)
        if isinstance(term, ir.CBinOp):
            if term.op == "&&":
                return bool(self.evaluate_local(term.left, bindings)) and bool(
                    self.evaluate_local(term.right, bindings)
                )
            if term.op == "||":
                return bool(self.evaluate_local(term.left, bindings)) or bool(
                    self.evaluate_local(term.right, bindings)
                )
            left = self.evaluate_local(term.left, bindings)
            right = self.evaluate_local(term.right, bindings)
            return operators.apply_binary(term.op, left, right, self.env.monoids)
        if isinstance(term, ir.CUnaryOp):
            return operators.apply_unary(term.op, self.evaluate_local(term.operand, bindings))
        if isinstance(term, ir.CCall):
            if term.function == "_update_field":
                record = self.evaluate_local(term.arguments[0], bindings)
                attribute = self.evaluate_local(term.arguments[1], bindings)
                value = self.evaluate_local(term.arguments[2], bindings)
                return operators.update_field(record, str(attribute), value)
            if term.function not in self.env.functions:
                raise ExecutionError(f"unknown function {term.function!r}")
            function = self.env.functions.get(term.function)
            arguments = [self.evaluate_local(a, bindings) for a in term.arguments]
            return function(*arguments)
        if isinstance(term, ir.Aggregate):
            operand = self.evaluate_local(term.operand, bindings)
            return self._aggregate(term.op, operand)
        if isinstance(term, ir.InRange):
            value = self.evaluate_local(term.value, bindings)
            lower = self.evaluate_local(term.lower, bindings)
            upper = self.evaluate_local(term.upper, bindings)
            return lower <= value <= upper
        if isinstance(term, ir.RangeTerm):
            lower = int(self.evaluate_local(term.lower, bindings))
            upper = int(self.evaluate_local(term.upper, bindings))
            return list(range(lower, upper + 1))
        if isinstance(term, ir.Comprehension):
            return self._local_comprehension(term, bindings)
        if isinstance(term, ir.EmptyBag):
            return []
        raise ExecutionError(f"cannot evaluate term {term!r} locally")

    def _aggregate(self, op: str, operand: Any) -> Any:
        if isinstance(operand, _PreAggregated):
            return operand.value
        monoid = self.env.monoids.get(op)
        bag = self._as_local_bag(operand)
        return monoid.reduce(bag)

    def _local_comprehension(self, comp: ir.Comprehension, bindings: dict[str, Any]) -> list[Any]:
        """Evaluate a comprehension entirely locally (no dataset operations)."""
        rows: list[dict[str, Any]] = [dict(bindings)]
        for qualifier in comp.qualifiers:
            if isinstance(qualifier, ir.Generator):
                next_rows: list[dict[str, Any]] = []
                for row in rows:
                    bag = self._as_local_bag(self.evaluate_local_or_dataset(qualifier.domain, row))
                    for element in bag:
                        next_rows.append({**row, **_bind_pattern(qualifier.pattern, element)})
                rows = next_rows
            elif isinstance(qualifier, ir.LetBinding):
                rows = [
                    {
                        **row,
                        **_bind_pattern(
                            qualifier.pattern, self.evaluate_local_or_dataset(qualifier.term, row)
                        ),
                    }
                    for row in rows
                ]
            elif isinstance(qualifier, ir.Condition):
                rows = [row for row in rows if bool(self.evaluate_local(qualifier.term, row))]
            elif isinstance(qualifier, ir.GroupBy):
                rows = self._local_group_by(qualifier, rows, bindings)
            else:
                raise ExecutionError(f"unknown qualifier {qualifier!r}")
        return [self.evaluate_local(comp.head, row) for row in rows]

    def _local_group_by(
        self, qualifier: ir.GroupBy, rows: list[dict[str, Any]], outer: dict[str, Any]
    ) -> list[dict[str, Any]]:
        key_term = qualifier.key_term()
        pattern_variables = set(qualifier.pattern.variables())
        groups: dict[Any, list[dict[str, Any]]] = {}
        order: list[Any] = []
        for row in rows:
            key = self.evaluate_local(key_term, row)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(row)
        lifted_names: list[str] = []
        for row in rows:
            for name in row:
                if name not in outer and name not in pattern_variables and name not in lifted_names:
                    lifted_names.append(name)
        result: list[dict[str, Any]] = []
        for key in order:
            members = groups[key]
            new_row = dict(outer)
            new_row.update(_bind_pattern(qualifier.pattern, key))
            for name in lifted_names:
                new_row[name] = [member.get(name) for member in members]
            result.append(new_row)
        return result

    def _as_local_bag(self, value: Any) -> list[Any]:
        if isinstance(value, Dataset):
            cache_key = id(value)
            entry = self._local_bag_cache.get(cache_key)
            # The identity check guards against id() reuse: holding the
            # dataset in the entry keeps it alive, so a live cache entry can
            # only collide with a *different* object if the entry was
            # planted externally -- recompute in that case.
            if entry is not None and entry[0] is value:
                return entry[1]
            collected = value.collect()
            self._local_bag_cache[cache_key] = (value, collected)
            return collected
        if isinstance(value, dict):
            return list(value.items())
        if isinstance(value, (list, tuple, set)):
            return list(value)
        return [value]

    def _lookup(self, name: str, bindings: dict[str, Any]) -> Any:
        if name in bindings:
            return bindings[name]
        if name in self.env.values:
            return self.env.values[name]
        raise ExecutionError(f"undefined variable {name!r}")


@dataclass
class _PreAggregated:
    """Marker wrapper for a lifted variable that was already reduced by
    reduceByKey; ``Aggregate`` over it returns the value unchanged."""

    value: Any


def _bind_pattern(pattern: ir.Pattern, value: Any) -> dict[str, Any]:
    """Destructure ``value`` according to ``pattern``, producing bindings."""
    if isinstance(pattern, ir.PVar):
        return {pattern.name: value}
    if isinstance(pattern, ir.PWildcard):
        return {}
    if isinstance(pattern, ir.PTuple):
        if not isinstance(value, (tuple, list)) or len(value) != len(pattern.elements):
            raise ExecutionError(f"cannot bind pattern {pattern} to value {value!r}")
        bindings: dict[str, Any] = {}
        for sub_pattern, sub_value in zip(pattern.elements, value, strict=False):
            bindings.update(_bind_pattern(sub_pattern, sub_value))
        return bindings
    raise ExecutionError(f"unknown pattern {pattern!r}")
