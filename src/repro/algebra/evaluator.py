"""Evaluation of comprehension terms over the local DISC runtime.

The :class:`TermEvaluator` is the analogue of DIQL's comprehension-to-algebra
compiler: it walks the qualifiers of a comprehension from left to right and
builds a dataflow of :class:`~repro.runtime.dataset.Dataset` operations.

The important plan decisions are the ones the paper relies on:

* a generator over a dataset joined to the rows built so far through an
  equality condition becomes a **hash equi-join** (possibly with a composite
  key);
* a generator with no linking condition becomes a **broadcast nested-loop
  join** of the smaller side (semantically a cartesian product -- this is the
  "expensive join" the paper observes for KMeans);
* a group-by whose lifted variables are only consumed by aggregations becomes
  a **reduceByKey**; otherwise it is a **groupByKey**;
* the array merges ⊳ and ⊳⊕ become **coGroups**.

Scalar sub-terms are evaluated locally inside tasks with the shared operator
semantics of :mod:`repro.operators`, so the distributed path and the
sequential interpreter agree on every arithmetic detail.

The Dataset operations emitted here are lazy: the scans, per-row expansions,
filters and head projections built from consecutive qualifiers accumulate as
pending narrow stages and run as a *single* fused per-partition pass at the
next shuffle (join, group-by, merge) or action.  The evaluator itself only
forces a pipeline where a plan decision needs driver-side facts: the
empty-result early exit after a generator, and the size comparison that picks
the broadcast side of a nested-loop join.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro import operators
from repro.comprehension import ir
from repro.comprehension.monoids import DEFAULT_MONOIDS, MonoidRegistry
from repro.errors import CompilationError, ExecutionError
from repro.functions import DEFAULT_FUNCTIONS, FunctionRegistry
from repro.runtime.context import DistributedContext
from repro.runtime.dataset import DEFAULT_BROADCAST_JOIN_THRESHOLD, Dataset, choose_broadcast_side

#: Backwards-compatible alias: the evaluator now shares the runtime's join
#: strategy knob (``context.broadcast_join_threshold``) instead of keeping its
#: own.  The threshold only affects performance, never results.
BROADCAST_THRESHOLD = DEFAULT_BROADCAST_JOIN_THRESHOLD


@dataclass
class EvaluationEnvironment:
    """Everything a term needs to be evaluated.

    Attributes:
        context: the runtime context used to create datasets.
        values: program variables -- Datasets for arrays/collections, plain
            Python values for scalars.
        functions: scalar function registry.
        monoids: commutative monoid registry.
    """

    context: DistributedContext
    values: dict[str, Any] = field(default_factory=dict)
    functions: FunctionRegistry = field(default_factory=lambda: DEFAULT_FUNCTIONS)
    monoids: MonoidRegistry = field(default_factory=lambda: DEFAULT_MONOIDS)

    def copy_with(self, values: dict[str, Any]) -> "EvaluationEnvironment":
        merged = dict(self.values)
        merged.update(values)
        return EvaluationEnvironment(self.context, merged, self.functions, self.monoids)


class TermEvaluator:
    """Evaluates comprehension terms against an :class:`EvaluationEnvironment`."""

    def __init__(self, environment: EvaluationEnvironment, trace: list[str] | None = None):
        self.env = environment
        self._local_bag_cache: dict[int, list[Any]] = {}
        #: Human-readable log of plan decisions (joins, group-bys, merges).
        self.trace: list[str] = trace if trace is not None else []

    # ------------------------------------------------------------------
    # driver-level evaluation
    # ------------------------------------------------------------------

    def evaluate(self, term: ir.Term) -> Any:
        """Evaluate a term at the driver: datasets for bag terms, scalars otherwise."""
        if isinstance(term, ir.Comprehension):
            return self.evaluate_comprehension(term)
        if isinstance(term, ir.Merge):
            left = self.as_dataset(self.evaluate(term.left))
            right = self.as_dataset(self.evaluate(term.right))
            self.trace.append("merge (<|) via coGroup")
            return left.merge(right)
        if isinstance(term, ir.MergeWith):
            left = self.as_dataset(self.evaluate(term.left))
            right = self.as_dataset(self.evaluate(term.right))
            monoid = self.env.monoids.get(term.op)
            self.trace.append(f"merge (<|{term.op}) via coGroup")
            return left.merge_with(right, monoid.combine)
        if isinstance(term, ir.RangeTerm):
            lower = self.evaluate_local(term.lower, {})
            upper = self.evaluate_local(term.upper, {})
            return self.env.context.range_dataset(int(lower), int(upper))
        if isinstance(term, ir.EmptyBag):
            return self.env.context.empty()
        if isinstance(term, ir.CVar):
            return self._lookup(term.name, {})
        return self.evaluate_local(term, {})

    def evaluate_bag(self, term: ir.Term) -> Dataset:
        """Evaluate a term that denotes a bag, coercing the result to a Dataset."""
        return self.as_dataset(self.evaluate(term))

    def as_dataset(self, value: Any) -> Dataset:
        """Coerce a driver value to a Dataset."""
        if isinstance(value, Dataset):
            return value
        if isinstance(value, dict):
            return self.env.context.parallelize_pairs(value)
        if isinstance(value, (list, tuple, set)):
            return self.env.context.parallelize(list(value))
        raise ExecutionError(f"expected a collection, got {value!r}")

    # ------------------------------------------------------------------
    # comprehension evaluation
    # ------------------------------------------------------------------

    def evaluate_comprehension(self, comp: ir.Comprehension) -> Dataset | list[Any]:
        """Build the dataflow for one comprehension.

        Returns a Dataset when the comprehension ranges over at least one
        dataset generator, or a plain list for purely local comprehensions
        (e.g. singleton bags).
        """
        rows: Dataset | None = None
        bound_order: list[str] = []
        driver_bindings: dict[str, Any] = {}
        driver_alive = True
        consumed: set[int] = set()
        qualifiers = list(comp.qualifiers)

        for position, qualifier in enumerate(qualifiers):
            if position in consumed:
                continue
            if not driver_alive:
                break
            if isinstance(qualifier, ir.Generator):
                rows, bound_order, driver_bindings = self._generator(
                    qualifier, qualifiers, position, consumed, rows, bound_order, driver_bindings
                )
                if rows is not None and rows.is_empty():
                    # Nothing left to do; the result is empty regardless of the
                    # remaining qualifiers.
                    return self.env.context.empty()
            elif isinstance(qualifier, ir.LetBinding):
                rows, bound_order, driver_bindings = self._let(
                    qualifier, rows, bound_order, driver_bindings
                )
            elif isinstance(qualifier, ir.Condition):
                rows, driver_alive = self._condition(qualifier, rows, driver_bindings, driver_alive)
            elif isinstance(qualifier, ir.GroupBy):
                rows, bound_order = self._group_by(
                    qualifier, qualifiers[position + 1 :], comp.head, rows, bound_order, driver_bindings
                )
            else:
                raise CompilationError(f"unknown qualifier {qualifier!r}")

        if not driver_alive:
            return []
        if rows is None:
            return [self.evaluate_local(comp.head, dict(driver_bindings))]
        head = comp.head
        base = dict(driver_bindings)
        return rows.map(lambda row: self.evaluate_local(head, {**base, **row}))

    # -- generators -----------------------------------------------------------

    def _generator(
        self,
        qualifier: ir.Generator,
        qualifiers: list[ir.Qualifier],
        position: int,
        consumed: set[int],
        rows: Dataset | None,
        bound_order: list[str],
        driver_bindings: dict[str, Any],
    ) -> tuple[Dataset | None, list[str], dict[str, Any]]:
        pattern = qualifier.pattern
        domain = qualifier.domain
        domain_variables = ir.free_variables(domain)
        row_dependent = rows is not None and any(name in bound_order for name in domain_variables)

        if row_dependent:
            # The domain depends on per-row values: expand it locally per row.
            base = dict(driver_bindings)
            evaluator = self

            def expand(row: dict[str, Any]) -> list[dict[str, Any]]:
                local = {**base, **row}
                bag = evaluator._as_local_bag(evaluator.evaluate_local(domain, local))
                out = []
                for element in bag:
                    binding = _bind_pattern(pattern, element)
                    out.append({**row, **binding})
                return out

            self.trace.append(f"per-row expansion of generator over {domain}")
            new_rows = rows.flat_map(expand)
            return new_rows, bound_order + list(pattern.variables()), driver_bindings

        dataset = self._domain_dataset(domain, driver_bindings)
        if dataset is None:
            # The domain is a local (driver) bag: bind it per element.
            bag = self._as_local_bag(self.evaluate_local(domain, dict(driver_bindings)))
            if rows is None:
                if len(bag) == 1:
                    binding = _bind_pattern(pattern, bag[0])
                    return None, bound_order, {**driver_bindings, **binding}
                dataset = self.env.context.parallelize(bag)
            else:
                base = dict(driver_bindings)

                def expand_local(row: dict[str, Any]) -> list[dict[str, Any]]:
                    return [{**row, **_bind_pattern(pattern, element)} for element in bag]

                new_rows = rows.flat_map(expand_local)
                return new_rows, bound_order + list(pattern.variables()), driver_bindings

        if rows is None:
            base = dict(driver_bindings)
            new_rows = dataset.map(lambda element: {**_bind_pattern(pattern, element)})
            self.trace.append(f"scan {domain}")
            return new_rows, bound_order + list(pattern.variables()), driver_bindings

        # Try to find equi-join conditions linking the new pattern to the rows
        # built so far.
        join_conditions = self._find_join_conditions(
            qualifiers, position, consumed, set(bound_order), set(pattern.variables()), driver_bindings
        )
        if join_conditions:
            new_rows = self._hash_join(rows, dataset, pattern, join_conditions, driver_bindings)
            for condition_position, _left, _right in join_conditions:
                consumed.add(condition_position)
            self.trace.append(
                f"hash join on {len(join_conditions)} key(s) with {domain}"
            )
        else:
            new_rows = self._broadcast_product(rows, dataset, pattern)
            self.trace.append(f"broadcast nested-loop join with {domain} (no join key)")
        return new_rows, bound_order + list(pattern.variables()), driver_bindings

    def _domain_dataset(self, domain: ir.Term, driver_bindings: dict[str, Any]) -> Dataset | None:
        """Return the domain as a Dataset when it is naturally one, else None."""
        if isinstance(domain, ir.CVar):
            value = self._lookup(domain.name, driver_bindings)
            if isinstance(value, Dataset):
                return value
            if isinstance(value, dict):
                return self.env.context.parallelize_pairs(value)
            if isinstance(value, (list, tuple, set)):
                return self.env.context.parallelize(list(value))
            return None
        if isinstance(domain, ir.RangeTerm):
            lower = self.evaluate_local(domain.lower, dict(driver_bindings))
            upper = self.evaluate_local(domain.upper, dict(driver_bindings))
            return self.env.context.range_dataset(int(lower), int(upper))
        if isinstance(domain, (ir.Comprehension, ir.Merge, ir.MergeWith)):
            value = self.evaluate(domain)
            if isinstance(value, Dataset):
                return value
            if isinstance(value, list):
                return None if len(value) <= 1 else self.env.context.parallelize(value)
        return None

    def _find_join_conditions(
        self,
        qualifiers: list[ir.Qualifier],
        position: int,
        consumed: set[int],
        bound: set[str],
        new_variables: set[str],
        driver_bindings: dict[str, Any],
    ) -> list[tuple[int, ir.Term, ir.Term]]:
        """Equality conditions usable as join keys for the generator at ``position``.

        Returns (condition position, left-key term over bound rows, right-key
        term over the new pattern variables).
        """
        available = bound | set(driver_bindings) | self._scalar_names()
        conditions: list[tuple[int, ir.Term, ir.Term]] = []
        for later_position in range(position + 1, len(qualifiers)):
            if later_position in consumed:
                continue
            qualifier = qualifiers[later_position]
            if isinstance(qualifier, ir.GroupBy):
                break
            if not isinstance(qualifier, ir.Condition):
                # Conditions that refer to variables bound by later qualifiers
                # are filtered out by the availability checks below, so other
                # qualifier kinds can simply be skipped here.
                continue
            term = qualifier.term
            if not (isinstance(term, ir.CBinOp) and term.op == "=="):
                continue
            sides = [(term.left, term.right), (term.right, term.left)]
            for bound_side, new_side in sides:
                bound_side_vars = ir.free_variables(bound_side)
                new_side_vars = ir.free_variables(new_side)
                if not bound_side_vars <= available:
                    continue
                if bound_side_vars & new_variables:
                    continue
                if not (new_side_vars & new_variables):
                    continue
                if not new_side_vars <= (new_variables | set(driver_bindings) | self._scalar_names()):
                    continue
                conditions.append((later_position, bound_side, new_side))
                break
        return conditions

    def _scalar_names(self) -> set[str]:
        return {name for name, value in self.env.values.items() if not isinstance(value, Dataset)}

    def _hash_join(
        self,
        rows: Dataset,
        dataset: Dataset,
        pattern: ir.Pattern,
        join_conditions: list[tuple[int, ir.Term, ir.Term]],
        driver_bindings: dict[str, Any],
    ) -> Dataset:
        base = dict(driver_bindings)
        left_terms = [left for _, left, _ in join_conditions]
        right_terms = [right for _, _, right in join_conditions]
        evaluator = self

        def left_key(row: dict[str, Any]) -> tuple[Any, ...]:
            local = {**base, **row}
            return tuple(evaluator.evaluate_local(term, local) for term in left_terms)

        def right_key(element: Any) -> tuple[Any, ...]:
            local = {**base, **_bind_pattern(pattern, element)}
            return tuple(evaluator.evaluate_local(term, local) for term in right_terms)

        keyed_rows = rows.map(lambda row: (left_key(row), row))
        keyed_elements = dataset.map(lambda element: (right_key(element), element))
        joined = keyed_rows.join(keyed_elements)
        return joined.map(lambda pair: {**pair[1][0], **_bind_pattern(pattern, pair[1][1])})

    def _broadcast_product(self, rows: Dataset, dataset: Dataset, pattern: ir.Pattern) -> Dataset:
        """Cartesian combination, broadcasting the smaller side when possible.

        Reuses the runtime's join-strategy heuristic
        (:func:`~repro.runtime.dataset.choose_broadcast_side` with the
        context's ``broadcast_join_threshold``), so the query layer and
        :meth:`Dataset.join` agree on one knob.
        """
        context = self.env.context
        side = choose_broadcast_side(
            rows.count(), dataset.count(), context.broadcast_join_threshold
        )
        if side == "right":
            elements = dataset.collect()
            context.metrics.record_broadcast()
            context.metrics.record_join_strategy("broadcast")
            return rows.flat_map(
                lambda row: [{**row, **_bind_pattern(pattern, element)} for element in elements]
            )
        if side == "left":
            row_list = rows.collect()
            context.metrics.record_broadcast()
            context.metrics.record_join_strategy("broadcast")
            return dataset.flat_map(
                lambda element: [{**row, **_bind_pattern(pattern, element)} for row in row_list]
            )
        context.metrics.record_join_strategy("cartesian")
        product = rows.cartesian(dataset)
        return product.map(lambda pair: {**pair[0], **_bind_pattern(pattern, pair[1])})

    # -- let bindings and conditions ----------------------------------------------

    def _let(
        self,
        qualifier: ir.LetBinding,
        rows: Dataset | None,
        bound_order: list[str],
        driver_bindings: dict[str, Any],
    ) -> tuple[Dataset | None, list[str], dict[str, Any]]:
        pattern = qualifier.pattern
        term = qualifier.term
        if rows is None:
            value = self.evaluate_local_or_dataset(term, dict(driver_bindings))
            binding = _bind_pattern(pattern, value)
            return None, bound_order, {**driver_bindings, **binding}
        base = dict(driver_bindings)
        evaluator = self

        def add_binding(row: dict[str, Any]) -> dict[str, Any]:
            local = {**base, **row}
            value = evaluator.evaluate_local(term, local)
            return {**row, **_bind_pattern(pattern, value)}

        return rows.map(add_binding), bound_order + list(pattern.variables()), driver_bindings

    def _condition(
        self,
        qualifier: ir.Condition,
        rows: Dataset | None,
        driver_bindings: dict[str, Any],
        driver_alive: bool,
    ) -> tuple[Dataset | None, bool]:
        if rows is None:
            value = self.evaluate_local(qualifier.term, dict(driver_bindings))
            return None, driver_alive and bool(value)
        base = dict(driver_bindings)
        term = qualifier.term
        evaluator = self
        return rows.filter(lambda row: bool(evaluator.evaluate_local(term, {**base, **row}))), driver_alive

    # -- group-by -------------------------------------------------------------------

    def _group_by(
        self,
        qualifier: ir.GroupBy,
        post_qualifiers: list[ir.Qualifier],
        head: ir.Term,
        rows: Dataset | None,
        bound_order: list[str],
        driver_bindings: dict[str, Any],
    ) -> tuple[Dataset | None, list[str]]:
        if rows is None:
            # With no generators the group-by degenerates to a let of the key;
            # every "lifted" variable is already a single value.
            key_value = self.evaluate_local(qualifier.key_term(), dict(driver_bindings))
            driver_bindings.update(_bind_pattern(qualifier.pattern, key_value))
            return None, bound_order
        base = dict(driver_bindings)
        key_term = qualifier.key_term()
        pattern = qualifier.pattern
        pattern_variables = list(pattern.variables())
        lifted = [name for name in bound_order if name not in pattern_variables]
        evaluator = self

        aggregation = self._aggregation_only_plan(head, post_qualifiers, pattern_variables, lifted)
        if aggregation is not None:
            op, value_name = aggregation
            monoid = self.env.monoids.get(op)
            keyed = rows.map(
                lambda row: (
                    evaluator.evaluate_local(key_term, {**base, **row}),
                    row.get(value_name),
                )
            )
            reduced = keyed.reduce_by_key(monoid.combine)
            self.trace.append(f"group-by on {key_term} compiled to reduceByKey({op})")
            aggregate_marker = f"__aggregate_{value_name}"

            def rebuild(pair: Any) -> dict[str, Any]:
                key, value = pair
                row = _bind_pattern(pattern, key)
                row[aggregate_marker] = value
                # The lifted variable is represented by its already-reduced
                # aggregate; local evaluation of Aggregate(op, var) will pick
                # it up through the marker.
                row[value_name] = _PreAggregated(value)
                return row

            return reduced.map(rebuild), pattern_variables + lifted

        keyed_rows = rows.map(lambda row: (evaluator.evaluate_local(key_term, {**base, **row}), row))
        grouped = keyed_rows.group_by_key()
        self.trace.append(f"group-by on {key_term} compiled to groupByKey")

        def lift(pair: Any) -> dict[str, Any]:
            key, group_rows = pair
            row = _bind_pattern(pattern, key)
            for name in lifted:
                row[name] = [member.get(name) for member in group_rows]
            return row

        return grouped.map(lift), pattern_variables + lifted

    @staticmethod
    def _aggregation_only_plan(
        head: ir.Term,
        post_qualifiers: list[ir.Qualifier],
        pattern_variables: list[str],
        lifted: list[str],
    ) -> tuple[str, str] | None:
        """Detect the canonical aggregation head ``(key, ⊕/v)``.

        Returns ``(op, lifted variable)`` when the group-by can be compiled to
        a reduceByKey, or None when a general groupByKey is needed.
        """
        if post_qualifiers:
            return None
        if not isinstance(head, ir.CTuple) or len(head.elements) != 2:
            return None
        key_part, value_part = head.elements
        if not isinstance(value_part, ir.Aggregate):
            return None
        if not isinstance(value_part.operand, ir.CVar):
            return None
        value_name = value_part.operand.name
        if value_name not in lifted:
            return None
        key_variables = ir.free_variables(key_part)
        if not key_variables <= set(pattern_variables):
            return None
        # No lifted variable other than the aggregated one may be referenced.
        for name in ir.free_variables(key_part):
            if name in lifted:
                return None
        return value_part.op, value_name

    # ------------------------------------------------------------------
    # local (per-task) evaluation
    # ------------------------------------------------------------------

    def evaluate_local_or_dataset(self, term: ir.Term, bindings: dict[str, Any]) -> Any:
        """Evaluate locally, but allow the result to be a driver Dataset."""
        if isinstance(term, ir.CVar) and term.name not in bindings:
            return self._lookup(term.name, bindings)
        if isinstance(term, (ir.Comprehension, ir.Merge, ir.MergeWith, ir.RangeTerm)):
            free = ir.free_variables(term)
            if not (free & set(bindings)):
                return self.evaluate(term)
        return self.evaluate_local(term, bindings)

    def evaluate_local(self, term: ir.Term, bindings: dict[str, Any]) -> Any:
        """Evaluate a scalar (or local-bag) term under per-row bindings."""
        if isinstance(term, ir.CVar):
            return self._lookup(term.name, bindings)
        if isinstance(term, ir.CConst):
            return term.value
        if isinstance(term, ir.CTuple):
            return tuple(self.evaluate_local(e, bindings) for e in term.elements)
        if isinstance(term, ir.CRecord):
            return {name: self.evaluate_local(e, bindings) for name, e in term.fields}
        if isinstance(term, ir.CProject):
            return operators.project_value(self.evaluate_local(term.base, bindings), term.attribute)
        if isinstance(term, ir.CBinOp):
            if term.op == "&&":
                return bool(self.evaluate_local(term.left, bindings)) and bool(
                    self.evaluate_local(term.right, bindings)
                )
            if term.op == "||":
                return bool(self.evaluate_local(term.left, bindings)) or bool(
                    self.evaluate_local(term.right, bindings)
                )
            left = self.evaluate_local(term.left, bindings)
            right = self.evaluate_local(term.right, bindings)
            return operators.apply_binary(term.op, left, right, self.env.monoids)
        if isinstance(term, ir.CUnaryOp):
            return operators.apply_unary(term.op, self.evaluate_local(term.operand, bindings))
        if isinstance(term, ir.CCall):
            if term.function == "_update_field":
                record = self.evaluate_local(term.arguments[0], bindings)
                attribute = self.evaluate_local(term.arguments[1], bindings)
                value = self.evaluate_local(term.arguments[2], bindings)
                return operators.update_field(record, str(attribute), value)
            if term.function not in self.env.functions:
                raise ExecutionError(f"unknown function {term.function!r}")
            function = self.env.functions.get(term.function)
            arguments = [self.evaluate_local(a, bindings) for a in term.arguments]
            return function(*arguments)
        if isinstance(term, ir.Aggregate):
            operand = self.evaluate_local(term.operand, bindings)
            return self._aggregate(term.op, operand)
        if isinstance(term, ir.InRange):
            value = self.evaluate_local(term.value, bindings)
            lower = self.evaluate_local(term.lower, bindings)
            upper = self.evaluate_local(term.upper, bindings)
            return lower <= value <= upper
        if isinstance(term, ir.RangeTerm):
            lower = int(self.evaluate_local(term.lower, bindings))
            upper = int(self.evaluate_local(term.upper, bindings))
            return list(range(lower, upper + 1))
        if isinstance(term, ir.Comprehension):
            return self._local_comprehension(term, bindings)
        if isinstance(term, ir.EmptyBag):
            return []
        raise ExecutionError(f"cannot evaluate term {term!r} locally")

    def _aggregate(self, op: str, operand: Any) -> Any:
        if isinstance(operand, _PreAggregated):
            return operand.value
        monoid = self.env.monoids.get(op)
        bag = self._as_local_bag(operand)
        return monoid.reduce(bag)

    def _local_comprehension(self, comp: ir.Comprehension, bindings: dict[str, Any]) -> list[Any]:
        """Evaluate a comprehension entirely locally (no dataset operations)."""
        rows: list[dict[str, Any]] = [dict(bindings)]
        for qualifier in comp.qualifiers:
            if isinstance(qualifier, ir.Generator):
                next_rows: list[dict[str, Any]] = []
                for row in rows:
                    bag = self._as_local_bag(self.evaluate_local_or_dataset(qualifier.domain, row))
                    for element in bag:
                        next_rows.append({**row, **_bind_pattern(qualifier.pattern, element)})
                rows = next_rows
            elif isinstance(qualifier, ir.LetBinding):
                rows = [
                    {**row, **_bind_pattern(qualifier.pattern, self.evaluate_local_or_dataset(qualifier.term, row))}
                    for row in rows
                ]
            elif isinstance(qualifier, ir.Condition):
                rows = [row for row in rows if bool(self.evaluate_local(qualifier.term, row))]
            elif isinstance(qualifier, ir.GroupBy):
                rows = self._local_group_by(qualifier, rows, bindings)
            else:
                raise ExecutionError(f"unknown qualifier {qualifier!r}")
        return [self.evaluate_local(comp.head, row) for row in rows]

    def _local_group_by(
        self, qualifier: ir.GroupBy, rows: list[dict[str, Any]], outer: dict[str, Any]
    ) -> list[dict[str, Any]]:
        key_term = qualifier.key_term()
        pattern_variables = set(qualifier.pattern.variables())
        groups: dict[Any, list[dict[str, Any]]] = {}
        order: list[Any] = []
        for row in rows:
            key = self.evaluate_local(key_term, row)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(row)
        lifted_names: list[str] = []
        for row in rows:
            for name in row:
                if name not in outer and name not in pattern_variables and name not in lifted_names:
                    lifted_names.append(name)
        result: list[dict[str, Any]] = []
        for key in order:
            members = groups[key]
            new_row = dict(outer)
            new_row.update(_bind_pattern(qualifier.pattern, key))
            for name in lifted_names:
                new_row[name] = [member.get(name) for member in members]
            result.append(new_row)
        return result

    def _as_local_bag(self, value: Any) -> list[Any]:
        if isinstance(value, Dataset):
            cache_key = id(value)
            if cache_key not in self._local_bag_cache:
                self._local_bag_cache[cache_key] = value.collect()
            return self._local_bag_cache[cache_key]
        if isinstance(value, dict):
            return list(value.items())
        if isinstance(value, (list, tuple, set)):
            return list(value)
        return [value]

    def _lookup(self, name: str, bindings: dict[str, Any]) -> Any:
        if name in bindings:
            return bindings[name]
        if name in self.env.values:
            return self.env.values[name]
        raise ExecutionError(f"undefined variable {name!r}")


@dataclass
class _PreAggregated:
    """Marker wrapper for a lifted variable that was already reduced by
    reduceByKey; ``Aggregate`` over it returns the value unchanged."""

    value: Any


def _bind_pattern(pattern: ir.Pattern, value: Any) -> dict[str, Any]:
    """Destructure ``value`` according to ``pattern``, producing bindings."""
    if isinstance(pattern, ir.PVar):
        return {pattern.name: value}
    if isinstance(pattern, ir.PWildcard):
        return {}
    if isinstance(pattern, ir.PTuple):
        if not isinstance(value, (tuple, list)) or len(value) != len(pattern.elements):
            raise ExecutionError(f"cannot bind pattern {pattern} to value {value!r}")
        bindings: dict[str, Any] = {}
        for sub_pattern, sub_value in zip(pattern.elements, value):
            bindings.update(_bind_pattern(sub_pattern, sub_value))
        return bindings
    raise ExecutionError(f"unknown pattern {pattern!r}")
