"""Execution of translated target programs over the DISC runtime.

A :class:`ProgramRunner` binds a :class:`~repro.translate.target.TargetProgram`
to caller-supplied inputs and executes its statements in order: bulk
assignments are evaluated by the :class:`~repro.algebra.evaluator.TermEvaluator`
and stored back into the variable environment; ``while`` statements loop in the
driver, re-evaluating their (scalar) condition between iterations.

Inputs may be given as runtime Datasets, as Python dicts (sparse arrays), as
lists (plain collections -- automatically indexed), or as scalars.  Results
are returned in the same spirit: arrays come back as Datasets (use
``collect_state`` for plain dicts), scalars as Python values.

The runtime's narrow operations are lazy (see
:mod:`repro.runtime.dataset`), so every statement boundary is a **force
point**: an assignment materializes its Dataset before storing it, because
the pending stage chain closes over the shared variable environment that the
next statement may mutate (e.g. a loop reassigning the array it reads).
Within a statement, chains of maps/filters between shuffles fuse into single
per-partition passes; the run trace records how many fused stages each
assignment executed.

**Loop-invariant hoisting.**  Before entering a ``while`` loop the runner
statically collects every variable the body assigns (including nested
loops); the remaining environment variables are *loop-invariant*.  A
:class:`~repro.algebra.planner.LoopInvariantCache` scoped to the loop is
handed to each iteration's evaluators, which use it to evaluate invariant
sub-terms and join/merge sides once -- materialized and hash-partitioned --
and reuse them on iterations 2+, so only the data the loop actually mutates
is recomputed and re-shuffled.  The cache is defensively invalidated on
every assignment (entries record the variables they derive from), so a
mutated variable can never serve stale data.  Per-iteration snapshots of the
shuffle counters land in :attr:`ProgramResult.iteration_metrics`, which is
how the benchmarks assert that iteration 2+ shuffles only the mutated side.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from repro.algebra.evaluator import EvaluationEnvironment, TermEvaluator
from repro.algebra.planner import LoopInvariantCache, PlanSkeletonCache, keyed_demand_counts
from repro.comprehension.monoids import DEFAULT_MONOIDS, MonoidRegistry
from repro.errors import ExecutionError
from repro.functions import DEFAULT_FUNCTIONS, FunctionRegistry
from repro.runtime.context import DistributedContext
from repro.runtime.dataset import Dataset
from repro.runtime.partitioner import HashPartitioner
from repro.translate.target import TargetAssign, TargetProgram, TargetStatement, TargetWhile

#: Safety valve for while-loops in target programs.
MAX_WHILE_ITERATIONS = 1_000_000


@dataclass
class ProgramResult:
    """The outcome of running a target program.

    Attributes:
        values: final value of every program variable (Datasets for arrays).
        wall_seconds: execution time.
        trace: the plan decisions logged by the evaluator (joins, group-bys).
        iteration_metrics: one entry per executed ``while`` iteration with
            the shuffle-counter deltas of that iteration (loop index,
            iteration number, shuffles / shuffled_records / shuffled_bytes /
            shuffles_eliminated / loop_invariant_reuses / plan_cache_hits).
    """

    values: dict[str, Any]
    wall_seconds: float
    trace: list[str] = field(default_factory=list)
    iteration_metrics: list[dict[str, int]] = field(default_factory=list)

    def __getitem__(self, name: str) -> Any:
        return self.values[name]

    def scalar(self, name: str) -> Any:
        """A scalar result variable."""
        return self.values[name]

    def array(self, name: str) -> dict[Any, Any]:
        """An array result variable as a plain dict."""
        value = self.values[name]
        if isinstance(value, Dataset):
            return value.collect_as_map()
        if isinstance(value, dict):
            return dict(value)
        raise ExecutionError(f"variable {name!r} is not an array")

    def returned(self, names: tuple[str, ...], as_tuple: bool = False) -> Any:
        """Map the result environment back to a function's returned names.

        This is how the jit API turns ``return total`` / ``return total, C``
        into call results: scalars come back as plain Python values (the
        environment already stores them unwrapped), arrays as Datasets, and a
        single returned name is unwrapped out of its 1-tuple unless the
        source spelled an explicit tuple (``as_tuple=True``).
        """
        missing = [name for name in names if name not in self.values]
        if missing:
            raise ExecutionError(
                f"program did not produce returned variable(s): {', '.join(missing)}"
            )
        values = tuple(self.values[name] for name in names)
        if not as_tuple and len(values) == 1:
            return values[0]
        return values


@dataclass
class _RunState:
    """Mutable bookkeeping threaded through one program execution."""

    trace: list[str]
    iteration_metrics: list[dict[str, int]] = field(default_factory=list)
    loop_cache: LoopInvariantCache | None = None
    skeleton_cache: PlanSkeletonCache | None = None
    loops_seen: int = 0
    #: Program-wide keyed-consumer counts (the global partitioner pass).
    keyed_demand: dict[str, int] = field(default_factory=dict)
    #: Variables assigned inside any while loop (their placement churns).
    loop_assigned: frozenset[str] = frozenset()


#: The shuffle counters snapshotted per while-loop iteration.
_ITERATION_COUNTERS = (
    "shuffles",
    "shuffled_records",
    "shuffled_bytes",
    "shuffles_eliminated",
    "narrow_joins",
    "prepartitioned_inputs",
    "loop_invariant_reuses",
    "plan_cache_hits",
)


class ProgramRunner:
    """Runs translated target programs on a :class:`DistributedContext`."""

    def __init__(
        self,
        context: DistributedContext,
        functions: FunctionRegistry | None = None,
        monoids: MonoidRegistry | None = None,
    ):
        self.context = context
        self.functions = functions or DEFAULT_FUNCTIONS
        self.monoids = monoids or DEFAULT_MONOIDS

    def run(self, program: TargetProgram, inputs: dict[str, Any] | None = None) -> ProgramResult:
        """Execute ``program`` with the given input variables."""
        started = time.perf_counter()
        values = self._prepare_inputs(program, inputs or {})
        environment = EvaluationEnvironment(self.context, values, self.functions, self.monoids)
        state = _RunState(trace=[])
        if self.context.plan_optimize:
            state.keyed_demand = keyed_demand_counts(program)
            state.loop_assigned = self._loop_assigned_variables(program.statements)
            self._place_inputs(program, environment, state)
        self._execute_block(program.statements, program, environment, state)
        elapsed = time.perf_counter() - started
        return ProgramResult(
            environment.values, elapsed, state.trace, state.iteration_metrics
        )

    # -- input preparation ------------------------------------------------------

    def _prepare_inputs(self, program: TargetProgram, inputs: dict[str, Any]) -> dict[str, Any]:
        values: dict[str, Any] = {}
        for name, value in inputs.items():
            info = program.variables.get(name)
            if info is not None and info.is_collection:
                values[name] = self._to_dataset(value)
            else:
                values[name] = value
        missing = [
            name
            for name, info in program.variables.items()
            if info.is_input and name not in values
        ]
        if missing:
            raise ExecutionError(f"missing program inputs: {', '.join(sorted(missing))}")
        return values

    def _to_dataset(self, value: Any) -> Dataset:
        if isinstance(value, Dataset):
            return value
        if isinstance(value, dict):
            return self.context.parallelize_pairs(value)
        if isinstance(value, (list, tuple)):
            # Plain sequences become indexed collections: (position, element).
            # Pass a dict or a Dataset of pairs to supply explicit keys.
            return self.context.indexed(list(value))
        raise ExecutionError(f"cannot convert {type(value).__name__} to a dataset")

    # -- statement execution -----------------------------------------------------

    def _execute_block(
        self,
        statements: tuple[TargetStatement, ...],
        program: TargetProgram,
        environment: EvaluationEnvironment,
        state: _RunState,
    ) -> None:
        for statement in statements:
            if isinstance(statement, TargetAssign):
                self._execute_assign(statement, program, environment, state)
            elif isinstance(statement, TargetWhile):
                self._execute_while(statement, program, environment, state)
            else:
                raise ExecutionError(f"unknown target statement {statement!r}")

    def _execute_assign(
        self,
        statement: TargetAssign,
        program: TargetProgram,
        environment: EvaluationEnvironment,
        state: _RunState,
    ) -> None:
        evaluator = TermEvaluator(
            environment, state.trace, state.loop_cache, state.skeleton_cache
        )
        fused_before = self.context.metrics.fused_stages
        shuffles_before = self.context.metrics.shuffles
        result = evaluator.evaluate(statement.term)
        info = program.variables.get(statement.variable)
        is_collection = info is not None and info.is_collection
        if statement.scalar:
            value = self._extract_scalar(result, statement, environment)
            if is_collection and not isinstance(value, Dataset):
                value = self._coerce_collection(value)
            environment.values[statement.variable] = value
        else:
            if not isinstance(result, Dataset):
                result = evaluator.as_dataset(result)
            # Assignment is a force point: the pending stage chain closes over
            # the shared variable environment, which later statements mutate,
            # so it must run before this statement completes.
            result.materialize()
            result = self._place_for_demand(statement.variable, result, state)
            environment.values[statement.variable] = result
        if state.loop_cache is not None:
            # Belt and braces: the invariant analysis already excludes every
            # assigned variable, but a cache keyed on stale data would be a
            # silent wrong answer -- drop anything derived from this name.
            state.loop_cache.invalidate(statement.variable)
        if state.skeleton_cache is not None:
            state.skeleton_cache.invalidate(statement.variable)
        self._trace_fusion(statement.variable, fused_before, shuffles_before, state.trace)

    def _place_inputs(
        self,
        program: TargetProgram,
        environment: EvaluationEnvironment,
        state: _RunState,
    ) -> None:
        """Pre-place program inputs demanded by >= 2 keyed consumers.

        The per-statement planner sees one consumer at a time, so an input
        that several statements join or group on is shuffled once *per
        consumer*; the whole-program demand counts justify hash-partitioning
        it once up front instead.  Variables the program assigns are skipped
        (their own force point runs :meth:`_place_for_demand`, and merges
        leave them placed anyway), as is anything that is not an unplaced
        pair dataset.  Only top-level consumers count: an unmutated input
        read inside a while loop is loop-invariant there and the loop cache
        already shuffles it exactly once, so pre-placing it would only add
        a shuffle.  Inputs small enough to broadcast are skipped too --
        their joins resolve shuffle-free anyway, so placement could only
        add a partitionBy."""
        assigned = self._assigned_variables(program.statements)
        demand = keyed_demand_counts(program, top_level_only=True)
        for name in sorted(environment.values):
            if name in assigned or demand.get(name, 0) < 2:
                continue
            value = environment.values[name]
            if not isinstance(value, Dataset) or value.partitioner is not None:
                continue
            if value.count() <= self.context.broadcast_join_threshold:
                continue
            first = value.take(1)
            if not first or not (isinstance(first[0], tuple) and len(first[0]) == 2):
                continue
            placed = value.partition_by(HashPartitioner(self.context.num_partitions))
            placed.materialize()
            environment.values[name] = placed
            state.trace.append(
                f"{name}: program-level placement for "
                f"{demand[name]} keyed consumer(s) (hash-partitioned)"
            )

    def _place_for_demand(self, variable: str, dataset: Dataset, state: _RunState) -> Dataset:
        """The program-level partitioner pass, applied at the force point.

        A freshly assigned pair dataset that carries no partitioner but has
        at least two downstream keyed consumers (see
        :func:`~repro.algebra.planner.keyed_demand_counts`) is
        hash-partitioned once: the per-statement planner sees one consumer
        at a time and could never justify the placement shuffle, but across
        the whole program it buys a narrow (zero-shuffle) pass per consumer.
        Loop-assigned variables are excluded -- their content churns every
        iteration and the loop-invariant machinery already places the stable
        side of their joins."""
        if not self.context.plan_optimize:
            return dataset
        if variable in state.loop_assigned or state.keyed_demand.get(variable, 0) < 2:
            return dataset
        if dataset.partitioner is not None:
            return dataset
        first = dataset.take(1)
        if not first or not (isinstance(first[0], tuple) and len(first[0]) == 2):
            return dataset
        placed = dataset.partition_by(HashPartitioner(self.context.num_partitions))
        state.trace.append(
            f"{variable}: program-level placement for "
            f"{state.keyed_demand[variable]} keyed consumer(s) (hash-partitioned)"
        )
        return placed

    def _trace_fusion(
        self, variable: str, fused_before: int, shuffles_before: int, trace: list[str]
    ) -> None:
        metrics = self.context.metrics
        fused = metrics.fused_stages - fused_before
        if fused:
            trace.append(f"{variable}: executed {fused} fused narrow stage(s)")
        shuffled = metrics.shuffles - shuffles_before
        if shuffled:
            trace.append(f"{variable}: executed {shuffled} shuffle stage(s)")

    def _extract_scalar(
        self, result: Any, statement: TargetAssign, environment: EvaluationEnvironment
    ) -> Any:
        if isinstance(result, Dataset):
            values = result.take(1)
        elif isinstance(result, list):
            values = result[:1]
        else:
            return result
        if values:
            return values[0]
        # An empty bag means "no update" (e.g. an incremental update over an
        # empty collection); keep the current value when one exists.
        if statement.variable in environment.values:
            return environment.values[statement.variable]
        return None

    def _coerce_collection(self, value: Any) -> Any:
        if isinstance(value, dict):
            return self.context.parallelize_pairs(value)
        if isinstance(value, (list, tuple)):
            return self.context.parallelize_raw(list(value))
        return value

    # -- while loops -------------------------------------------------------------

    @staticmethod
    def _assigned_variables(statements: tuple[TargetStatement, ...]) -> set[str]:
        """Every variable a statement block assigns, nested loops included."""
        assigned: set[str] = set()
        for statement in statements:
            if isinstance(statement, TargetAssign):
                assigned.add(statement.variable)
            elif isinstance(statement, TargetWhile):
                assigned |= ProgramRunner._assigned_variables(statement.body)
        return assigned

    @staticmethod
    def _loop_assigned_variables(statements: tuple[TargetStatement, ...]) -> frozenset[str]:
        """Variables assigned inside any ``while`` body of the program."""
        names: set[str] = set()
        for statement in statements:
            if isinstance(statement, TargetWhile):
                names |= ProgramRunner._assigned_variables(statement.body)
        return frozenset(names)

    def _execute_while(
        self,
        statement: TargetWhile,
        program: TargetProgram,
        environment: EvaluationEnvironment,
        state: _RunState,
    ) -> None:
        assigned = self._assigned_variables(statement.body)
        invariants = frozenset(name for name in environment.values if name not in assigned)
        loop_cache = LoopInvariantCache(invariants) if self.context.plan_optimize else None
        outer_cache = state.loop_cache
        state.loop_cache = loop_cache
        outer_skeletons = state.skeleton_cache
        state.skeleton_cache = PlanSkeletonCache() if self.context.plan_cache else None
        state.loops_seen += 1
        loop_index = state.loops_seen
        if loop_cache is not None and invariants:
            state.trace.append(
                f"while loop {loop_index}: loop-invariant variables "
                f"{{{', '.join(sorted(invariants))}}}"
            )
        metrics = self.context.metrics
        iterations = 0
        try:
            while True:
                evaluator = TermEvaluator(
                    environment, state.trace, state.loop_cache, state.skeleton_cache
                )
                condition = evaluator.evaluate(statement.condition)
                if isinstance(condition, Dataset):
                    condition_values = condition.take(1)
                elif isinstance(condition, list):
                    condition_values = condition[:1]
                else:
                    condition_values = [condition]
                alive = bool(condition_values[0]) if condition_values else False
                if not alive:
                    return
                before = {name: getattr(metrics, name) for name in _ITERATION_COUNTERS}
                self._execute_block(statement.body, program, environment, state)
                iterations += 1
                snapshot = {
                    name: getattr(metrics, name) - before[name]
                    for name in _ITERATION_COUNTERS
                }
                snapshot["loop"] = loop_index
                snapshot["iteration"] = iterations
                state.iteration_metrics.append(snapshot)
                state.trace.append(
                    f"while loop {loop_index} iteration {iterations}: "
                    f"{snapshot['shuffles']} shuffle(s), "
                    f"{snapshot['shuffled_bytes']} bytes shuffled, "
                    f"{snapshot['loop_invariant_reuses']} loop-invariant reuse(s)"
                )
                if iterations > MAX_WHILE_ITERATIONS:
                    raise ExecutionError("while loop exceeded the iteration limit")
        finally:
            state.loop_cache = outer_cache
            state.skeleton_cache = outer_skeletons
