"""Plan explanation: which DISC operations a comprehension compiles to.

``explain_term`` performs a *dry* structural analysis of a term (no data is
needed) and reports the shuffle-relevant operations the evaluator will emit:
dataset scans, hash joins, broadcast nested-loop joins, group-bys /
reduceByKeys and coGroup merges.  Tests and EXPERIMENTS.md use it to show that
the generated plans have the shapes the paper describes (e.g. matrix multiply
= one join + one reduceByKey; the DIABLO KMeans step contains a join with the
centroid array that the hand-written version avoids by broadcasting).

Three runtime-facing companions cover what static analysis cannot know:
``explain_plan`` renders the partition-aware logical plan the evaluator
builds for a comprehension (see :mod:`repro.algebra.plan`), including the
planner's per-node decisions; ``explain_dataset`` renders a lazy Dataset's
physical plan (its pending :class:`~repro.runtime.stage.ShuffleStage` nodes
and fused narrow chains, plus shuffle-elimination notes); and
``explain_metrics`` formats the execution counters -- shuffle stages,
records/bytes moved, combiner hit rate, the join strategies the planner
actually chose, and **which shuffles were eliminated and why** (narrow
co-partitioned passes, pre-partitioned map-side bypasses, loop-invariant
reuses).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebra import plan as plan_mod
from repro.comprehension import ir
from repro.runtime.dataset import Dataset
from repro.runtime.metrics import Metrics


@dataclass
class PlanSummary:
    """Structural summary of the dataflow for one term."""

    scans: list[str] = field(default_factory=list)
    hash_joins: int = 0
    broadcast_joins: int = 0
    group_bys: int = 0
    reduce_by_keys: int = 0
    merges: int = 0
    ranges: int = 0

    @property
    def shuffle_operations(self) -> int:
        """Operations that move data across partitions."""
        return self.hash_joins + self.group_bys + self.reduce_by_keys + self.merges

    @property
    def shuffle_stages(self) -> int:
        """Alias aligned with the runtime's ShuffleStage terminology: every
        shuffle operation executes as one :class:`ShuffleStage` plan node
        (hash joins may still resolve to a broadcast at force time)."""
        return self.shuffle_operations

    def lines(self) -> list[str]:
        entries = [f"scan {name}" for name in self.scans]
        entries += [f"hash joins: {self.hash_joins}"]
        entries += [f"broadcast joins: {self.broadcast_joins}"]
        entries += [f"groupByKey: {self.group_bys}", f"reduceByKey: {self.reduce_by_keys}"]
        entries += [f"coGroup merges: {self.merges}", f"range scans: {self.ranges}"]
        entries += [f"shuffle stages: {self.shuffle_stages}"]
        return entries

    def __str__(self) -> str:
        return "\n".join(self.lines())


def explain_term(term: ir.Term, array_variables: set[str]) -> PlanSummary:
    """Statically summarize the dataflow the evaluator will build for ``term``."""
    summary = PlanSummary()
    _explain(term, array_variables, summary)
    return summary


def _explain(term: ir.Term, arrays: set[str], summary: PlanSummary) -> None:
    if isinstance(term, ir.Merge) or isinstance(term, ir.MergeWith):
        summary.merges += 1
        _explain(term.left, arrays, summary)
        _explain(term.right, arrays, summary)
        return
    if isinstance(term, ir.Comprehension):
        _explain_comprehension(term, arrays, summary)
        return
    for child in term.children():
        _explain(child, arrays, summary)


def _explain_comprehension(comp: ir.Comprehension, arrays: set[str], summary: PlanSummary) -> None:
    bound: set[str] = set()
    dataset_generators = 0
    qualifiers = list(comp.qualifiers)
    for position, qualifier in enumerate(qualifiers):
        if isinstance(qualifier, ir.Generator):
            domain = qualifier.domain
            _explain(domain, arrays, summary)
            is_dataset = isinstance(domain, ir.CVar) and domain.name in arrays
            if isinstance(domain, ir.RangeTerm):
                summary.ranges += 1
                is_dataset = True
            if is_dataset:
                if isinstance(domain, ir.CVar):
                    summary.scans.append(domain.name)
                dataset_generators += 1
                if dataset_generators > 1:
                    if _has_join_condition(qualifiers, position, bound, set(qualifier.pattern.variables())):
                        summary.hash_joins += 1
                    else:
                        summary.broadcast_joins += 1
            bound.update(qualifier.pattern.variables())
        elif isinstance(qualifier, ir.LetBinding):
            _explain(qualifier.term, arrays, summary)
            bound.update(qualifier.pattern.variables())
        elif isinstance(qualifier, ir.Condition):
            _explain(qualifier.term, arrays, summary)
        elif isinstance(qualifier, ir.GroupBy):
            post = qualifiers[position + 1 :]
            if _is_aggregation_only(comp.head, post, qualifier, bound):
                summary.reduce_by_keys += 1
            else:
                summary.group_bys += 1
            bound.update(qualifier.pattern.variables())
    _explain(comp.head, arrays, summary)


def _has_join_condition(
    qualifiers: list[ir.Qualifier], position: int, bound: set[str], new_variables: set[str]
) -> bool:
    for later in qualifiers[position + 1 :]:
        if isinstance(later, ir.GroupBy):
            return False
        if not isinstance(later, ir.Condition):
            continue
        term = later.term
        if not (isinstance(term, ir.CBinOp) and term.op == "=="):
            continue
        left_vars = ir.free_variables(term.left)
        right_vars = ir.free_variables(term.right)
        for one, other in ((left_vars, right_vars), (right_vars, left_vars)):
            if one & bound and other & new_variables and not (one & new_variables):
                return True
    return False


def _is_aggregation_only(
    head: ir.Term, post: list[ir.Qualifier], group_by: ir.GroupBy, bound: set[str]
) -> bool:
    if post:
        return False
    if not isinstance(head, ir.CTuple) or len(head.elements) != 2:
        return False
    value_part = head.elements[1]
    return isinstance(value_part, ir.Aggregate) and isinstance(value_part.operand, ir.CVar)


# ---------------------------------------------------------------------------
# Runtime-facing explanation
# ---------------------------------------------------------------------------


def explain_plan(node: plan_mod.PlanNode) -> str:
    """Render a logical plan tree with the planner's per-node decisions.

    Plans are exposed by :attr:`TermEvaluator.last_plan` after a
    comprehension evaluates; nodes show loop-invariance, the key term their
    rows are partitioned by, and annotations such as cached join sides or
    preserved partitioners.
    """
    return plan_mod.render_plan(node)


def explain_dataset(dataset: Dataset) -> str:
    """The physical plan of a (possibly pending) runtime Dataset.

    Delegates to :meth:`Dataset.explain`: shuffle stages with their strategy,
    output partitioning and combiner, plus the fused narrow chains feeding
    them.
    """
    return dataset.explain()


def explain_metrics(metrics: Metrics) -> list[str]:
    """Format the execution counters a run actually produced.

    Reports the shuffle-stage breakdown (records and estimated bytes moved,
    map/reduce task counts), the map-side combiner hit rate, the join
    strategies the planner chose, and every shuffle the partition-aware
    planner eliminated (with the reason) -- the dynamic complement of the
    static ``explain_term`` summary.
    """
    lines = [
        f"shuffle stages: {metrics.shuffles} "
        f"({metrics.shuffled_records} records, {metrics.shuffled_bytes} bytes moved)",
        f"shuffle tasks: {metrics.shuffle_map_tasks} map, {metrics.shuffle_reduce_tasks} reduce",
    ]
    for operation, count in sorted(metrics.shuffle_operations.items()):
        lines.append(f"  {operation}: {count}")
    if metrics.shuffles_eliminated or metrics.prepartitioned_inputs:
        lines.append(
            f"shuffles eliminated: {metrics.shuffles_eliminated} "
            f"(narrow joins: {metrics.narrow_joins}, "
            f"pre-partitioned map sides skipped: {metrics.prepartitioned_inputs})"
        )
        for entry in metrics.elimination_log:
            lines.append(
                f"  {entry['operation']} [{entry['kind']}]: {entry['reason']}"
            )
    if metrics.loop_invariant_reuses:
        lines.append(f"loop-invariant reuses: {metrics.loop_invariant_reuses}")
    if metrics.plan_cache_hits:
        lines.append(f"plan-skeleton cache hits: {metrics.plan_cache_hits}")
    if metrics.adaptive_decisions or metrics.salted_keys:
        lines.append(
            f"adaptive decisions: {metrics.adaptive_decisions} "
            f"(salted hot keys: {metrics.salted_keys})"
        )
        for entry in metrics.adaptive_log:
            lines.append(
                f"  {entry['operation']} [{entry['kind']}]: {entry['reason']}"
            )
    if metrics.vectorized_stages or metrics.columnar_fallbacks:
        lines.append(
            f"vectorized stages: {metrics.vectorized_stages} "
            f"(record-path fallbacks: {metrics.columnar_fallbacks})"
        )
        if (
            metrics.columnar_memoized_skips
            or metrics.columnar_resident_reuses
            or metrics.columnar_vector_bucket_tasks
        ):
            lines.append(
                f"  batch runtime: {metrics.columnar_memoized_skips} memoized "
                f"fallback skip(s), {metrics.columnar_resident_reuses} resident "
                f"partition reuse(s), {metrics.columnar_vector_bucket_tasks} "
                f"vectorized bucket task(s)"
            )
    if metrics.combiner_input_records:
        lines.append(
            f"combiner: {metrics.combiner_input_records} -> "
            f"{metrics.combiner_output_records} records "
            f"(hit rate {metrics.combiner_hit_rate:.1%})"
        )
    if metrics.spill_files:
        lines.append(
            f"spill: {metrics.spilled_bytes} bytes in {metrics.spill_files} files "
            f"(peak shuffle memory {metrics.peak_shuffle_memory} bytes)"
        )
    if metrics.join_strategies:
        chosen = ", ".join(
            f"{strategy}={count}" for strategy, count in sorted(metrics.join_strategies.items())
        )
        lines.append(f"join strategies: {chosen}")
    lines.append(f"parallel tasks dispatched: {metrics.parallel_tasks}")
    return lines
