"""Loop-language sources for every benchmark program in the paper.

The twelve Figure 3 programs follow Appendix B as closely as the concrete
syntax allows; deviations are noted per program:

* **KMeans** -- ``avg[i].value()`` becomes the registered function
  ``avgValue(avg[i])`` (the loop language has no method-call syntax), and the
  benchmark runs a single clustering step (Figure 3.K measures one step).
* **Matrix Factorization** -- Appendix B updates ``P``/``Q`` in place while
  also reading them, which violates Restriction 2; Section 3.2 explains the
  intended fix (read the previous values ``P'``/``Q'``).  The program here
  reads the previous factors ``Pp`` / ``Qp`` and produces new ``P`` / ``Q``,
  exactly as the Section 3.2 loop program does, for one gradient-descent step.
* **PageRank** -- identical in structure to Appendix B (degree computation,
  ``Q`` matrix, rank update) with a configurable number of steps.

The Table 1 comparison additionally uses Average, Count, Sum, Conditional
Count, Equal Frequency and PCA; the paper does not list their sources, so the
versions here are the natural loop-based formulations of those kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.comprehension.monoids import Monoid, argmin_monoid, avg_monoid

# ---------------------------------------------------------------------------
# Program specification
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ProgramSpec:
    """A benchmark program: its loop-language source plus required extensions.

    Attributes:
        name: short identifier (e.g. ``"matrix_multiplication"``).
        title: the name used in the paper's tables and figures.
        source: loop-language source text.
        figure: the Figure 3 panel letter, or "" when the program only appears
            in Table 1.
        functions: extra scalar functions the program calls.
        monoids: extra commutative monoids the program's updates use.
        scalar_outputs / array_outputs: the result variables benchmarks check.
        notes: deviations from the paper's listing, if any.
    """

    name: str
    title: str
    source: str
    figure: str = ""
    functions: dict[str, Callable[..., Any]] = field(default_factory=dict, hash=False, compare=False)
    monoids: tuple[Monoid, ...] = ()
    scalar_outputs: tuple[str, ...] = ()
    array_outputs: tuple[str, ...] = ()
    notes: str = ""


# ---------------------------------------------------------------------------
# Figure 3 programs (Appendix B)
# ---------------------------------------------------------------------------

CONDITIONAL_SUM = ProgramSpec(
    name="conditional_sum",
    title="Conditional Sum",
    figure="A",
    source="""
var sum: double = 0.0;
for v in V do
  if (v < 100)
    sum += v;
""",
    scalar_outputs=("sum",),
)

EQUAL = ProgramSpec(
    name="equal",
    title="Equal",
    figure="B",
    source="""
var eq: bool = true;
for w in words do
  eq := eq && (w == x);
""",
    scalar_outputs=("eq",),
)

STRING_MATCH = ProgramSpec(
    name="string_match",
    title="String Match",
    figure="C",
    source="""
var c: bool = false;
for w in words do
  c := c || (w == key1 || w == key2 || w == key3);
""",
    scalar_outputs=("c",),
)

WORD_COUNT = ProgramSpec(
    name="word_count",
    title="Word Count",
    figure="D",
    source="""
var C: map[string, int] = map();
for w in words do
  C[w] += 1;
""",
    array_outputs=("C",),
)

HISTOGRAM = ProgramSpec(
    name="histogram",
    title="Histogram",
    figure="E",
    source="""
var R: map[int, int] = map();
var G: map[int, int] = map();
var B: map[int, int] = map();
for p in P do {
  R[p.red] += 1;
  G[p.green] += 1;
  B[p.blue] += 1;
};
""",
    array_outputs=("R", "G", "B"),
)

LINEAR_REGRESSION = ProgramSpec(
    name="linear_regression",
    title="Linear Regression",
    figure="F",
    source="""
var sum_x: double = 0.0;
var sum_y: double = 0.0;
var x_bar: double = 0.0;
var y_bar: double = 0.0;
var xx_bar: double = 0.0;
var yy_bar: double = 0.0;
var xy_bar: double = 0.0;
var slope: double = 0.0;
var intercept: double = 0.0;
for p in P do {
  sum_x += p._1;
  sum_y += p._2;
};
x_bar := sum_x/n;
y_bar := sum_y/n;
for p in P do {
  xx_bar += (p._1-x_bar)*(p._1-x_bar);
  yy_bar += (p._2-y_bar)*(p._2-y_bar);
  xy_bar += (p._1-x_bar)*(p._2-y_bar);
};
slope := xy_bar/xx_bar;
intercept := y_bar-slope*x_bar;
""",
    scalar_outputs=("slope", "intercept"),
)

GROUP_BY = ProgramSpec(
    name="group_by",
    title="Group By",
    figure="G",
    source="""
var C: vector[double] = vector();
for v in V do
  C[v.K] += v.A;
""",
    array_outputs=("C",),
)

MATRIX_ADDITION = ProgramSpec(
    name="matrix_addition",
    title="Matrix Addition",
    figure="H",
    source="""
var R: matrix[double] = matrix();
for i = 0, n-1 do
  for j = 0, mm-1 do
    R[i,j] := M[i,j]+N[i,j];
""",
    array_outputs=("R",),
)

MATRIX_MULTIPLICATION = ProgramSpec(
    name="matrix_multiplication",
    title="Matrix Multiplication",
    figure="I",
    source="""
var R: matrix[double] = matrix();
for i = 0, n-1 do
  for j = 0, n-1 do {
    R[i,j] := 0.0;
    for k = 0, mm-1 do
      R[i,j] += M[i,k]*N[k,j];
  };
""",
    array_outputs=("R",),
)

PAGERANK = ProgramSpec(
    name="pagerank",
    title="PageRank",
    figure="J",
    source="""
var P: vector[double] = vector();
var C: vector[int] = vector();
var b: double = 0.85;
for i = 1, N do {
  C[i] := 0;
  P[i] := 1.0/N;
};
for i = 1, N do
  for j = 1, N do
    if (E[i,j])
      C[i] += 1;
var k: int = 0;
while (k < num_steps) {
  var Q: matrix[double] = matrix();
  k += 1;
  for i = 1, N do
    for j = 1, N do
      if (E[i,j])
        Q[i,j] := P[i];
  for i = 1, N do
    P[i] := (1-b)/N;
  for i = 1, N do
    for j = 1, N do
      P[i] += b*Q[j,i]/C[j];
};
""",
    array_outputs=("P", "C"),
)

KMEANS = ProgramSpec(
    name="kmeans",
    title="KMeans Clustering",
    figure="K",
    source="""
var closest: vector[double] = vector();
var avg: vector[double] = vector();
for i = 0, N-1 do {
  closest[i] := ArgMin(0, 1.0e12);
  for j = 0, K-1 do
    closest[i] := closest[i] ^ ArgMin(j, distance(P[i], C[j]));
  avg[idx(closest[i])] := avg[idx(closest[i])] ^^ Avg(P[i], 1);
};
for j = 0, K-1 do
  C[j] := avgValue(avg[j]);
""",
    functions={
        "avgValue": lambda accumulator: accumulator.value(),
        "idx": lambda record: record.index,
    },
    monoids=(argmin_monoid(), avg_monoid()),
    array_outputs=("C",),
    notes="avg[i].value() spelled as avgValue(avg[i]); one clustering step",
)

MATRIX_FACTORIZATION = ProgramSpec(
    name="matrix_factorization",
    title="Matrix Factorization",
    figure="L",
    source="""
var pq: matrix[double] = matrix();
var E: matrix[double] = matrix();
var P: matrix[double] = matrix();
var Q: matrix[double] = matrix();
for i = 0, n-1 do
  for j = 0, m-1 do {
    pq[i,j] := 0.0;
    for k = 0, l-1 do
      pq[i,j] += Pp[i,k]*Qp[k,j];
    E[i,j] := R[i,j]-pq[i,j];
  };
for i = 0, n-1 do
  for k = 0, l-1 do
    P[i,k] := Pp[i,k];
for k = 0, l-1 do
  for j = 0, m-1 do
    Q[k,j] := Qp[k,j];
for i = 0, n-1 do
  for j = 0, m-1 do
    for k = 0, l-1 do {
      P[i,k] += a*(2*E[i,j]*Qp[k,j]-b*Pp[i,k]);
      Q[k,j] += a*(2*E[i,j]*Pp[i,k]-b*Qp[k,j]);
    };
""",
    array_outputs=("P", "Q", "E"),
    notes="reads the previous factors Pp/Qp as Section 3.2 prescribes; one GD step",
)

# ---------------------------------------------------------------------------
# Additional Table 1 programs
# ---------------------------------------------------------------------------

AVERAGE = ProgramSpec(
    name="average",
    title="Average",
    source="""
var s: double = 0.0;
var cnt: int = 0;
var avg: double = 0.0;
for v in V do {
  s += v;
  cnt += 1;
};
avg := s/cnt;
""",
    scalar_outputs=("avg",),
)

COUNT = ProgramSpec(
    name="count",
    title="Count",
    source="""
var cnt: int = 0;
for v in V do
  cnt += 1;
""",
    scalar_outputs=("cnt",),
)

SUM = ProgramSpec(
    name="sum",
    title="Sum",
    source="""
var s: double = 0.0;
for v in V do
  s += v;
""",
    scalar_outputs=("s",),
)

CONDITIONAL_COUNT = ProgramSpec(
    name="conditional_count",
    title="Conditional Count",
    source="""
var cnt: int = 0;
for v in V do
  if (v < 100)
    cnt += 1;
""",
    scalar_outputs=("cnt",),
)

EQUAL_FREQUENCY = ProgramSpec(
    name="equal_frequency",
    title="Equal Frequency",
    source="""
var C: map[string, int] = map();
for w in words do
  C[w] += 1;
var total: int = 0;
var distinctWords: int = 0;
for c in C do {
  total += c;
  distinctWords += 1;
};
var eq: bool = true;
for c in C do
  eq := eq && (c * distinctWords == total);
""",
    scalar_outputs=("eq",),
    notes="the paper does not list this program; this is the natural loop formulation",
)

PCA = ProgramSpec(
    name="pca",
    title="PCA",
    source="""
var sum: vector[double] = vector();
var mean: vector[double] = vector();
var cov: matrix[double] = matrix();
for i = 0, n-1 do
  for k = 0, d-1 do
    sum[k] += X[i,k];
for k = 0, d-1 do
  mean[k] := sum[k]/n;
for i = 0, n-1 do
  for k = 0, d-1 do
    for l = 0, d-1 do
      cov[k,l] += (X[i,k]-mean[k])*(X[i,l]-mean[l])/n;
""",
    array_outputs=("mean", "cov"),
    notes="covariance-matrix construction, the data-parallel core of PCA",
)

# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_ALL_PROGRAMS = [
    CONDITIONAL_SUM,
    EQUAL,
    STRING_MATCH,
    WORD_COUNT,
    HISTOGRAM,
    LINEAR_REGRESSION,
    GROUP_BY,
    MATRIX_ADDITION,
    MATRIX_MULTIPLICATION,
    PAGERANK,
    KMEANS,
    MATRIX_FACTORIZATION,
    AVERAGE,
    COUNT,
    SUM,
    CONDITIONAL_COUNT,
    EQUAL_FREQUENCY,
    PCA,
]

#: All benchmark programs keyed by name.
PROGRAMS: dict[str, ProgramSpec] = {program.name: program for program in _ALL_PROGRAMS}


def get_program(name: str) -> ProgramSpec:
    """Look up a benchmark program by name; raises ``KeyError`` when unknown."""
    return PROGRAMS[name]


def figure3_program_names() -> list[str]:
    """The twelve programs of Figure 3, in panel order A..L."""
    with_panels = [p for p in _ALL_PROGRAMS if p.figure]
    return [p.name for p in sorted(with_panels, key=lambda p: p.figure)]


def table2_program_names() -> list[str]:
    """The programs of Table 2 (parallel vs sequential) -- same as Figure 3."""
    return figure3_program_names()


def table1_program_names() -> list[str]:
    """The sixteen programs of Table 1 (translator comparison), paper order."""
    return [
        "average",
        "conditional_count",
        "conditional_sum",
        "count",
        "equal",
        "equal_frequency",
        "string_match",
        "sum",
        "word_count",
        "histogram",
        "matrix_multiplication",
        "linear_regression",
        "kmeans",
        "pca",
        "pagerank",
        "matrix_factorization",
    ]
