"""The loop-language programs used throughout the paper's evaluation.

:mod:`repro.programs.sources` holds the Appendix B DIABLO programs for the
twelve Figure 3 workloads, plus the additional small programs that appear in
the Table 1 translator comparison (Average, Count, Sum, Conditional Count,
Equal Frequency, PCA).  Each program is packaged as a
:class:`~repro.programs.sources.ProgramSpec` together with the scalar
functions and custom monoids it needs.
"""

from repro.programs.sources import (
    PROGRAMS,
    ProgramSpec,
    figure3_program_names,
    get_program,
    table1_program_names,
    table2_program_names,
)

__all__ = [
    "PROGRAMS",
    "ProgramSpec",
    "get_program",
    "figure3_program_names",
    "table1_program_names",
    "table2_program_names",
]
