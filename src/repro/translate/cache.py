"""A keyed cache for compiler output, shared by the facade and the jit API.

Translation is pure: the same source text (or program AST), the same declared
input types and the same compiler options always produce the same target
program, and every compiler artifact is an immutable dataclass that can be
shared freely between callers.  That makes translation results safe to
memoize, which is what lets iterative drivers (k-means sweeps, PageRank
convergence loops, serving many requests for the same program) stop paying
translation on every call.

The cache is a bounded LRU map guarded by a lock so jit-compiled functions
can be called from multiple threads.  :func:`CompilationCache.info` mirrors
``functools.lru_cache``'s ``cache_info()`` shape; ``misses`` equals the number
of real translations performed through the cache.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable


@dataclass(frozen=True)
class CacheInfo:
    """A snapshot of a :class:`CompilationCache`'s counters."""

    hits: int
    misses: int
    size: int
    maxsize: int

    def __str__(self) -> str:
        return f"CacheInfo(hits={self.hits}, misses={self.misses}, size={self.size}/{self.maxsize})"


class CompilationCache:
    """A bounded, thread-safe LRU cache of translation results."""

    def __init__(self, maxsize: int = 128):
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._lock = threading.Lock()

    def get(self, key: Hashable) -> Any | None:
        """The cached value for ``key``, or None (counted as a miss)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return entry

    def put(self, key: Hashable, value: Any) -> None:
        """Store ``value`` under ``key``, evicting the least recently used entry."""
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss counters."""
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0

    def info(self) -> CacheInfo:
        """Current counters (`misses` == translations performed through the cache)."""
        with self._lock:
            return CacheInfo(self._hits, self._misses, len(self._entries), self.maxsize)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
