"""The target language of the translation (Section 3.8).

Target code is a list of statements where

* an **assignment** ``v := e`` binds a variable to the value of a
  comprehension term ``e`` -- for array variables the term produces the whole
  new content of the array (a bag of key-value pairs), for scalar variables it
  produces a bag holding the new value;
* a **while** statement repeats a block of target code while a scalar boolean
  comprehension evaluates to true;
* a **code block** is a list of statements evaluated in order.

The target code is what the DISC algebra compiler consumes: every assignment's
right-hand side becomes a dataflow plan over the distributed runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Union

from repro.comprehension import ir
from repro.loop_lang import ast


@dataclass(frozen=True)
class VariableInfo:
    """Static information about a program variable.

    Attributes:
        name: the variable name.
        kind: ``"array"`` for sparse vectors / matrices / maps (key-value
            collections), ``"collection"`` for un-indexed input bags, and
            ``"scalar"`` for everything else.
        declared_type: the loop-language type from a ``var`` declaration, when
            one exists.
        is_input: True when the variable is free in the program (it must be
            supplied by the caller at run time).
    """

    name: str
    kind: str
    declared_type: ast.Type | None = None
    is_input: bool = False

    @property
    def is_array(self) -> bool:
        return self.kind == "array"

    @property
    def is_collection(self) -> bool:
        return self.kind in ("array", "collection")


@dataclass(frozen=True)
class TargetAssign:
    """A bulk assignment ``variable := term``.

    ``scalar`` selects the assignment semantics: scalar assignments take the
    single element of the bag produced by ``term``; array assignments replace
    the whole array content with the produced key-value pairs.
    """

    variable: str
    term: ir.Term
    scalar: bool = False
    #: The loop-language statement this assignment was generated from (for
    #: error messages and provenance in tests); not part of equality.
    origin: ast.Stmt | None = field(default=None, compare=False)

    def __str__(self) -> str:
        return f"{self.variable} := {self.term}"


@dataclass(frozen=True)
class TargetWhile:
    """A sequential loop ``while(condition, body)``."""

    condition: ir.Term
    body: tuple["TargetStatement", ...]

    def __str__(self) -> str:
        inner = "; ".join(str(s) for s in self.body)
        return f"while ({self.condition}) {{ {inner} }}"


TargetStatement = Union[TargetAssign, TargetWhile]


@dataclass(frozen=True)
class TargetProgram:
    """A translated program: target statements plus variable metadata."""

    statements: tuple[TargetStatement, ...]
    variables: dict[str, VariableInfo]

    def __str__(self) -> str:
        return "\n".join(str(s) for s in self.statements)

    def array_names(self) -> set[str]:
        """Names of variables stored as key-value datasets."""
        return {name for name, info in self.variables.items() if info.is_array}

    def input_names(self) -> set[str]:
        """Names of free variables the caller must supply."""
        return {name for name, info in self.variables.items() if info.is_input}

    def assignments(self) -> Iterator[TargetAssign]:
        """All assignments, including those nested in while bodies."""

        def walk(statements: tuple[TargetStatement, ...]) -> Iterator[TargetAssign]:
            for statement in statements:
                if isinstance(statement, TargetAssign):
                    yield statement
                elif isinstance(statement, TargetWhile):
                    yield from walk(statement.body)

        return walk(self.statements)
