"""The DIABLO compiler driver.

``DiabloCompiler`` chains every stage of the paper's pipeline:

1. parse the loop-language source (or accept an already-built AST, or a Python
   function via the :mod:`repro.loop_lang.python_frontend`);
2. canonicalize ``d := d ⊕ e`` into incremental updates;
3. check the Definition 3.1 restrictions (Section 3.2);
4. apply the Figure 2 translation rules, producing target code whose
   right-hand sides are monoid comprehensions;
5. normalize the comprehensions (Rule 2) and apply the Section 3.6 / Section 4
   optimizations.

The result is a :class:`repro.translate.target.TargetProgram`, which the DISC
algebra compiler (:mod:`repro.algebra`) turns into executable dataflow plans.
"""

from __future__ import annotations

import inspect
import textwrap
import time
from dataclasses import dataclass
from typing import Callable, Hashable, Mapping

from repro.analysis.restrictions import RestrictionChecker
from repro.comprehension import ir
from repro.comprehension.monoids import DEFAULT_MONOIDS, MonoidRegistry
from repro.comprehension.normalize import normalize
from repro.comprehension.optimize import Optimizer, OptimizerStats
from repro.loop_lang import ast
from repro.loop_lang.parser import parse_program
from repro.loop_lang.python_frontend import from_python_function
from repro.translate.cache import CacheInfo, CompilationCache
from repro.translate.canonicalize import canonicalize_increments
from repro.translate.rules import TranslationRules
from repro.translate.target import TargetAssign, TargetProgram, TargetStatement, TargetWhile, VariableInfo


@dataclass
class TranslationResult:
    """The output of one compiler run.

    Attributes:
        target: the translated target program.
        source: the (canonicalized) loop-language program that was translated.
        optimizer_stats: how many Section 3.6 / Section 4 rewrites fired.
        translation_seconds: wall-clock time spent in the compiler (the number
            reported in the Table 1 reproduction).
    """

    target: TargetProgram
    source: ast.Program
    optimizer_stats: OptimizerStats
    translation_seconds: float = 0.0


class DiabloCompiler:
    """Translates loop-based programs to DISC target code.

    Args:
        monoids: commutative monoid registry (``+``, ``*``, ``&&``, ... plus
            any user-registered operators such as KMeans' ``^`` / ``^^``).
        check_restrictions: when True (the default) programs violating
            Definition 3.1 are rejected with :class:`RestrictionError`.
        optimize: when False the Section 3.6 / Section 4 rewrites are skipped
            (used by the ablation benchmarks).
        strict: when True the full static-diagnostics suite (type/shape
            inference and plan lint; see :mod:`repro.analysis`) runs after
            translation with warnings promoted to errors, and any finding
            raises :class:`~repro.errors.StaticCheckError`.
        cache: the compilation cache consulted by :meth:`compile` (a private
            one is created when omitted; the jit API passes a shared cache so
            every decorated function draws from one pool).
    """

    def __init__(
        self,
        monoids: MonoidRegistry | None = None,
        check_restrictions: bool = True,
        optimize: bool = True,
        enable_range_elimination: bool = True,
        enable_group_by_elimination: bool = True,
        strict: bool = False,
        cache: CompilationCache | None = None,
    ):
        self.monoids = monoids or DEFAULT_MONOIDS
        self.check_restrictions = check_restrictions
        self.optimize = optimize
        self.strict = strict
        self.enable_range_elimination = enable_range_elimination
        self.enable_group_by_elimination = enable_group_by_elimination
        self.cache = cache if cache is not None else CompilationCache()

    # -- public API -----------------------------------------------------------

    def compile(
        self,
        source: str | ast.Program | Callable,
        input_types: Mapping[str, VariableInfo] | None = None,
    ) -> TranslationResult:
        """Compile loop-language source text, a program AST or a Python function.

        Args:
            source: the program to translate.
            input_types: declared :class:`VariableInfo` for free (input)
                variables -- e.g. from jit parameter annotations -- which
                override kind inference for those names.
        """
        key = self._cache_key(source, input_types)
        if key is not None:
            cached = self.cache.get(key)
            if cached is not None:
                return cached
        result = self._translate(source, input_types)
        if key is not None:
            self.cache.put(key, result)
        return result

    def cache_info(self) -> CacheInfo:
        """Hit/miss counters of the compilation cache."""
        return self.cache.info()

    def cache_clear(self) -> None:
        """Drop every cached translation."""
        self.cache.clear()

    def _translate(
        self,
        source: str | ast.Program | Callable,
        input_types: Mapping[str, VariableInfo] | None = None,
    ) -> TranslationResult:
        started = time.perf_counter()
        program = self._to_program(source)
        program = canonicalize_increments(program, self.monoids)
        if self.check_restrictions:
            RestrictionChecker(self.monoids).require(program)
        variables = infer_variables(program, input_types)
        fresh = ir.NameGenerator()
        rules = TranslationRules(variables, fresh)
        statements: list[TargetStatement] = []
        for stmt in program.statements:
            statements.extend(rules.statement(stmt, []))
        optimizer = Optimizer(
            array_variables={n for n, v in variables.items() if v.is_collection},
            enable_range_elimination=self.enable_range_elimination,
            enable_group_by_elimination=self.enable_group_by_elimination,
        )
        optimized = tuple(self._optimize_statement(s, optimizer, fresh) for s in statements)
        elapsed = time.perf_counter() - started
        target = TargetProgram(optimized, variables)
        if self.strict:
            self._enforce_strict(target)
        return TranslationResult(
            target=target,
            source=program,
            optimizer_stats=optimizer.stats,
            translation_seconds=elapsed,
        )

    # -- helpers ---------------------------------------------------------------

    def _enforce_strict(self, target: TargetProgram) -> None:
        """Strict mode: static diagnostics (warnings promoted) block compilation."""
        # Imported lazily: repro.analysis imports translate modules.
        from repro.analysis.plan_lint import lint_target
        from repro.analysis.typecheck import check_types
        from repro.errors import StaticCheckError

        findings = [d.promote() for d in check_types(target, self.monoids)]
        findings += [d.promote() for d in lint_target(target)]
        errors = [d for d in findings if d.severity.name == "ERROR"]
        if errors:
            details = "\n".join(d.render() for d in errors)
            raise StaticCheckError(
                f"strict mode: {len(errors)} static finding(s) block compilation:\n{details}",
                errors,
            )

    def _cache_key(
        self,
        source: str | ast.Program | Callable,
        input_types: Mapping[str, VariableInfo] | None,
    ) -> Hashable | None:
        """The cache key for a compile call, or None when the call is uncacheable.

        Keys combine the source (text or hashable program AST), the declared
        input types, the compiler options and the registered monoid symbols,
        so compilers with different configurations never share entries.
        """
        source_key: Hashable
        if isinstance(source, (str, ast.Program)):
            source_key = source
        elif callable(source):
            try:
                source_key = textwrap.dedent(inspect.getsource(source))
            except (OSError, TypeError):
                return None
        else:
            return None
        types_key: tuple = ()
        if input_types:
            types_key = tuple(
                (name, info.kind, info.declared_type)
                for name, info in sorted(input_types.items(), key=lambda item: item[0])
            )
        options_key = (
            self.check_restrictions,
            self.optimize,
            self.strict,
            self.enable_range_elimination,
            self.enable_group_by_elimination,
            # Registry identity + mutation version: replacing a monoid under
            # an existing symbol must not serve a stale translation.
            self.monoids.fingerprint(),
        )
        key = (source_key, types_key, options_key)
        try:
            hash(key)
        except TypeError:
            return None
        return key

    @staticmethod
    def _to_program(source: str | ast.Program | Callable) -> ast.Program:
        if isinstance(source, ast.Program):
            return source
        if isinstance(source, str):
            return parse_program(source)
        if callable(source):
            return from_python_function(source)
        raise TypeError(f"cannot compile object of type {type(source).__name__}")

    def _optimize_statement(
        self, statement: TargetStatement, optimizer: Optimizer, fresh: ir.NameGenerator
    ) -> TargetStatement:
        if isinstance(statement, TargetAssign):
            term = normalize(statement.term, fresh)
            if self.optimize:
                term = optimizer.optimize(term, fresh)
            return TargetAssign(statement.variable, term, statement.scalar, origin=statement.origin)
        if isinstance(statement, TargetWhile):
            condition = normalize(statement.condition, fresh)
            if self.optimize:
                condition = optimizer.optimize(condition, fresh)
            body = tuple(self._optimize_statement(s, optimizer, fresh) for s in statement.body)
            return TargetWhile(condition, body)
        raise TypeError(f"unknown target statement {statement!r}")


# ---------------------------------------------------------------------------
# Variable inference
# ---------------------------------------------------------------------------


def infer_variables(
    program: ast.Program,
    input_types: Mapping[str, VariableInfo] | None = None,
) -> dict[str, VariableInfo]:
    """Classify every program variable as array, collection or scalar.

    * Variables declared with ``var v: vector[...] / matrix[...] / map[...]``
      are arrays; other declarations are scalars.
    * Free variables (inputs) with an entry in ``input_types`` (e.g. from jit
      parameter annotations) use the declared kind and type instead of
      inference; a declared scalar/collection that the program indexes is
      still promoted to an array.
    * Remaining free variables indexed with ``[...]`` anywhere are arrays;
      free variables traversed with ``for x in V`` are collections; all other
      free variables are scalars.
    * Loop index variables and traversal element variables are bound by their
      loops and are not program variables at all.
    """
    declared: dict[str, VariableInfo] = {}
    bound: set[str] = set()
    indexed: set[str] = set()
    traversed: set[str] = set()
    referenced: set[str] = set()

    def visit_expr(expr: ast.Expr) -> None:
        for node in ast.walk_expressions(expr):
            if isinstance(node, ast.Var):
                referenced.add(node.name)
            elif isinstance(node, ast.Index) and isinstance(node.array, ast.Var):
                indexed.add(node.array.name)

    def visit(stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.VarDecl):
            kind = "array" if ast.is_array_type(stmt.type) else "scalar"
            if isinstance(stmt.type, ast.ParametricType) and stmt.type.constructor == "bag":
                kind = "collection"
            declared[stmt.name] = VariableInfo(stmt.name, kind, stmt.type, is_input=False)
            visit_expr(stmt.init)
        elif isinstance(stmt, (ast.Assign, ast.IncrementalUpdate)):
            visit_expr(stmt.destination)
            visit_expr(stmt.value)
        elif isinstance(stmt, ast.ForRange):
            bound.add(stmt.variable)
            visit_expr(stmt.lower)
            visit_expr(stmt.upper)
            visit(stmt.body)
        elif isinstance(stmt, ast.ForIn):
            bound.add(stmt.variable)
            if isinstance(stmt.source, ast.Var):
                traversed.add(stmt.source.name)
            visit_expr(stmt.source)
            visit(stmt.body)
        elif isinstance(stmt, ast.While):
            visit_expr(stmt.condition)
            visit(stmt.body)
        elif isinstance(stmt, ast.If):
            visit_expr(stmt.condition)
            visit(stmt.then_branch)
            if stmt.else_branch is not None:
                visit(stmt.else_branch)
        elif isinstance(stmt, ast.Block):
            for inner in stmt.statements:
                visit(inner)

    for stmt in program.statements:
        visit(stmt)

    declared_inputs = dict(input_types or {})
    variables: dict[str, VariableInfo] = dict(declared)
    for name in sorted(referenced | indexed | traversed | set(declared_inputs)):
        if name in variables or name in bound:
            continue
        declared_info = declared_inputs.get(name)
        if declared_info is not None:
            kind = declared_info.kind
            if name in indexed and kind != "array":
                kind = "array"
            elif name in traversed and kind == "scalar":
                kind = "collection"
            variables[name] = VariableInfo(name, kind, declared_info.declared_type, is_input=True)
            continue
        if name in indexed:
            kind = "array"
        elif name in traversed:
            kind = "collection"
        else:
            kind = "scalar"
        variables[name] = VariableInfo(name, kind, None, is_input=True)
    # A declared scalar that is nevertheless indexed is really an array (the
    # declaration may have used an opaque type).
    for name in indexed:
        info = variables.get(name)
        if info is not None and info.kind == "scalar":
            variables[name] = VariableInfo(name, "array", info.declared_type, info.is_input)
    return variables
