"""Canonicalization of incremental updates.

The programs in Appendix B of the paper often spell incremental updates in the
explicit form ``d := d ⊕ e`` (for example ``eq := eq && (w == x)`` in Equal, or
``closest[i] := closest[i] ^ ArgMin(...)`` in KMeans).  By definition
``d ⊕= e`` *is* ``d := d ⊕ e`` (Section 3.1), so before dependence analysis and
translation we rewrite such assignments into the incremental form whenever ⊕
is a registered commutative monoid.  Both operand orders are accepted because
the monoid is commutative (``d := e ⊕ d`` also qualifies).
"""

from __future__ import annotations

from repro.comprehension.monoids import DEFAULT_MONOIDS, MonoidRegistry
from repro.loop_lang import ast


def canonicalize_increments(
    program: ast.Program, monoids: MonoidRegistry | None = None
) -> ast.Program:
    """Rewrite ``d := d ⊕ e`` assignments into ``d ⊕= e`` throughout ``program``."""
    registry = monoids or DEFAULT_MONOIDS
    statements = tuple(_canonicalize_stmt(s, registry) for s in program.statements)
    return ast.Program(statements)


def _canonicalize_stmt(stmt: ast.Stmt, monoids: MonoidRegistry) -> ast.Stmt:
    location = stmt.location
    if isinstance(stmt, ast.Assign):
        rewritten = _try_rewrite_assignment(stmt, monoids)
        return rewritten if rewritten is not None else stmt
    if isinstance(stmt, ast.ForRange):
        return ast.ForRange(
            stmt.variable,
            stmt.lower,
            stmt.upper,
            _canonicalize_stmt(stmt.body, monoids),
            location=location,
        )
    if isinstance(stmt, ast.ForIn):
        return ast.ForIn(
            stmt.variable, stmt.source, _canonicalize_stmt(stmt.body, monoids), location=location
        )
    if isinstance(stmt, ast.While):
        return ast.While(stmt.condition, _canonicalize_stmt(stmt.body, monoids), location=location)
    if isinstance(stmt, ast.If):
        else_branch = None
        if stmt.else_branch is not None:
            else_branch = _canonicalize_stmt(stmt.else_branch, monoids)
        return ast.If(
            stmt.condition,
            _canonicalize_stmt(stmt.then_branch, monoids),
            else_branch,
            location=location,
        )
    if isinstance(stmt, ast.Block):
        return ast.Block(
            tuple(_canonicalize_stmt(s, monoids) for s in stmt.statements), location=location
        )
    return stmt


def _try_rewrite_assignment(stmt: ast.Assign, monoids: MonoidRegistry) -> ast.Stmt | None:
    value = stmt.value
    if not isinstance(value, ast.BinOp):
        return None
    if not monoids.is_commutative(value.op):
        return None
    if value.left == stmt.destination:
        return ast.IncrementalUpdate(
            stmt.destination, value.op, value.right, location=stmt.location
        )
    if value.right == stmt.destination:
        return ast.IncrementalUpdate(
            stmt.destination, value.op, value.left, location=stmt.location
        )
    return None
