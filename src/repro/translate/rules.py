"""The Figure 2 translation rules: semantic functions E, K, D, U and S.

* ``E⟦e⟧``   (:meth:`TranslationRules.expression`) translates an expression of
  type ``t`` into a comprehension term of type ``{t}`` (Equations 11a-11g).
* ``K⟦d⟧``   (:meth:`TranslationRules.destination_key`) derives the destination
  index of an L-value (Equations 12a-12c).
* ``D⟦d⟧(k)`` (:meth:`TranslationRules.destination_value`) reads the current
  value stored at destination index ``k`` (Equations 13a-13c).
* ``U⟦d⟧(x)`` (:meth:`TranslationRules.update`) produces the bulk update that
  replaces destination ``d`` with the key-value pairs ``x`` (Equations
  14a-14c).
* ``S⟦s⟧(q)`` (:meth:`TranslationRules.statement`) translates a statement into
  target code, threading the enclosing for-loops as the qualifier list ``q``
  (Equations 15a-15h).

One deliberate deviation from the printed rules is documented here because it
affects results on sparse data: Equation (15a) reads the *old* value of the
destination by joining on the group-by key (``w ← D⟦d⟧(k)``), which silently
drops increments whose destination entry does not exist yet.  The paper's
examples assume zero-initialized arrays, so this reproduction folds the old
array in with the ⊕-aware merge ``⊳⊕`` (:class:`repro.comprehension.ir.MergeWith`)
instead: entries missing from the old array behave as the identity of ⊕, and
entries not touched by the loop are preserved.  On Spark both formulations are
a single coGroup; the group-by + aggregation structure of the translation is
unchanged.
"""

from __future__ import annotations

from repro.comprehension import ir
from repro.errors import TranslationError
from repro.loop_lang import ast
from repro.translate.target import TargetAssign, TargetStatement, TargetWhile, VariableInfo


class TranslationRules:
    """Implements the semantic functions of Figure 2.

    Args:
        variables: static information about every program variable (used to
            decide scalar vs array update semantics).
        fresh: fresh-name generator shared across one translation run.
    """

    def __init__(self, variables: dict[str, VariableInfo], fresh: ir.NameGenerator | None = None):
        self.variables = variables
        self.fresh = fresh or ir.NameGenerator()

    # ------------------------------------------------------------------
    # E[e] : expression -> comprehension term (Equations 11a-11g)
    # ------------------------------------------------------------------

    def expression(self, expr: ast.Expr) -> ir.Term:
        """``E⟦e⟧``: lift an expression to a term producing a bag."""
        if isinstance(expr, ast.Var):
            return ir.singleton(ir.CVar(expr.name))  # (11a)
        if isinstance(expr, ast.Const):
            return ir.singleton(ir.CConst(expr.value))  # (11g)
        if isinstance(expr, ast.Project):
            value = self.fresh.fresh("v")
            return ir.Comprehension(
                ir.CProject(ir.CVar(value), expr.attribute),
                (ir.Generator(ir.PVar(value), self.expression(expr.base)),),
            )  # (11b)
        if isinstance(expr, ast.Index):
            return self._index_access(expr)  # (11c)
        if isinstance(expr, ast.BinOp):
            left = self.fresh.fresh("v")
            right = self.fresh.fresh("v")
            return ir.Comprehension(
                ir.CBinOp(expr.op, ir.CVar(left), ir.CVar(right)),
                (
                    ir.Generator(ir.PVar(left), self.expression(expr.left)),
                    ir.Generator(ir.PVar(right), self.expression(expr.right)),
                ),
            )  # (11d)
        if isinstance(expr, ast.UnaryOp):
            value = self.fresh.fresh("v")
            return ir.Comprehension(
                ir.CUnaryOp(expr.op, ir.CVar(value)),
                (ir.Generator(ir.PVar(value), self.expression(expr.operand)),),
            )
        if isinstance(expr, ast.TupleExpr):
            return self._tuple_like(expr.elements, lambda parts: ir.CTuple(parts))  # (11e)
        if isinstance(expr, ast.RecordExpr):
            names = [n for n, _ in expr.fields]
            return self._tuple_like(
                tuple(e for _, e in expr.fields),
                lambda parts: ir.CRecord(tuple(zip(names, parts, strict=False))),
            )  # (11f)
        if isinstance(expr, ast.Call):
            return self._tuple_like(
                expr.arguments, lambda parts: ir.CCall(expr.function, parts)
            )
        raise TranslationError(f"cannot translate expression {expr!r}")

    def _tuple_like(self, elements, build) -> ir.Term:
        qualifiers: list[ir.Qualifier] = []
        parts: list[ir.Term] = []
        for element in elements:
            name = self.fresh.fresh("v")
            qualifiers.append(ir.Generator(ir.PVar(name), self.expression(element)))
            parts.append(ir.CVar(name))
        return ir.Comprehension(build(tuple(parts)), tuple(qualifiers))

    def _index_access(self, expr: ast.Index) -> ir.Term:
        """Equation (11c): ``E⟦V[e1, ..., en]⟧``."""
        array = expr.array
        if not isinstance(array, ast.Var):
            raise TranslationError(
                f"array access must index a variable (nested arrays are not supported): {expr}"
            )
        qualifiers: list[ir.Qualifier] = []
        key_names: list[str] = []
        for index in expr.indices:
            key = self.fresh.fresh("k")
            key_names.append(key)
            qualifiers.append(ir.Generator(ir.PVar(key), self.expression(index)))
        index_names = [self.fresh.fresh("i") for _ in expr.indices]
        value = self.fresh.fresh("v")
        qualifiers.append(
            ir.Generator(self._array_pattern(index_names, value), ir.CVar(array.name))
        )
        for index_name, key_name in zip(index_names, key_names, strict=False):
            qualifiers.append(ir.Condition(ir.CBinOp("==", ir.CVar(index_name), ir.CVar(key_name))))
        return ir.Comprehension(ir.CVar(value), tuple(qualifiers))

    @staticmethod
    def _array_pattern(index_names: list[str], value_name: str) -> ir.Pattern:
        """The generator pattern for a sparse array: ``(i, v)`` or ``((i, j), v)``."""
        if len(index_names) == 1:
            key_pattern: ir.Pattern = ir.PVar(index_names[0])
        else:
            key_pattern = ir.PTuple(tuple(ir.PVar(n) for n in index_names))
        return ir.PTuple((key_pattern, ir.PVar(value_name)))

    # ------------------------------------------------------------------
    # K[d] : destination index (Equations 12a-12c)
    # ------------------------------------------------------------------

    def destination_key(self, dest: ast.Expr) -> ir.Term:
        """``K⟦d⟧``: the bag holding the destination index of ``d``."""
        if isinstance(dest, ast.Var):
            return ir.singleton(ir.CTuple(()))  # (12a): the unit key
        if isinstance(dest, ast.Project):
            return self.destination_key(dest.base)  # (12b)
        if isinstance(dest, ast.Index):
            if len(dest.indices) == 1:
                return self.expression(dest.indices[0])  # (12c), single index
            return self.expression(ast.TupleExpr(dest.indices))  # (12c)
        raise TranslationError(f"invalid destination {dest!r}")

    # ------------------------------------------------------------------
    # D[d](k) : current destination value (Equations 13a-13c)
    # ------------------------------------------------------------------

    def destination_value(self, dest: ast.Expr, key: ir.Term) -> ir.Term:
        """``D⟦d⟧(k)``: the bag holding the value stored at index ``k``."""
        if isinstance(dest, ast.Var):
            return ir.singleton(ir.CVar(dest.name))  # (13a)
        if isinstance(dest, ast.Project):
            value = self.fresh.fresh("v")
            return ir.Comprehension(
                ir.CProject(ir.CVar(value), dest.attribute),
                (ir.Generator(ir.PVar(value), self.destination_value(dest.base, key)),),
            )  # (13b)
        if isinstance(dest, ast.Index):
            array = dest.array
            if not isinstance(array, ast.Var):
                raise TranslationError(f"invalid destination {dest!r}")
            index_names = [self.fresh.fresh("i") for _ in dest.indices]
            value = self.fresh.fresh("v")
            index_term: ir.Term
            if len(index_names) == 1:
                index_term = ir.CVar(index_names[0])
            else:
                index_term = ir.CTuple(tuple(ir.CVar(n) for n in index_names))
            return ir.Comprehension(
                ir.CVar(value),
                (
                    ir.Generator(self._array_pattern(index_names, value), ir.CVar(array.name)),
                    ir.Condition(ir.CBinOp("==", index_term, key)),
                ),
            )  # (13c)
        raise TranslationError(f"invalid destination {dest!r}")

    # ------------------------------------------------------------------
    # U[d](x) : bulk update (Equations 14a-14c)
    # ------------------------------------------------------------------

    def update(self, dest: ast.Expr, update_term: ir.Term) -> list[TargetStatement]:
        """``U⟦d⟧(x)``: replace destination ``d`` with the key-value pairs ``x``."""
        if isinstance(dest, ast.Var):
            key = self.fresh.fresh("k")
            value = self.fresh.fresh("v")
            extractor = ir.Comprehension(
                ir.CVar(value),
                (ir.Generator(ir.PTuple((ir.PVar(key), ir.PVar(value))), update_term),),
            )
            return [TargetAssign(dest.name, extractor, scalar=True)]  # (14a)
        if isinstance(dest, ast.Project):
            key = self.fresh.fresh("k")
            value = self.fresh.fresh("v")
            old = self.fresh.fresh("w")
            replaced = ir.Comprehension(
                ir.CTuple(
                    (
                        ir.CVar(key),
                        ir.CCall(
                            "_update_field",
                            (ir.CVar(old), ir.CConst(dest.attribute), ir.CVar(value)),
                        ),
                    )
                ),
                (
                    ir.Generator(ir.PTuple((ir.PVar(key), ir.PVar(value))), update_term),
                    ir.Generator(ir.PVar(old), self.destination_value(dest.base, ir.CVar(key))),
                ),
            )
            return self.update(dest.base, replaced)  # (14b)
        if isinstance(dest, ast.Index):
            array = dest.array
            if not isinstance(array, ast.Var):
                raise TranslationError(f"invalid destination {dest!r}")
            merged = ir.Merge(ir.CVar(array.name), update_term)
            return [TargetAssign(array.name, merged, scalar=False)]  # (14c)
        raise TranslationError(f"invalid destination {dest!r}")

    # ------------------------------------------------------------------
    # S[s](q) : statements (Equations 15a-15h)
    # ------------------------------------------------------------------

    def statement(self, stmt: ast.Stmt, qualifiers: list[ir.Qualifier]) -> list[TargetStatement]:
        """``S⟦s⟧(q)``: translate a statement under the loop qualifiers ``q``."""
        if isinstance(stmt, ast.IncrementalUpdate):
            return self._incremental_update(stmt, qualifiers)  # (15a)
        if isinstance(stmt, ast.Assign):
            return self._assignment(stmt, qualifiers)  # (15b)
        if isinstance(stmt, ast.VarDecl):
            # (15c): declarations translate like assignments to the variable.
            return self._assignment(
                ast.Assign(ast.Var(stmt.name), stmt.init, location=stmt.location), qualifiers
            )
        if isinstance(stmt, ast.ForRange):
            return self._for_range(stmt, qualifiers)  # (15d)
        if isinstance(stmt, ast.ForIn):
            return self._for_in(stmt, qualifiers)  # (15e)
        if isinstance(stmt, ast.While):
            return self._while(stmt, qualifiers)  # (15f)
        if isinstance(stmt, ast.If):
            return self._conditional(stmt, qualifiers)  # (15g)
        if isinstance(stmt, ast.Block):
            statements: list[TargetStatement] = []
            for inner in stmt.statements:
                statements.extend(self.statement(inner, qualifiers))  # (15h)
            return statements
        raise TranslationError(f"cannot translate statement {stmt!r}")

    def _incremental_update(
        self, stmt: ast.IncrementalUpdate, qualifiers: list[ir.Qualifier]
    ) -> list[TargetStatement]:
        """Equation (15a): group by the destination index and ⊕-reduce each group."""
        value = self.fresh.fresh("v")
        key = self.fresh.fresh("k")
        delta_qualifiers = list(qualifiers) + [
            ir.Generator(ir.PVar(value), self.expression(stmt.value)),
            ir.Generator(ir.PVar(key), self.destination_key(stmt.destination)),
            ir.GroupBy(ir.PVar(key), None),
        ]
        delta = ir.Comprehension(
            ir.CTuple((ir.CVar(key), ir.Aggregate(stmt.op, ir.CVar(value)))),
            tuple(delta_qualifiers),
        )
        dest = stmt.destination
        if isinstance(dest, ast.Index):
            array = dest.array
            if not isinstance(array, ast.Var):
                raise TranslationError(f"invalid destination {dest!r}")
            merged = ir.MergeWith(stmt.op, ir.CVar(array.name), delta)
            return [TargetAssign(array.name, merged, scalar=False, origin=stmt)]
        # Scalar (or record-component) destination: combine the aggregated
        # delta with the current value, then store it back through U.
        group_key = self.fresh.fresh("k")
        delta_value = self.fresh.fresh("z")
        old = self.fresh.fresh("w")
        combined = ir.Comprehension(
            ir.CTuple((ir.CVar(group_key), ir.CBinOp(stmt.op, ir.CVar(old), ir.CVar(delta_value)))),
            (
                ir.Generator(ir.PTuple((ir.PVar(group_key), ir.PVar(delta_value))), delta),
                ir.Generator(ir.PVar(old), self.destination_value(dest, ir.CVar(group_key))),
            ),
        )
        targets = self.update(dest, combined)
        return [self._with_origin(t, stmt) for t in targets]

    def _assignment(self, stmt: ast.Assign, qualifiers: list[ir.Qualifier]) -> list[TargetStatement]:
        """Equation (15b)."""
        value = self.fresh.fresh("v")
        key = self.fresh.fresh("k")
        update_term = ir.Comprehension(
            ir.CTuple((ir.CVar(key), ir.CVar(value))),
            tuple(
                list(qualifiers)
                + [
                    ir.Generator(ir.PVar(value), self.expression(stmt.value)),
                    ir.Generator(ir.PVar(key), self.destination_key(stmt.destination)),
                ]
            ),
        )
        targets = self.update(stmt.destination, update_term)
        return [self._with_origin(t, stmt) for t in targets]

    def _for_range(self, stmt: ast.ForRange, qualifiers: list[ir.Qualifier]) -> list[TargetStatement]:
        """Equation (15d): the loop becomes a range generator."""
        lower = self.fresh.fresh("lo")
        upper = self.fresh.fresh("hi")
        extended = list(qualifiers) + [
            ir.Generator(ir.PVar(lower), self.expression(stmt.lower)),
            ir.Generator(ir.PVar(upper), self.expression(stmt.upper)),
            ir.Generator(ir.PVar(stmt.variable), ir.RangeTerm(ir.CVar(lower), ir.CVar(upper))),
        ]
        return self.statement(stmt.body, extended)

    def _for_in(self, stmt: ast.ForIn, qualifiers: list[ir.Qualifier]) -> list[TargetStatement]:
        """Equation (15e): the traversal becomes a generator over the collection."""
        collection = self.fresh.fresh("A")
        index = self.fresh.fresh("i")
        extended = list(qualifiers) + [
            ir.Generator(ir.PVar(collection), self.expression(stmt.source)),
            ir.Generator(
                ir.PTuple((ir.PVar(index), ir.PVar(stmt.variable))), ir.CVar(collection)
            ),
        ]
        return self.statement(stmt.body, extended)

    def _while(self, stmt: ast.While, qualifiers: list[ir.Qualifier]) -> list[TargetStatement]:
        """Equation (15f): while-loops remain sequential."""
        if qualifiers:
            raise TranslationError(
                "while-loops nested inside for-loops cannot be parallelized; "
                "hoist the while-loop or mark the for-loop as sequential"
            )
        body = self.statement(stmt.body, [])
        return [TargetWhile(self.expression(stmt.condition), tuple(body))]

    def _conditional(self, stmt: ast.If, qualifiers: list[ir.Qualifier]) -> list[TargetStatement]:
        """Equation (15g): conditions join the qualifier list of each branch."""
        statements: list[TargetStatement] = []
        predicate = self.fresh.fresh("p")
        then_qualifiers = list(qualifiers) + [
            ir.Generator(ir.PVar(predicate), self.expression(stmt.condition)),
            ir.Condition(ir.CVar(predicate)),
        ]
        statements.extend(self.statement(stmt.then_branch, then_qualifiers))
        if stmt.else_branch is not None:
            negated = self.fresh.fresh("p")
            else_qualifiers = list(qualifiers) + [
                ir.Generator(ir.PVar(negated), self.expression(stmt.condition)),
                ir.Condition(ir.CUnaryOp("!", ir.CVar(negated))),
            ]
            statements.extend(self.statement(stmt.else_branch, else_qualifiers))
        return statements

    @staticmethod
    def _with_origin(target: TargetStatement, stmt: ast.Stmt) -> TargetStatement:
        if isinstance(target, TargetAssign) and target.origin is None:
            return TargetAssign(target.variable, target.term, target.scalar, origin=stmt)
        return target
