"""Translation of loop-based programs to comprehension-based target code.

* :mod:`repro.translate.target` -- the target language (bulk assignments,
  while-loops, code blocks) of Section 3.8.
* :mod:`repro.translate.rules` -- the semantic functions E / K / D / U / S of
  Figure 2.
* :mod:`repro.translate.canonicalize` -- rewrites ``d := d ⊕ e`` into the
  incremental form ``d ⊕= e`` for registered commutative monoids.
* :mod:`repro.translate.translator` -- the DIABLO compiler driver: parse,
  check restrictions, translate, normalize, optimize.
"""

from repro.translate.target import TargetAssign, TargetWhile, TargetProgram, VariableInfo
from repro.translate.rules import TranslationRules
from repro.translate.canonicalize import canonicalize_increments
from repro.translate.translator import DiabloCompiler, TranslationResult

__all__ = [
    "TargetAssign",
    "TargetWhile",
    "TargetProgram",
    "VariableInfo",
    "TranslationRules",
    "canonicalize_increments",
    "DiabloCompiler",
    "TranslationResult",
]
