"""Comparator translators for the Table 1 reproduction.

The paper compares DIABLO's translation time against MOLD (a template-based
rewrite system, OOPSLA 2014) and Casper (a program-synthesis translator,
SIGMOD 2018).  Neither system could be obtained and run (the paper itself
notes MOLD could not be installed and Casper's artifacts could not all be
validated), so this package provides faithful-in-spirit stand-ins that do the
same *kind* of work those systems do -- searching a rewrite/template space or
enumerating and validating candidate summaries -- so that the Table 1
comparison exercises real translators of each architectural style:

* :mod:`repro.comparators.mold` -- backtracking search over rewrite templates;
* :mod:`repro.comparators.casper` -- enumerative synthesis of map/reduce
  summaries validated against the sequential interpreter.

Their absolute times are not meaningful; the reproduced *shape* is that both
are orders of magnitude slower than DIABLO's compositional translation and
fail on the complex programs, which follows from their architecture rather
than from tuning.
"""

from repro.comparators.mold import MoldTranslator, MoldResult
from repro.comparators.casper import CasperTranslator, CasperResult

__all__ = ["MoldTranslator", "MoldResult", "CasperTranslator", "CasperResult"]
