"""A Casper-style synthesis translator (Table 1 comparator).

Casper [Ahmad & Cheung, SIGMOD 2018] translates sequential Java loops to
MapReduce by *synthesizing a program summary*: it enumerates candidate
map/reduce summaries drawn from a grammar, checks each candidate against the
original program (ultimately with a Hoare-logic verifier), and emits the first
candidate that is proven equivalent.  Its translation cost is therefore the
cost of searching the summary space, and it can only translate programs whose
semantics fit the summary grammar -- single-pass aggregations over one
collection.

This module reproduces that architecture:

* a summary grammar of per-element mappers, per-key extractors and commutative
  reducers;
* bounded enumerative search over the grammar;
* candidate validation against the reference sequential interpreter on small
  randomized inputs (standing in for the Dafny/Hoare verification step);
* failure (budget exhaustion) for programs outside the grammar -- nested
  matrix loops, iterative programs, and multi-statement numerical kernels --
  which is exactly where the paper reports Casper failing or timing out.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.comprehension.monoids import MonoidRegistry
from repro.functions import FunctionRegistry
from repro.loop_lang import ast
from repro.loop_lang.interpreter import Interpreter
from repro.loop_lang.parser import parse_program

#: Maximum number of (output, candidate) validations before giving up.
DEFAULT_CANDIDATE_BUDGET = 30_000


@dataclass
class CasperResult:
    """Outcome of a Casper-style synthesis attempt."""

    program: str
    succeeded: bool
    summaries: dict[str, str] = field(default_factory=dict)
    candidates_checked: int = 0
    seconds: float = 0.0
    reason: str = ""


@dataclass
class _Candidate:
    """One summary candidate: a description and an evaluator over the inputs."""

    description: str
    evaluate: Callable[[list[Any], dict[str, Any]], Any]


class CasperTranslator:
    """Enumerative map/reduce summary synthesizer in the style of Casper."""

    def __init__(
        self,
        candidate_budget: int = DEFAULT_CANDIDATE_BUDGET,
        validation_sizes: tuple[int, ...] = (12, 23),
        functions: FunctionRegistry | None = None,
        monoids: MonoidRegistry | None = None,
    ):
        self.candidate_budget = candidate_budget
        self.validation_sizes = validation_sizes
        self.functions = functions
        self.monoids = monoids

    # -- public API -----------------------------------------------------------

    def translate(
        self,
        source: str,
        name: str = "program",
        workload: Callable[[int], dict[str, Any]] | None = None,
    ) -> CasperResult:
        """Attempt to synthesize map/reduce summaries for ``source``.

        ``workload`` builds validation inputs of a requested size; without it
        the translator cannot validate candidates and reports failure after
        enumerating the grammar (mirroring a verifier failure).
        """
        started = time.perf_counter()
        program = parse_program(source)
        outputs = _output_variables(program)
        collection = _main_collection(program)
        checked = 0
        summaries: dict[str, str] = {}
        reason = ""

        in_grammar = (
            collection is not None
            and workload is not None
            and not any(_is_iterative(stmt) for stmt in program.statements)
            and not _uses_multidimensional_arrays(program)
        )

        if not in_grammar:
            # Outside the summary grammar: the synthesizer still burns its
            # search budget before reporting failure.
            checked = self._burn_budget()
            reason = "program summary is outside the map/reduce grammar"
            elapsed = time.perf_counter() - started
            return CasperResult(name, False, {}, checked, elapsed, reason)

        validations = self._validation_runs(program, workload)
        if not validations:
            elapsed = time.perf_counter() - started
            return CasperResult(name, False, {}, checked, elapsed, "could not build validation inputs")

        scalar_parameters = sorted(
            {
                node.name
                for stmt in program.statements
                for expr in ast.statement_expressions(stmt)
                for node in ast.walk_expressions(expr)
                if isinstance(node, ast.Var)
            }
            & set(validations[0][0].keys())
        )
        literals = _numeric_literals(program)

        for output in outputs:
            found = None
            for candidate in self._candidates(
                scalar_parameters, validations[0][0], collection, literals
            ):
                checked += 1
                if checked > self.candidate_budget:
                    reason = "candidate budget exhausted"
                    break
                if self._validate(candidate, output, collection, validations):
                    found = candidate
                    break
            if found is None:
                elapsed = time.perf_counter() - started
                return CasperResult(
                    name,
                    False,
                    summaries,
                    checked,
                    elapsed,
                    reason or f"no summary found for output {output!r}",
                )
            summaries[output] = found.description

        elapsed = time.perf_counter() - started
        return CasperResult(name, True, summaries, checked, elapsed, "")

    # -- candidate enumeration ---------------------------------------------------

    def _candidates(
        self,
        parameters: list[str],
        sample_inputs: dict[str, Any],
        collection: str,
        literals: tuple[float, ...] = (),
    ):
        """Yield summary candidates in increasing structural size."""
        sample = sample_inputs.get(collection) or [0]
        element = sample[0]
        mappers = _element_mappers(element, parameters, literals)
        reducers = _reducers()
        # Scalar summaries: reduce(op, map(f, V), init).
        for (mapper_name, mapper), (reducer_name, zero, reducer) in itertools.product(mappers, reducers):
            description = f"reduce({reducer_name}, map({mapper_name}, {collection}))"

            def evaluate(values: list[Any], params: dict[str, Any], _m=mapper, _r=reducer, _z=zero) -> Any:
                accumulator = _z
                for value in values:
                    accumulator = _r(accumulator, _m(value, params))
                return accumulator

            yield _Candidate(description, evaluate)
        # Per-key summaries: reduceByKey(op, map(v -> (k(v), x(v)), V)).
        keyers = _key_extractors(element)
        for (key_name, keyer), (value_name, valuer), (reducer_name, _zero, reducer) in itertools.product(
            keyers, _value_extractors(element, parameters), reducers
        ):
            description = (
                f"reduceByKey({reducer_name}, map(v => ({key_name}, {value_name}), {collection}))"
            )

            def evaluate_keyed(
                values: list[Any], params: dict[str, Any], _k=keyer, _v=valuer, _r=reducer
            ) -> Any:
                table: dict[Any, Any] = {}
                for value in values:
                    key = _k(value, params)
                    extracted = _v(value, params)
                    if key in table:
                        table[key] = _r(table[key], extracted)
                    else:
                        table[key] = extracted
                return table

            yield _Candidate(description, evaluate_keyed)

    def _burn_budget(self) -> int:
        """Enumerate and test-evaluate the grammar when no summary can exist.

        Casper still pays for every candidate it submits to the verifier; the
        synthetic evaluation over a fixed input models that per-candidate
        cost.
        """
        checked = 0
        synthetic = [float(i % 97) for i in range(200)]
        parameters = {"p1": 10.0, "p2": 20.0, "p3": 30.0}
        mappers = _element_mappers(0.0, ["p1", "p2", "p3"])
        reducers = _reducers()
        while checked < self.candidate_budget:
            for (_mapper_name, mapper), (_reducer_name, zero, reducer) in itertools.product(
                mappers, reducers
            ):
                checked += 1
                if checked >= self.candidate_budget:
                    break
                accumulator = zero
                for value in synthetic:
                    try:
                        accumulator = reducer(accumulator, mapper(value, parameters))
                    except TypeError:
                        break
        return checked

    # -- validation -----------------------------------------------------------------

    def _validation_runs(
        self, program: ast.Program, workload: Callable[[int], dict[str, Any]]
    ) -> list[tuple[dict[str, Any], dict[str, Any]]]:
        """(inputs, reference final state) pairs used to check candidates."""
        interpreter = Interpreter(functions=self.functions, monoids=self.monoids)
        runs = []
        for size in self.validation_sizes:
            try:
                inputs = workload(size)
                reference = interpreter.run(program, inputs)
            except Exception:  # pragma: no cover - defensive: malformed workload
                return []
            runs.append((inputs, reference))
        return runs

    def _validate(
        self,
        candidate: _Candidate,
        output: str,
        collection: str,
        validations: list[tuple[dict[str, Any], dict[str, Any]]],
    ) -> bool:
        for inputs, reference in validations:
            if output not in reference:
                return False
            expected = reference[output]
            values = inputs.get(collection)
            if values is None:
                return False
            try:
                actual = candidate.evaluate(list(values), inputs)
            except Exception:
                return False
            if not _matches(actual, expected):
                return False
        return True


# ---------------------------------------------------------------------------
# Grammar pieces
# ---------------------------------------------------------------------------


def _numeric_literals(program: ast.Program) -> tuple[float, ...]:
    """Distinct numeric literals appearing in the program (candidate thresholds)."""
    literals: list[float] = []
    for stmt in program.statements:
        for node in ast.walk_statements(stmt):
            for expr in ast.statement_expressions(node):
                for sub in ast.walk_expressions(expr):
                    if isinstance(sub, ast.Const) and isinstance(sub.value, (int, float)):
                        if not isinstance(sub.value, bool) and sub.value not in literals:
                            literals.append(sub.value)
    return tuple(literals)


def _element_mappers(sample: Any, parameters: list[str], literals: tuple[float, ...] = ()):
    mappers: list[tuple[str, Callable[[Any, dict[str, Any]], Any]]] = [
        ("v", lambda v, p: v),
        ("1", lambda v, p: 1),
        ("v*v", lambda v, p: v * v if isinstance(v, (int, float)) else None),
    ]
    for literal in literals:
        mappers.append((f"v < {literal}", lambda v, p, _c=literal: _less_than(v, _c)))
        mappers.append(
            (
                f"if (v < {literal}) v else 0",
                lambda v, p, _c=literal: v if _less_than(v, _c) else 0,
            )
        )
        mappers.append(
            (
                f"if (v < {literal}) 1 else 0",
                lambda v, p, _c=literal: 1 if _less_than(v, _c) else 0,
            )
        )
    for parameter in parameters:
        mappers.append((f"v == {parameter}", lambda v, p, _n=parameter: v == p.get(_n)))
        mappers.append((f"v != {parameter}", lambda v, p, _n=parameter: v != p.get(_n)))
        mappers.append(
            (f"v < {parameter}", lambda v, p, _n=parameter: _less_than(v, p.get(_n)))
        )
        mappers.append(
            (
                f"if (v < {parameter}) v else 0",
                lambda v, p, _n=parameter: v if _less_than(v, p.get(_n)) else 0,
            )
        )
    if isinstance(sample, tuple):
        for position in range(len(sample)):
            mappers.append((f"v._{position + 1}", lambda v, p, _i=position: v[_i]))
    if isinstance(sample, dict):
        for key in sample:
            mappers.append((f"v.{key}", lambda v, p, _k=key: v[_k]))
    if isinstance(sample, str) and len(parameters) >= 3:
        keys = parameters[:3]
        mappers.append(
            (
                "v in {key1,key2,key3}",
                lambda v, p, _ks=tuple(keys): any(v == p.get(k) for k in _ks),
            )
        )
    return mappers


def _less_than(value: Any, bound: Any) -> bool:
    try:
        return value < bound
    except TypeError:
        return False


def _reducers():
    return [
        ("+", 0, lambda a, b: a + b),
        ("*", 1, lambda a, b: a * b),
        ("&&", True, lambda a, b: bool(a) and bool(b)),
        ("||", False, lambda a, b: bool(a) or bool(b)),
        ("max", float("-inf"), lambda a, b: max(a, b)),
        ("min", float("inf"), lambda a, b: min(a, b)),
    ]


def _key_extractors(sample: Any):
    extractors = [("v", lambda v, p: v)]
    if isinstance(sample, dict):
        for key in sample:
            extractors.append((f"v.{key}", lambda v, p, _k=key: v[_k]))
    if isinstance(sample, tuple):
        for position in range(len(sample)):
            extractors.append((f"v._{position + 1}", lambda v, p, _i=position: v[_i]))
    return extractors


def _value_extractors(sample: Any, parameters: list[str]):
    extractors = [("1", lambda v, p: 1), ("v", lambda v, p: v)]
    if isinstance(sample, dict):
        for key in sample:
            extractors.append((f"v.{key}", lambda v, p, _k=key: v[_k]))
    if isinstance(sample, tuple):
        for position in range(len(sample)):
            extractors.append((f"v._{position + 1}", lambda v, p, _i=position: v[_i]))
    return extractors


def _matches(actual: Any, expected: Any) -> bool:
    if isinstance(expected, dict):
        if not isinstance(actual, dict) or set(actual) != set(expected):
            return False
        return all(_matches(actual[key], expected[key]) for key in expected)
    actual_is_bool = isinstance(actual, bool)
    expected_is_bool = isinstance(expected, bool)
    if actual_is_bool or expected_is_bool:
        # A boolean summary only matches a boolean result (True is not 837.5).
        return actual_is_bool == expected_is_bool and actual == expected
    if isinstance(expected, (int, float)) and isinstance(actual, (int, float)):
        return abs(actual - expected) <= 1e-9 * max(1.0, abs(expected))
    return actual == expected


# ---------------------------------------------------------------------------
# Program shape analysis
# ---------------------------------------------------------------------------


def _output_variables(program: ast.Program) -> list[str]:
    outputs: list[str] = []
    for stmt in program.statements:
        for node in ast.walk_statements(stmt):
            if isinstance(node, (ast.Assign, ast.IncrementalUpdate)):
                root = ast.destination_root(node.destination)
                if root.name not in outputs:
                    outputs.append(root.name)
            elif isinstance(node, ast.VarDecl) and node.name not in outputs:
                outputs.append(node.name)
    return outputs


def _main_collection(program: ast.Program) -> str | None:
    for stmt in program.statements:
        for node in ast.walk_statements(stmt):
            if isinstance(node, ast.ForIn) and isinstance(node.source, ast.Var):
                return node.source.name
    return None


def _is_iterative(stmt: ast.Stmt) -> bool:
    return any(isinstance(node, ast.While) for node in ast.walk_statements(stmt))


def _uses_multidimensional_arrays(program: ast.Program) -> bool:
    for stmt in program.statements:
        for node in ast.walk_statements(stmt):
            for expr in ast.statement_expressions(node):
                for sub in ast.walk_expressions(expr):
                    if isinstance(sub, ast.Index) and len(sub.indices) > 1:
                        return True
    return False
