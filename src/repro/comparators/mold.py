"""A MOLD-style template-rewrite translator (Table 1 comparator).

MOLD [Radoi et al., OOPSLA 2014] translates imperative loops to MapReduce
operations by searching for *rewrite templates* that match fragments of the
program and replacing them with parallel operators, exploring the space of
rewrite orders with backtracking and ranking candidate results.  Its
translation cost therefore grows with both program size and the size of the
rule base, and it can only translate programs covered by its templates.

This module implements that architecture in miniature:

* a library of rewrite templates (fold, conditional fold, per-key aggregation,
  map over a range, nested-loop join aggregation);
* a backtracking search over which template to apply to which loop, including
  exploration of non-matching candidates (the source of MOLD's cost);
* success when every loop has been rewritten into a parallel operator,
  failure when some loop is not covered by any template (e.g. loops nested
  inside ``while`` iterations that carry state across iterations).

The point of the simulation is architectural: per-program cost is dominated by
template search, so it is orders of magnitude slower than DIABLO's
compositional, search-free translation -- which is the Table 1 observation.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field

from repro.loop_lang import ast
from repro.loop_lang.parser import parse_program

#: Search budget: candidate rewrite sequences explored before giving up.
DEFAULT_SEARCH_BUDGET = 200_000


@dataclass
class Template:
    """One rewrite template: a name, a structural guard and a result operator."""

    name: str
    operator: str
    matches: "callable"


@dataclass
class MoldResult:
    """Outcome of a MOLD-style translation attempt."""

    program: str
    succeeded: bool
    operators: list[str] = field(default_factory=list)
    candidates_explored: int = 0
    seconds: float = 0.0
    reason: str = ""


class MoldTranslator:
    """Template-search translator in the style of MOLD."""

    def __init__(self, search_budget: int = DEFAULT_SEARCH_BUDGET):
        self.search_budget = search_budget
        self.templates = _default_templates()

    # -- public API -----------------------------------------------------------

    def translate(self, source: str, name: str = "program") -> MoldResult:
        """Attempt to translate ``source``; never raises, always returns a result."""
        started = time.perf_counter()
        program = parse_program(source)
        loops = _collect_parallelizable_loops(program)
        explored = 0
        matched_operators: list[str] | None = None
        reason = ""

        if any(_contains_while(stmt) for stmt in program.statements):
            # Loops whose effects feed back through a driver while-loop need
            # templates for the whole iteration structure; MOLD has none, but
            # the search still explores (and rejects) per-loop rewrites before
            # giving up, which is where its time goes.
            _operators, explored, _reason = self._search(loops, always_fail=True)
            reason = "iterative (while-loop) program outside the template library"
        else:
            matched_operators, explored, reason = self._search(loops)

        elapsed = time.perf_counter() - started
        return MoldResult(
            program=name,
            succeeded=matched_operators is not None,
            operators=matched_operators or [],
            candidates_explored=explored,
            seconds=elapsed,
            reason=reason,
        )

    # -- the search -------------------------------------------------------------

    def _search(
        self, loops: list[ast.Stmt], always_fail: bool = False
    ) -> tuple[list[str] | None, int, str]:
        """Backtracking search over template assignments to loops.

        MOLD explores rewrite *sequences* and ranks each candidate rewrite of
        the whole program; the dominant cost is scoring orderings that fail
        late.  The search below enumerates orderings of (loop, template)
        pairs, re-walks the program AST to score every candidate (the stand-in
        for MOLD's cost ranking), and keeps the best covering assignment.
        """
        explored = 0
        per_loop_candidates: list[list[Template]] = []
        for loop in loops:
            candidates = [t for t in self.templates if t.matches(loop)]
            per_loop_candidates.append(candidates)

        # Exhaustive exploration of the candidate space, including orderings,
        # mirrors MOLD's refinement passes; the budget bounds the work.
        assignments: list[str] | None = None
        orderings = itertools.permutations(range(len(loops))) if loops else iter([()])
        for ordering in orderings:
            options = [(per_loop_candidates[i] or [None]) + [None] for i in ordering]
            for choice in itertools.product(*options):
                explored += 1
                if explored > self.search_budget:
                    return None, explored, "search budget exhausted"
                # Rank the candidate rewrite by walking the rewritten program
                # (MOLD scores every candidate output program).
                score = sum(_statement_size(loops[index]) for index in ordering)
                if any(template is None for template in choice):
                    continue
                operators = [template.operator for template in choice if template is not None]
                if not always_fail and len(operators) == len(loops) and score >= 0:
                    assignments = operators
            if assignments is not None:
                break
        if assignments is None:
            if not loops and not always_fail:
                return [], explored, ""
            return None, explored, "no template covers every loop"
        return assignments, explored, ""


# ---------------------------------------------------------------------------
# Templates
# ---------------------------------------------------------------------------


def _default_templates() -> list[Template]:
    return [
        Template("total-fold", "map+reduce", _matches_total_fold),
        Template("conditional-fold", "filter+reduce", _matches_conditional_fold),
        Template("per-key-aggregation", "map+reduceByKey", _matches_per_key_aggregation),
        Template("range-map", "map", _matches_range_map),
        Template("join-aggregation", "join+reduceByKey", _matches_join_aggregation),
    ]


def _statement_size(stmt: ast.Stmt) -> int:
    """Number of AST nodes in a statement (the unit of MOLD's ranking walks)."""
    size = 0
    for node in ast.walk_statements(stmt):
        size += 1
        for expr in ast.statement_expressions(node):
            size += sum(1 for _ in ast.walk_expressions(expr))
    return size


def _collect_parallelizable_loops(program: ast.Program) -> list[ast.Stmt]:
    """The maximal for-loops of the program (the units MOLD rewrites)."""
    loops: list[ast.Stmt] = []

    def visit(stmt: ast.Stmt) -> None:
        if isinstance(stmt, (ast.ForRange, ast.ForIn)):
            loops.append(stmt)
            return
        for child in stmt.substatements():
            visit(child)

    for stmt in program.statements:
        visit(stmt)
    return loops


def _contains_while(stmt: ast.Stmt) -> bool:
    return any(isinstance(node, ast.While) for node in ast.walk_statements(stmt))


def _loop_updates(loop: ast.Stmt) -> list[ast.Stmt]:
    return [
        node
        for node in ast.walk_statements(loop)
        if isinstance(node, (ast.Assign, ast.IncrementalUpdate))
    ]


def _nested_loop_depth(loop: ast.Stmt) -> int:
    depth = 0
    node = loop
    while isinstance(node, (ast.ForRange, ast.ForIn)):
        depth += 1
        body = node.body
        while isinstance(body, ast.Block) and len(body.statements) == 1:
            body = body.statements[0]
        node = body
    return depth


def _matches_total_fold(loop: ast.Stmt) -> bool:
    """``for v in X do s ⊕= e`` with a scalar destination."""
    if not isinstance(loop, ast.ForIn):
        return False
    updates = _loop_updates(loop)
    return bool(updates) and all(
        isinstance(u, ast.IncrementalUpdate) and isinstance(u.destination, ast.Var) for u in updates
    )


def _matches_conditional_fold(loop: ast.Stmt) -> bool:
    """A total fold guarded by an ``if`` condition."""
    if not isinstance(loop, ast.ForIn):
        return False
    has_condition = any(isinstance(node, ast.If) for node in ast.walk_statements(loop))
    return has_condition and _matches_total_fold(loop)


def _matches_per_key_aggregation(loop: ast.Stmt) -> bool:
    """``for v in X do M[k(v)] ⊕= e(v)``: group-by plus aggregation."""
    if not isinstance(loop, ast.ForIn):
        return False
    updates = _loop_updates(loop)
    return bool(updates) and all(
        isinstance(u, ast.IncrementalUpdate) and isinstance(u.destination, ast.Index) for u in updates
    )


def _single_destination(updates: list[ast.Stmt]) -> bool:
    """True when every update targets the same root array.

    Template systems rewrite one output collection at a time; loops that build
    several arrays in the same nest (e.g. the matrix-factorization kernel)
    fall outside the template library.
    """
    roots = {
        ast.destination_root(u.destination).name
        for u in updates
        if isinstance(u, (ast.Assign, ast.IncrementalUpdate))
    }
    return len(roots) == 1


def _matches_range_map(loop: ast.Stmt) -> bool:
    """``for i = lo, hi do A[f(i)] := e(i)``: an index-space map."""
    if not isinstance(loop, ast.ForRange):
        return False
    updates = _loop_updates(loop)
    return bool(updates) and all(
        isinstance(u, ast.Assign) and isinstance(u.destination, ast.Index) for u in updates
    ) and _nested_loop_depth(loop) <= 2 and _single_destination(updates)


def _matches_join_aggregation(loop: ast.Stmt) -> bool:
    """Nested range loops combining two arrays into an aggregation (matmul-like)."""
    if not isinstance(loop, ast.ForRange):
        return False
    if _nested_loop_depth(loop) < 2:
        return False
    updates = _loop_updates(loop)
    if not updates or not _single_destination(updates):
        return False
    arrays_read: set[str] = set()
    for update in updates:
        value = update.value if isinstance(update, (ast.Assign, ast.IncrementalUpdate)) else None
        if value is None:
            continue
        for node in ast.walk_expressions(value):
            if isinstance(node, ast.Index) and isinstance(node.array, ast.Var):
                arrays_read.add(node.array.name)
    return len(arrays_read) >= 1
