"""An RDD-like partitioned dataset with a lazy, operator-fusing core.

:class:`Dataset` mirrors the part of the Spark Core API that the paper's
generated and hand-written programs use.  Data lives in a list of partitions;
*narrow* operations transform each partition independently, *shuffle*
operations redistribute records across partitions by key (and are counted by
the context's :class:`~repro.runtime.metrics.Metrics`).

Narrow operations are **lazy**: ``map``/``flat_map``/``filter``/``map_values``/
``map_partitions``/``sample`` do not run anything -- they append a
:class:`~repro.runtime.stage.NarrowStage` to a pending chain hanging off the
nearest materialized ancestor.  **Wide operations are lazy plan nodes too**:
``reduce_by_key``/``group_by_key``/``aggregate_by_key``/``distinct``/
``co_group``/the joins/``repartition``/``sort_by`` capture the pending narrow
chain of their input as the map side of a
:class:`~repro.runtime.stage.ShuffleStage` and return a pending dataset whose
force runs the whole shuffle -- map side, bucketing, and reduce side -- through
:meth:`DistributedContext.run_tasks`, so every executor (threads, processes
with the pickle fallback) parallelizes the hot wide operators, not just the
narrow chains between them.

Pending chains are *forced* at force points:

* **actions** (``collect``, ``count``, ``reduce``, ``take``, iteration, ...),
* **driver-side inspection** that needs real partitions
  (``zip_with_index``, ``zip_partitions``, ``cartesian``, sampling bounds for
  ``sort_by``), and
* **cache()** / **materialize()**, the explicit materialization points.

At a force point a narrow chain is fused by
:func:`repro.runtime.stage.compose` into a single per-partition task and
executed in one :meth:`DistributedContext.run_tasks` pass; a shuffle node is
executed by :meth:`DistributedContext.run_shuffle`.  Either way the task
descriptors are picklable stage chains the ``"processes"`` executor can ship
to worker processes.

Shuffles move :class:`~repro.runtime.spill.BucketPayload` descriptors, not
record lists: when the context enables ``spill_threshold_bytes`` the map side
spills bucket runs to disk past the budget and the reduce side streams them
back (``sort_by`` external-merges pre-sorted runs), so datasets larger than
the memory budget shuffle correctly -- with identical results, because the
streamed record order equals the in-memory order.

Joins pick a strategy when forced: a **broadcast hash join** when one side has
at most ``context.broadcast_join_threshold`` records (the build side is
collected into a lookup table shipped inside the probe tasks), a **shuffle
join** otherwise.  ``Dataset.explain()`` renders the pending plan.

Partitioner metadata is tracked through pending stages without forcing:
``filter``/``map_values``/``sample`` preserve the partitioner, ``map``/
``flat_map``/``map_partitions`` drop it, and shuffle nodes know their output
partitioner upfront.
"""

from __future__ import annotations

import functools
import itertools
import threading
from collections import Counter
from typing import Any, Callable, Iterable, Iterator, TYPE_CHECKING

from repro.errors import ExecutionError
from repro.runtime import stage as stage_mod
from repro.runtime.partitioner import HashPartitioner, Partitioner, RangePartitioner
from repro.runtime.stage import NarrowStage, ShuffleInput, ShuffleStage

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.context import DistributedContext

#: Default for ``DistributedContext.broadcast_join_threshold``: a join side
#: with at most this many records is broadcast instead of shuffled.  The
#: threshold only affects performance, never results.
DEFAULT_BROADCAST_JOIN_THRESHOLD = 100_000

#: Join strategies accepted by :meth:`Dataset.join`.
JOIN_STRATEGIES = ("auto", "shuffle", "broadcast")

#: Records sampled per output partition when ``sort_by`` derives range bounds.
SORT_SAMPLE_PER_PARTITION = 20


def choose_broadcast_side(left_count: int, right_count: int, threshold: int) -> str:
    """The shared size heuristic for broadcast strategies.

    Returns ``"right"``/``"left"`` for the side worth broadcasting (the
    smaller one, when it fits under ``threshold``) or ``"none"`` when neither
    side does.  Used by ``DistributedContext._try_broadcast_join`` (which then
    applies per-join-type eligibility) and by the comprehension evaluator's
    nested-loop products, so the runtime and the query layer agree on one
    strategy knob.
    """
    if right_count <= left_count and right_count <= threshold:
        return "right"
    if left_count < right_count and left_count <= threshold:
        return "left"
    return "none"


def _vectorization_notes(stages: tuple[Any, ...], columnar: Any) -> tuple[str, ...]:
    """Human-readable per-stage vectorization outcomes for ``explain()``."""
    return tuple(
        f"{kind}: {kernel}" if kernel is not None else f"{kind}: record path ({note})"
        for kind, kernel, note in stage_mod.vectorization_report(stages, columnar)
    )


class Dataset:
    """A partitioned collection of records.

    Datasets are created through a :class:`~repro.runtime.context.DistributedContext`
    (``parallelize``, ``range_dataset``, ``from_dict``) and transformed through
    the methods below.  Key-value datasets are simply datasets of 2-tuples.

    A dataset is either *materialized* (it owns a list of partitions) or
    *pending* (it records a chain of narrow stages over a source dataset; see
    the module docstring).  ``dataset.partitions`` transparently forces a
    pending dataset.
    """

    def __init__(
        self,
        context: "DistributedContext",
        partitions: list[list[Any]],
        partitioner: Partitioner | None = None,
    ):
        self.context = context
        self.partitioner = partitioner
        self.provenance: str | None = None
        self.adaptive_notes: tuple[str, ...] = ()
        self.vectorization_notes: tuple[str, ...] = ()
        self._materialized: list[list[Any]] | None = partitions
        self._source: "Dataset" | None = None
        self._stages: tuple[NarrowStage, ...] = ()
        self._shuffle: ShuffleStage | None = None
        self._force_lock = threading.Lock()
        context.metrics.record_dataset()

    @classmethod
    def _pending(
        cls,
        source: "Dataset",
        stages: tuple[NarrowStage, ...],
        partitioner: Partitioner | None,
    ) -> "Dataset":
        """A lazy dataset: ``stages`` pending over ``source`` (not yet counted
        as created -- it may never materialize)."""
        dataset = cls.__new__(cls)
        dataset.context = source.context
        dataset.partitioner = partitioner
        dataset.provenance = None
        dataset.adaptive_notes = ()
        dataset.vectorization_notes = ()
        dataset._materialized = None
        dataset._source = source
        dataset._stages = stages
        dataset._shuffle = None
        dataset._force_lock = threading.Lock()
        return dataset

    @classmethod
    def _pending_shuffle(cls, context: "DistributedContext", shuffle: ShuffleStage) -> "Dataset":
        """A lazy dataset whose force executes ``shuffle`` via
        :meth:`DistributedContext.run_shuffle`."""
        dataset = cls.__new__(cls)
        dataset.context = context
        dataset.partitioner = shuffle.result_partitioner
        dataset.provenance = None
        dataset.adaptive_notes = ()
        dataset.vectorization_notes = ()
        dataset._materialized = None
        dataset._source = None
        dataset._stages = ()
        dataset._shuffle = shuffle
        dataset._force_lock = threading.Lock()
        return dataset

    # -- laziness ---------------------------------------------------------------

    @property
    def is_materialized(self) -> bool:
        return self._materialized is not None

    @property
    def pending_stages(self) -> tuple[NarrowStage, ...]:
        """The narrow stages waiting to be fused (empty once materialized)."""
        with self._force_lock:
            return self._stages

    @property
    def partitions(self) -> list[list[Any]]:
        """The partition lists, forcing any pending stage chain."""
        if self._materialized is None:
            with self._force_lock:
                if self._materialized is None:
                    self._force()
        return self._materialized

    def _force(self) -> None:
        """Run the pending plan: a shuffle node via ``run_shuffle``, a narrow
        stage chain fused into one ``run_tasks`` pass."""
        if self._shuffle is not None:
            metrics = self.context.metrics
            log_start = len(metrics.adaptive_log)
            new_partitions, partitioner = self.context.run_shuffle(self._shuffle)
            # Adaptive decisions are made at force time; keep the ones this
            # shuffle triggered so ``explain()`` can render what actually ran.
            self.adaptive_notes = tuple(
                f"{entry['kind']}: {entry['reason']}"
                for entry in metrics.adaptive_log[log_start:]
            )
            metrics.record_dataset()
            self.partitioner = partitioner
            self._materialized = new_partitions
            self._shuffle = None
            return
        assert self._source is not None
        source_partitions = self._source.partitions
        stages = self._stages
        task = stage_mod.compose(stages, self.context.columnar)
        metrics = self.context.metrics
        if self.context.columnar:
            metrics.record_vectorization(
                *stage_mod.vectorization_counts(stages, self.context.columnar)
            )
            self.vectorization_notes = _vectorization_notes(stages, self.context.columnar)
        new_partitions = self.context.run_tasks(task, source_partitions, task_spec=stages)
        metrics.record_narrow(
            len(source_partitions), sum(len(partition) for partition in source_partitions)
        )
        metrics.record_fused(len(stages))
        metrics.record_dataset()
        self._materialized = new_partitions
        self._source = None
        self._stages = ()

    def materialize(self) -> "Dataset":
        """Force the pending stage chain (if any) and return self."""
        _ = self.partitions
        return self

    def cache(self) -> "Dataset":
        """Materialization point: force pending stages so later uses reread
        the stored partitions instead of recomputing the chain."""
        return self.materialize()

    persist = cache

    def _with_stage(self, new_stage: NarrowStage, keep_partitioner: bool = False) -> "Dataset":
        partitioner = self.partitioner if keep_partitioner else None
        # Snapshot the plan under the lock: a concurrent force swaps
        # (_materialized, _source, _stages) and must not be seen half-done.
        with self._force_lock:
            if self._materialized is None and self._shuffle is None:
                assert self._source is not None
                return Dataset._pending(self._source, self._stages + (new_stage,), partitioner)
        # Materialized, or a pending shuffle (whose node cannot absorb
        # post-shuffle operators): start a fresh chain over self.
        return Dataset._pending(self, (new_stage,), partitioner)

    def _capture_plan(self) -> tuple["Dataset", tuple[NarrowStage, ...], int]:
        """Claim this dataset's pending narrow chain as a shuffle's map side.

        Returns ``(source, stages, captured_operators)``; for materialized or
        shuffle-pending datasets the dataset itself is the source and the
        chain is empty (a shuffle node forces itself when read).
        """
        with self._force_lock:
            if self._materialized is None and self._shuffle is None:
                assert self._source is not None
                return self._source, self._stages, len(self._stages)
        return self, (), 0

    # -- basic properties -----------------------------------------------------

    @property
    def num_partitions(self) -> int:
        # Narrow stages preserve the partition count and shuffle nodes declare
        # theirs, so most pending datasets can answer without forcing.
        with self._force_lock:
            if self._materialized is not None:
                return len(self._materialized)
            shuffle = self._shuffle
            source = self._source
        if shuffle is not None:
            if shuffle.join_type is None or shuffle.strategy == "shuffle":
                return shuffle.num_output_partitions
            # An auto/broadcast join may resolve to a map-side join whose
            # output keeps the probe side's partition count: force to know.
            return len(self.partitions)
        assert source is not None
        return source.num_partitions

    def collect(self) -> list[Any]:
        """All records as a single list (driver side)."""
        return [record for partition in self.partitions for record in partition]

    def count(self) -> int:
        """Number of records."""
        return sum(len(partition) for partition in self.partitions)

    def is_empty(self) -> bool:
        return all(not partition for partition in self.partitions)

    def first(self) -> Any:
        """The first record; raises if the dataset is empty."""
        taken = self.take(1)
        if not taken:
            raise ExecutionError("first() on an empty dataset")
        return taken[0]

    def take(self, count: int) -> list[Any]:
        """Up to ``count`` records.

        Materialized and narrow-pending datasets are evaluated one partition
        at a time, stopping as soon as ``count`` records are in hand, so
        ``take(1)`` never runs later partitions' stage functions (the dataset
        itself stays pending).  Shuffle-pending datasets force normally -- a
        shuffle needs every input partition anyway."""
        if count <= 0:
            return []
        with self._force_lock:
            materialized = self._materialized
            source = self._source
            stages = self._stages
            shuffle = self._shuffle
        task = None
        if materialized is not None:
            partitions: list[list[Any]] = materialized
        elif source is not None and shuffle is None:
            partitions = source.partitions
            task = stage_mod.compose(stages, self.context.columnar)
        else:
            partitions = self.partitions
        taken: list[Any] = []
        for index, partition in enumerate(partitions):
            if len(taken) >= count:
                break
            if task is not None:
                partition = task(partition, index)
            for record in partition:
                taken.append(record)
                if len(taken) >= count:
                    break
        return taken

    def __iter__(self) -> Iterator[Any]:
        for partition in self.partitions:
            yield from partition

    def __len__(self) -> int:
        return self.count()

    def __repr__(self) -> str:
        with self._force_lock:
            shuffle = self._shuffle
        if shuffle is not None:
            return f"Dataset(pending_shuffle={shuffle.operation}, strategy={shuffle.strategy})"
        pending = self.pending_stages
        if pending:
            return (
                f"Dataset(partitions={self.num_partitions}, "
                f"pending={stage_mod.describe(pending)})"
            )
        return f"Dataset(partitions={self.num_partitions}, records={self.count()})"

    def explain(self) -> str:
        """Render the pending physical plan as an indented tree.

        Shuffle nodes show their operation, strategy, output partition count
        and whether a map-side combiner runs; narrow chains show the fused
        operator pipeline.  A materialized dataset is a plain ``Source`` (the
        plan was consumed when it was forced).
        """
        lines: list[str] = []
        self._explain_into(lines, 0)
        return "\n".join(lines)

    def _explain_into(self, lines: list[str], depth: int) -> None:
        pad = "  " * depth
        with self._force_lock:
            materialized = self._materialized
            shuffle = self._shuffle
            stages = self._stages
            source = self._source
        if materialized is not None:
            suffix = (
                f", partitioner={type(self.partitioner).__name__}" if self.partitioner else ""
            )
            note = f" (shuffle eliminated: {self.provenance})" if self.provenance else ""
            lines.append(f"{pad}Source[{len(materialized)} partitions{suffix}]{note}")
            for adaptive_note in self.adaptive_notes:
                lines.append(f"{pad}  adaptive: {adaptive_note}")
            for vector_note in self.vectorization_notes:
                lines.append(f"{pad}  vectorized: {vector_note}")
            return
        if shuffle is not None:
            combiner = "yes" if any(inp.combiner for inp in shuffle.inputs) else "no"
            lines.append(
                f"{pad}ShuffleStage({shuffle.operation}, strategy={shuffle.strategy}, "
                f"partitions={shuffle.num_output_partitions}, combiner={combiner})"
            )
            for shuffle_input in shuffle.inputs:
                if shuffle_input.stages:
                    lines.append(
                        f"{pad}  NarrowChain({stage_mod.describe(shuffle_input.stages)})"
                    )
                    shuffle_input.source._explain_into(lines, depth + 2)
                else:
                    shuffle_input.source._explain_into(lines, depth + 1)
            return
        note = f" (shuffle eliminated: {self.provenance})" if self.provenance else ""
        lines.append(f"{pad}NarrowChain({stage_mod.describe(stages)}){note}")
        if self.context.columnar:
            for vector_note in _vectorization_notes(stages, self.context.columnar):
                lines.append(f"{pad}  vectorized: {vector_note}")
        source._explain_into(lines, depth + 1)

    # -- narrow transformations --------------------------------------------------

    def map(self, function: Callable[[Any], Any], preserves_partitioning: bool = False) -> "Dataset":
        """Apply ``function`` to every record (lazy).

        Pass ``preserves_partitioning=True`` only when ``function`` keeps
        every key-value record's key unchanged: the result then keeps the
        partitioner metadata, enabling downstream shuffle elimination.
        """
        return self._with_stage(
            NarrowStage(stage_mod.MAP, function), keep_partitioner=preserves_partitioning
        )

    def flat_map(
        self, function: Callable[[Any], Iterable[Any]], preserves_partitioning: bool = False
    ) -> "Dataset":
        """Apply ``function`` and concatenate the resulting iterables (lazy).

        ``preserves_partitioning`` as in :meth:`map`: every emitted record
        must keep the key of the record it came from.
        """
        return self._with_stage(
            NarrowStage(stage_mod.FLAT_MAP, function), keep_partitioner=preserves_partitioning
        )

    flatMap = flat_map

    def filter(self, predicate: Callable[[Any], bool]) -> "Dataset":
        """Keep the records for which ``predicate`` is true (lazy)."""
        return self._with_stage(NarrowStage(stage_mod.FILTER, predicate), keep_partitioner=True)

    def map_values(self, function: Callable[[Any], Any]) -> "Dataset":
        """Apply ``function`` to the value of every key-value record (lazy)."""
        return self._with_stage(NarrowStage(stage_mod.MAP_VALUES, function), keep_partitioner=True)

    mapValues = map_values

    def map_partitions(self, function: Callable[[list[Any]], Iterable[Any]]) -> "Dataset":
        """Apply ``function`` to whole partitions (lazy)."""
        return self._with_stage(NarrowStage(stage_mod.PARTITIONS, function))

    mapPartitions = map_partitions

    def key_by(self, function: Callable[[Any], Any]) -> "Dataset":
        """Turn records into ``(function(record), record)`` pairs."""
        return self.map(lambda record: (function(record), record))

    keyBy = key_by

    def keys(self) -> "Dataset":
        return self.map(lambda pair: pair[0])

    def values(self) -> "Dataset":
        return self.map(lambda pair: pair[1])

    def sample(self, fraction: float, seed: int = 17) -> "Dataset":
        """A deterministic pseudo-random sample of ``fraction`` of the records.

        Each partition samples with its own generator derived from
        ``(seed, partition index)``, so the result is identical under every
        executor mode and partition evaluation order.
        """
        return self._with_stage(
            NarrowStage(
                stage_mod.PARTITIONS_INDEXED,
                functools.partial(stage_mod.sample_partition, fraction, seed),
            ),
            keep_partitioner=True,
        )

    def zip_with_index(self) -> "Dataset":
        """Pair every record with its global index: ``(record, index)``."""
        partitions = self.partitions
        offsets = list(itertools.accumulate([0] + [len(p) for p in partitions[:-1]]))
        new_partitions = [
            [(record, offset + position) for position, record in enumerate(partition)]
            for offset, partition in zip(offsets, partitions, strict=False)
        ]
        self.context.metrics.record_narrow(self.num_partitions, self.count())
        return Dataset(self.context, new_partitions)

    zipWithIndex = zip_with_index

    def zip_partitions(
        self, other: "Dataset", function: Callable[[list[Any], list[Any]], Iterable[Any]]
    ) -> "Dataset":
        """Combine co-partitioned datasets partition by partition (no shuffle)."""
        if self.num_partitions != other.num_partitions:
            raise ExecutionError(
                "zip_partitions requires both datasets to have the same number of partitions"
            )
        new_partitions = [
            list(function(left, right)) for left, right in zip(self.partitions, other.partitions, strict=False)
        ]
        self.context.metrics.record_narrow(self.num_partitions, self.count() + other.count())
        return Dataset(self.context, new_partitions, self.partitioner)

    zipPartitions = zip_partitions

    def union(self, other: "Dataset", num_partitions: int | None = None) -> "Dataset":
        """Concatenate two datasets (no shuffle).

        Like Spark, the result has ``self.num_partitions + other.num_partitions``
        partitions -- repeated unions grow the partition count.  Pass
        ``num_partitions`` to repartition the result back down (this costs a
        round-robin shuffle).
        """
        combined = Dataset(self.context, self.partitions + other.partitions)
        if num_partitions is not None:
            return combined.repartition(num_partitions)
        return combined

    def cartesian(self, other: "Dataset") -> "Dataset":
        """All pairs of records; a shuffle in any distributed implementation."""
        left = self.collect()
        right = other.collect()
        self.context.metrics.record_shuffle("cartesian", len(left) + len(right))
        pairs = [(a, b) for a in left for b in right]
        return self.context.parallelize_raw(pairs)

    # -- actions -------------------------------------------------------------------

    def reduce(self, function: Callable[[Any, Any], Any]) -> Any:
        """Reduce all records with an associative, commutative function."""
        partial_results = [
            _reduce_list(partition, function) for partition in self.partitions if partition
        ]
        if not partial_results:
            raise ExecutionError("reduce() on an empty dataset")
        return _reduce_list(partial_results, function)

    def fold(self, zero: Any, function: Callable[[Any, Any], Any]) -> Any:
        """Like :meth:`reduce` but with an identity value for empty datasets."""
        result = zero
        for partition in self.partitions:
            for record in partition:
                result = function(result, record)
        return result

    def aggregate(
        self, zero: Any, seq_op: Callable[[Any, Any], Any], comb_op: Callable[[Any, Any], Any]
    ) -> Any:
        """Two-level aggregation: ``seq_op`` within partitions, ``comb_op`` across."""
        partials = []
        for partition in self.partitions:
            accumulator = zero
            for record in partition:
                accumulator = seq_op(accumulator, record)
            partials.append(accumulator)
        result = zero
        for partial in partials:
            result = comb_op(result, partial)
        return result

    def sum(self) -> Any:
        return self.fold(0, lambda a, b: a + b)

    def count_by_value(self) -> dict[Any, int]:
        """Count occurrences of each distinct record (a shuffle)."""
        counts = self.map(lambda record: (record, 1)).reduce_by_key(lambda a, b: a + b)
        return dict(counts.collect())

    countByValue = count_by_value

    def count_by_key(self) -> dict[Any, int]:
        counts = self.map(lambda pair: (pair[0], 1)).reduce_by_key(lambda a, b: a + b)
        return dict(counts.collect())

    countByKey = count_by_key

    def collect_as_map(self) -> dict[Any, Any]:
        """Collect a key-value dataset into a dict (later keys win)."""
        return dict(self.collect())

    collectAsMap = collect_as_map

    def to_dict(self) -> dict[Any, Any]:
        return self.collect_as_map()

    # -- shuffle transformations ------------------------------------------------------

    def _narrow_keyed_eligible(self, partitioner: Partitioner | None) -> bool:
        """Whether a keyed wide operator over this dataset needs no shuffle.

        True when the (pending-aware) partitioner metadata proves every key's
        records already live in a single partition and the caller did not
        request a *different* placement.
        """
        return (
            self.context.plan_optimize
            and self.partitioner is not None
            and (partitioner is None or partitioner == self.partitioner)
        )

    def _narrow_keyed_pass(self, operation: str, function: Callable[[list[Any]], list[Any]]) -> "Dataset":
        """Lower a keyed wide operator to a per-partition narrow pass.

        The per-partition ``function`` mirrors the operator's reduce-side
        bucket processor, so the output is record-for-record identical to the
        shuffle it replaces (see :mod:`repro.runtime.stage`).

        The elimination counters are recorded here, at *plan* time (the
        narrow pass itself stays lazy): they count operators planned without
        a shuffle, the mirror image of ``metrics.shuffles`` which counts
        shuffles actually executed.
        """
        reason = f"input already partitioned by {_partitioner_label(self.partitioner)}"
        self.context.metrics.record_shuffle_eliminated(operation, reason)
        result = self._with_stage(
            NarrowStage(stage_mod.PARTITIONS, function), keep_partitioner=True
        )
        result.provenance = f"{operation}: {reason}"
        return result

    def _narrow_zip_eligible(self, other: "Dataset", partitioner: Partitioner | None) -> bool:
        """Whether a two-input wide operator can run as a narrow zip stage."""
        return (
            self.context.plan_optimize
            and self.partitioner is not None
            and self.partitioner == other.partitioner
            and (partitioner is None or partitioner == self.partitioner)
        )

    def _zip_narrow(
        self,
        other: "Dataset",
        operation: str,
        task_function: Callable[[list[Any]], list[Any]],
        is_join: bool = False,
    ) -> "Dataset | None":
        """Run a co-partitioned two-input wide operator as a narrow zip stage.

        Each task receives ``[left partition, right partition]`` -- the exact
        records the shuffle would have routed to that reduce partition, in
        the same order -- and applies the operator's bucket logic.  Returns
        None when the partition counts disagree (metadata was stale; the
        caller falls back to the shuffle path).

        Runs **eagerly** (like ``partition_by``): zipping needs both sides'
        real partitions, so the pass executes at call time rather than
        becoming a pending plan node.  Callers in this stack force joins at
        statement boundaries anyway; the trade is noted here because it
        shifts *when* upstream user-code exceptions surface.
        """
        left_partitions = self.partitions
        right_partitions = other.partitions
        if len(left_partitions) != len(right_partitions):
            return None
        combined = [
            [left, right] for left, right in zip(left_partitions, right_partitions, strict=False)
        ]
        stages = (NarrowStage(stage_mod.PARTITIONS, task_function),)
        new_partitions = self.context.run_tasks(
            stage_mod.compose(stages), combined, task_spec=stages
        )
        metrics = self.context.metrics
        metrics.record_narrow(
            len(combined),
            sum(len(left) + len(right) for left, right in zip(left_partitions, right_partitions, strict=False)),
        )
        reason = f"both sides partitioned by {_partitioner_label(self.partitioner)}"
        metrics.record_shuffle_eliminated(operation, reason, narrow_join=True)
        if is_join:
            metrics.record_join_strategy("narrow")
        result = Dataset(self.context, new_partitions, self.partitioner)
        result.provenance = f"{operation}: {reason}"
        return result

    def _key_shuffle(
        self,
        operation: str,
        partitioner: Partitioner | None,
        combiner: tuple[Any, ...] | None,
        reduce_stages: tuple[NarrowStage, ...],
        extra_map_stages: tuple[NarrowStage, ...] = (),
        result_partitioner: Partitioner | None | str = "chosen",
    ) -> "Dataset":
        """Build the single-input :class:`ShuffleStage` plan node every keyed
        wide operator shares (Section 'shuffles are plan nodes')."""
        chosen = partitioner or self.partitioner or HashPartitioner(self.context.num_partitions)
        source, stages, captured = self._capture_plan()
        # ``extra_map_stages`` re-key the records (distinct keys them by
        # themselves), so the captured partitioner metadata no longer
        # describes the keys being bucketed.
        claimed = None if extra_map_stages else self.partitioner
        shuffle = ShuffleStage(
            operation=operation,
            inputs=(ShuffleInput(source, stages + extra_map_stages, combiner, captured, claimed),),
            num_output_partitions=chosen.num_partitions,
            reduce_stages=reduce_stages,
            partitioner=chosen,
            result_partitioner=chosen if result_partitioner == "chosen" else result_partitioner,
        )
        return Dataset._pending_shuffle(self.context, shuffle)

    def partition_by(self, partitioner: Partitioner) -> "Dataset":
        """Repartition a key-value dataset with an explicit partitioner.

        Runs eagerly (callers use it to co-locate datasets before
        shuffle-free zips); the shuffle itself still dispatches its map side
        through the executor.
        """
        if self.partitioner == partitioner:
            return self
        placed = self._key_shuffle("partitionBy", partitioner, None, reduce_stages=())
        return placed.materialize()

    partitionBy = partition_by

    def repartition(self, num_partitions: int) -> "Dataset":
        """Redistribute records round-robin into ``num_partitions`` partitions
        (lazy; a key-less shuffle through the same plan layer)."""
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        source, stages, captured = self._capture_plan()
        shuffle = ShuffleStage(
            operation="repartition",
            inputs=(ShuffleInput(source, stages, None, captured),),
            num_output_partitions=num_partitions,
            reduce_stages=(),
            partitioner=None,
        )
        return Dataset._pending_shuffle(self.context, shuffle)

    def group_by_key(self, partitioner: Partitioner | None = None) -> "Dataset":
        """Group a key-value dataset into ``(key, [values])``.

        A shuffle -- unless the input already carries the required
        partitioner, in which case each partition groups independently with
        no :class:`ShuffleStage` at all.
        """
        if self._narrow_keyed_eligible(partitioner):
            return self._narrow_keyed_pass("groupByKey", stage_mod.narrow_group_partition)
        return self._key_shuffle(
            "groupByKey",
            partitioner,
            None,
            reduce_stages=(NarrowStage(stage_mod.PARTITIONS, stage_mod.group_bucket),),
        )

    groupByKey = group_by_key

    def group_by(self, key_function: Callable[[Any], Any]) -> "Dataset":
        """Group records by ``key_function`` into ``(key, [records])``."""
        return self.map(lambda record: (key_function(record), record)).group_by_key()

    groupBy = group_by

    def reduce_by_key(
        self, function: Callable[[Any, Any], Any], partitioner: Partitioner | None = None
    ) -> "Dataset":
        """Combine values per key with map-side pre-aggregation, then shuffle.

        This mirrors Spark: the combiner runs inside the map-side shuffle
        tasks (which also report the record counts the metrics need -- no
        extra driver pass over the data), so only one record per
        (partition, key) crosses the shuffle.  On an input that already
        carries the required partitioner the whole operator runs as a
        per-partition narrow pass instead -- no shuffle.
        """
        if self._narrow_keyed_eligible(partitioner):
            return self._narrow_keyed_pass(
                "reduceByKey",
                functools.partial(
                    stage_mod.apply_combiner,
                    ("reduce", function),
                    columnar=self.context.columnar,
                ),
            )
        return self._key_shuffle(
            "reduceByKey",
            partitioner,
            ("reduce", function),
            reduce_stages=(
                NarrowStage(
                    stage_mod.PARTITIONS, functools.partial(stage_mod.reduce_bucket, function)
                ),
            ),
        )

    reduceByKey = reduce_by_key

    def aggregate_by_key(
        self,
        zero: Any,
        seq_op: Callable[[Any, Any], Any],
        comb_op: Callable[[Any, Any], Any],
        partitioner: Partitioner | None = None,
    ) -> "Dataset":
        """Per-key aggregation with a zero element (Spark's aggregateByKey)."""
        if self._narrow_keyed_eligible(partitioner):
            return self._narrow_keyed_pass(
                "aggregateByKey",
                functools.partial(
                    stage_mod.apply_combiner,
                    ("seq", zero, seq_op),
                    columnar=self.context.columnar,
                ),
            )
        return self._key_shuffle(
            "aggregateByKey",
            partitioner,
            ("seq", zero, seq_op),
            reduce_stages=(
                NarrowStage(
                    stage_mod.PARTITIONS, functools.partial(stage_mod.reduce_bucket, comb_op)
                ),
            ),
        )

    aggregateByKey = aggregate_by_key

    def distinct(self) -> "Dataset":
        """Remove duplicate records (a shuffle with a dedup combiner)."""
        return self._key_shuffle(
            "distinct",
            HashPartitioner(self.context.num_partitions),
            ("reduce", stage_mod.keep_first),
            reduce_stages=(
                NarrowStage(
                    stage_mod.PARTITIONS,
                    functools.partial(stage_mod.reduce_bucket, stage_mod.keep_first),
                ),
                NarrowStage(stage_mod.MAP, stage_mod.take_key),
            ),
            extra_map_stages=(NarrowStage(stage_mod.MAP, stage_mod.pair_with_none),),
            result_partitioner=None,
        )

    def sort_by(self, key_function: Callable[[Any], Any], ascending: bool = True) -> "Dataset":
        """Globally sort records via a sampled range-partitioned shuffle.

        Split points come from a stride sample of the (materialized) input;
        each reduce task then sorts one contiguous key range, so nothing is
        collected to the driver and -- for ascending sorts -- the output keeps
        a meaningful :class:`RangePartitioner`.
        """
        partitions = self.partitions  # the sample needs real records
        total = sum(len(partition) for partition in partitions)
        num_output = self.context.num_partitions
        if total == 0:
            return Dataset(self.context, [[] for _ in range(num_output)])
        step = max(1, total // max(1, num_output * SORT_SAMPLE_PER_PARTITION))
        sample = [
            key_function(record)
            for partition in partitions
            for record in partition[::step]
        ]
        if self.context.adaptive:
            # Adaptive bounds: aggregate the sample into a per-key histogram
            # and place split points at frequency-weighted quantiles, so a
            # hot key pulls a whole partition range to itself instead of
            # dragging its neighbours' keys into one overloaded partition.
            histogram = Counter(sample)
            range_partitioner = RangePartitioner.from_histogram(
                num_output, histogram.items()
            )
            self.context.metrics.record_adaptive_decision(
                "sortBy",
                "histogram-range-bounds",
                f"bounds from a {len(histogram)}-key histogram of "
                f"{len(sample)} sampled records",
            )
        else:
            range_partitioner = RangePartitioner.from_sample(num_output, sample)
        # Bound dedup on skewed samples may shrink the effective split count;
        # the shuffle's output width must follow the partitioner.
        num_output = range_partitioner.num_partitions
        # Partitioner metadata promises "records are placed by record[0]", so
        # only sort_by_key (whose sort key IS the pair key) may keep it; an
        # arbitrary key_function would poison downstream keyed shuffles.
        keyed_by_pair = key_function is stage_mod.pair_key
        shuffle = ShuffleStage(
            operation="sortBy",
            inputs=(ShuffleInput(self, (), None, 0),),
            num_output_partitions=num_output,
            reduce_stages=(
                NarrowStage(
                    stage_mod.PARTITIONS,
                    functools.partial(stage_mod.sort_bucket, key_function, ascending),
                ),
            ),
            partitioner=range_partitioner,
            result_partitioner=range_partitioner if (ascending and keyed_by_pair) else None,
            key_function=key_function,
            reverse_output=not ascending,
            # Lets a spill-enabled context write pre-sorted runs on the map
            # side and external-merge them on the reduce side.
            sort_ascending=ascending,
        )
        return Dataset._pending_shuffle(self.context, shuffle)

    sortBy = sort_by

    def sort_by_key(self, ascending: bool = True) -> "Dataset":
        return self.sort_by(stage_mod.pair_key, ascending)

    sortByKey = sort_by_key

    # -- joins ---------------------------------------------------------------------

    def _two_sided_shuffle(
        self,
        other: "Dataset",
        operation: str,
        partitioner: Partitioner | None,
        reduce_stages: tuple[NarrowStage, ...],
        join_type: str | None = None,
        strategy: str = "shuffle",
        result_partitioner: Partitioner | None = None,
    ) -> "Dataset":
        chosen = partitioner or HashPartitioner(self.context.num_partitions)
        left_source, left_stages, left_captured = self._capture_plan()
        right_source, right_stages, right_captured = other._capture_plan()
        shuffle = ShuffleStage(
            operation=operation,
            inputs=(
                ShuffleInput(left_source, left_stages, None, left_captured, self.partitioner),
                ShuffleInput(right_source, right_stages, None, right_captured, other.partitioner),
            ),
            num_output_partitions=chosen.num_partitions,
            reduce_stages=reduce_stages,
            partitioner=chosen,
            result_partitioner=result_partitioner,
            join_type=join_type,
            strategy=strategy,
        )
        return Dataset._pending_shuffle(self.context, shuffle)

    def co_group(self, other: "Dataset", partitioner: Partitioner | None = None) -> "Dataset":
        """Group two key-value datasets by key: ``(key, ([left values], [right values]))``.

        Co-partitioned inputs (equal partitioners) co-group as a narrow zip
        stage with no shuffle.
        """
        if self._narrow_zip_eligible(other, partitioner):
            narrow = self._zip_narrow(other, "coGroup", stage_mod.zip_cogroup_partition)
            if narrow is not None:
                return narrow
        chosen = partitioner or HashPartitioner(self.context.num_partitions)
        return self._two_sided_shuffle(
            other,
            "coGroup",
            chosen,
            reduce_stages=(NarrowStage(stage_mod.PARTITIONS, stage_mod.cogroup_bucket),),
            result_partitioner=chosen,
        )

    coGroup = co_group
    cogroup = co_group

    def _join(
        self,
        other: "Dataset",
        how: str,
        partitioner: Partitioner | None,
        strategy: str | None,
    ) -> "Dataset":
        if strategy is None:
            # An explicit partitioner is a placement request; honor it with a
            # shuffle join.  Otherwise let the planner pick at force time.
            strategy = "shuffle" if partitioner is not None else "auto"
        if strategy not in JOIN_STRATEGIES:
            raise ValueError(f"unknown join strategy {strategy!r}")
        operation = "join" if how == "inner" else f"{how}OuterJoin"
        if strategy != "broadcast" and self._narrow_zip_eligible(other, partitioner):
            narrow = self._zip_narrow(
                other,
                operation,
                functools.partial(stage_mod.zip_join_partition, how),
                is_join=True,
            )
            if narrow is not None:
                return narrow
        return self._two_sided_shuffle(
            other,
            operation,
            partitioner,
            reduce_stages=(
                NarrowStage(stage_mod.PARTITIONS, functools.partial(stage_mod.join_bucket, how)),
            ),
            join_type=how,
            strategy=strategy,
        )

    def join(
        self,
        other: "Dataset",
        partitioner: Partitioner | None = None,
        strategy: str | None = None,
    ) -> "Dataset":
        """Inner equi-join of key-value datasets: ``(key, (left, right))``.

        The strategy is chosen when the plan is forced: a broadcast hash join
        when one side has at most ``context.broadcast_join_threshold``
        records, a shuffle join otherwise.  Pass ``strategy="shuffle"`` or
        ``"broadcast"`` to override.
        """
        return self._join(other, "inner", partitioner, strategy)

    def left_outer_join(
        self,
        other: "Dataset",
        partitioner: Partitioner | None = None,
        strategy: str | None = None,
    ) -> "Dataset":
        """Left outer join: right side is ``None`` when the key is missing.
        Only the right side is eligible for broadcasting."""
        return self._join(other, "left", partitioner, strategy)

    leftOuterJoin = left_outer_join

    def right_outer_join(
        self,
        other: "Dataset",
        partitioner: Partitioner | None = None,
        strategy: str | None = None,
    ) -> "Dataset":
        """Right outer join; only the left side is eligible for broadcasting."""
        return self._join(other, "right", partitioner, strategy)

    rightOuterJoin = right_outer_join

    def full_outer_join(self, other: "Dataset", partitioner: Partitioner | None = None) -> "Dataset":
        """Full outer join (always a shuffle join: neither side can be
        broadcast without losing unmatched build-side keys)."""
        return self._join(other, "full", partitioner, "shuffle")

    fullOuterJoin = full_outer_join

    def broadcast_join(self, other: "Dataset") -> "Dataset":
        """Map-side inner join: ``other`` is collected and broadcast.

        Use when ``other`` is small (e.g. the centroid table in KMeans); no
        shuffle of the left side is needed.  Equivalent to
        ``join(other, strategy="broadcast")``.
        """
        return self._join(other, "inner", None, "broadcast")

    # -- array-merge helpers (Section 3.4) ------------------------------------------

    def merge(self, other: "Dataset") -> "Dataset":
        """The ⊳ operation: union of two key-value datasets, right side wins.

        The per-key selection keeps each record's key, so the coGroup's
        partitioner survives -- chained merges on the same key then co-group
        as narrow zip stages instead of re-shuffling.
        """
        grouped = self.co_group(other)

        def choose(record: Any) -> list[Any]:
            key, (left_values, right_values) = record
            if right_values:
                return [(key, right_values[-1])]
            return [(key, left_values[-1])]

        return grouped.flat_map(choose, preserves_partitioning=True)

    def merge_with(self, other: "Dataset", function: Callable[[Any, Any], Any]) -> "Dataset":
        """The ⊕-aware merge ⊳⊕: combine values present on both sides with ``function``.

        Key-preserving like :meth:`merge`, so the partitioner survives.
        """
        grouped = self.co_group(other)

        def combine(record: Any) -> list[Any]:
            key, (left_values, right_values) = record
            if not right_values:
                return [(key, left_values[-1])]
            merged = right_values[0]
            for value in right_values[1:]:
                merged = function(merged, value)
            if left_values:
                merged = function(left_values[-1], merged)
            return [(key, merged)]

        return grouped.flat_map(combine, preserves_partitioning=True)


def _partitioner_label(partitioner: Partitioner | None) -> str:
    """Human-readable partitioner tag for traces and explain output."""
    if partitioner is None:
        return "None"
    return f"{type(partitioner).__name__}({partitioner.num_partitions})"


def _reduce_list(values: list[Any], function: Callable[[Any, Any], Any]) -> Any:
    iterator = iter(values)
    result = next(iterator)
    for value in iterator:
        result = function(result, value)
    return result
