"""An RDD-like partitioned dataset with a lazy, operator-fusing core.

:class:`Dataset` mirrors the part of the Spark Core API that the paper's
generated and hand-written programs use.  Data lives in a list of partitions;
*narrow* operations transform each partition independently, *shuffle*
operations redistribute records across partitions by key (and are counted by
the context's :class:`~repro.runtime.metrics.Metrics`).

Narrow operations are **lazy**: ``map``/``flat_map``/``filter``/``map_values``/
``map_partitions``/``sample`` do not run anything -- they append a
:class:`~repro.runtime.stage.NarrowStage` to a pending chain hanging off the
nearest materialized ancestor.  The chain is *forced* at force points:

* **actions** (``collect``, ``count``, ``reduce``, ``take``, iteration, ...),
* **shuffles** (``reduce_by_key``, ``group_by_key``, ``co_group``,
  ``repartition``, ``sort_by``, ...), which must see real partitions, and
* **cache()** / **materialize()**, the explicit materialization points.

At a force point the whole pending chain is fused by
:func:`repro.runtime.stage.compose` into a single per-partition task and
executed in one :meth:`DistributedContext.run_tasks` pass -- one fused stage,
one intermediate dataset, regardless of how many operators were chained.  The
fused chain is also the picklable task descriptor that the ``"processes"``
executor ships to worker processes.

Partitioner metadata is tracked through pending stages without forcing:
``filter``/``map_values``/``sample`` preserve the partitioner, ``map``/
``flat_map``/``map_partitions`` drop it, exactly as their eager counterparts
did.
"""

from __future__ import annotations

import functools
import itertools
import threading
from collections import defaultdict
from typing import Any, Callable, Iterable, Iterator, TYPE_CHECKING

from repro.errors import ExecutionError
from repro.runtime import stage as stage_mod
from repro.runtime.partitioner import HashPartitioner, Partitioner
from repro.runtime.stage import NarrowStage

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.context import DistributedContext


class Dataset:
    """A partitioned collection of records.

    Datasets are created through a :class:`~repro.runtime.context.DistributedContext`
    (``parallelize``, ``range_dataset``, ``from_dict``) and transformed through
    the methods below.  Key-value datasets are simply datasets of 2-tuples.

    A dataset is either *materialized* (it owns a list of partitions) or
    *pending* (it records a chain of narrow stages over a source dataset; see
    the module docstring).  ``dataset.partitions`` transparently forces a
    pending dataset.
    """

    def __init__(
        self,
        context: "DistributedContext",
        partitions: list[list[Any]],
        partitioner: Partitioner | None = None,
    ):
        self.context = context
        self.partitioner = partitioner
        self._materialized: list[list[Any]] | None = partitions
        self._source: "Dataset" | None = None
        self._stages: tuple[NarrowStage, ...] = ()
        self._force_lock = threading.Lock()
        context.metrics.record_dataset()

    @classmethod
    def _pending(
        cls,
        source: "Dataset",
        stages: tuple[NarrowStage, ...],
        partitioner: Partitioner | None,
    ) -> "Dataset":
        """A lazy dataset: ``stages`` pending over ``source`` (not yet counted
        as created -- it may never materialize)."""
        dataset = cls.__new__(cls)
        dataset.context = source.context
        dataset.partitioner = partitioner
        dataset._materialized = None
        dataset._source = source
        dataset._stages = stages
        dataset._force_lock = threading.Lock()
        return dataset

    # -- laziness ---------------------------------------------------------------

    @property
    def is_materialized(self) -> bool:
        return self._materialized is not None

    @property
    def pending_stages(self) -> tuple[NarrowStage, ...]:
        """The narrow stages waiting to be fused (empty once materialized)."""
        with self._force_lock:
            return self._stages

    @property
    def partitions(self) -> list[list[Any]]:
        """The partition lists, forcing any pending stage chain."""
        if self._materialized is None:
            with self._force_lock:
                if self._materialized is None:
                    self._force()
        return self._materialized

    def _force(self) -> None:
        """Fuse and run the pending stage chain in one ``run_tasks`` pass."""
        assert self._source is not None
        source_partitions = self._source.partitions
        stages = self._stages
        task = stage_mod.compose(stages)
        new_partitions = self.context.run_tasks(task, source_partitions, task_spec=stages)
        metrics = self.context.metrics
        metrics.record_narrow(
            len(source_partitions), sum(len(partition) for partition in source_partitions)
        )
        metrics.record_fused(len(stages))
        metrics.record_dataset()
        self._materialized = new_partitions
        self._source = None
        self._stages = ()

    def materialize(self) -> "Dataset":
        """Force the pending stage chain (if any) and return self."""
        _ = self.partitions
        return self

    def cache(self) -> "Dataset":
        """Materialization point: force pending stages so later uses reread
        the stored partitions instead of recomputing the chain."""
        return self.materialize()

    persist = cache

    def _with_stage(self, new_stage: NarrowStage, keep_partitioner: bool = False) -> "Dataset":
        partitioner = self.partitioner if keep_partitioner else None
        # Snapshot the plan under the lock: a concurrent force swaps
        # (_materialized, _source, _stages) and must not be seen half-done.
        with self._force_lock:
            if self._materialized is None:
                assert self._source is not None
                return Dataset._pending(self._source, self._stages + (new_stage,), partitioner)
        return Dataset._pending(self, (new_stage,), partitioner)

    # -- basic properties -----------------------------------------------------

    @property
    def num_partitions(self) -> int:
        # Narrow stages preserve the partition count, so a pending dataset can
        # answer without forcing.
        with self._force_lock:
            if self._materialized is not None:
                return len(self._materialized)
            assert self._source is not None
            source = self._source
        return source.num_partitions

    def collect(self) -> list[Any]:
        """All records as a single list (driver side)."""
        return [record for partition in self.partitions for record in partition]

    def count(self) -> int:
        """Number of records."""
        return sum(len(partition) for partition in self.partitions)

    def is_empty(self) -> bool:
        return all(not partition for partition in self.partitions)

    def first(self) -> Any:
        """The first record; raises if the dataset is empty."""
        for partition in self.partitions:
            if partition:
                return partition[0]
        raise ExecutionError("first() on an empty dataset")

    def take(self, count: int) -> list[Any]:
        """Up to ``count`` records."""
        taken: list[Any] = []
        for partition in self.partitions:
            for record in partition:
                if len(taken) >= count:
                    return taken
                taken.append(record)
        return taken

    def __iter__(self) -> Iterator[Any]:
        for partition in self.partitions:
            yield from partition

    def __len__(self) -> int:
        return self.count()

    def __repr__(self) -> str:
        pending = self.pending_stages
        if pending:
            return (
                f"Dataset(partitions={self.num_partitions}, "
                f"pending={stage_mod.describe(pending)})"
            )
        return f"Dataset(partitions={self.num_partitions}, records={self.count()})"

    # -- narrow transformations --------------------------------------------------

    def map(self, function: Callable[[Any], Any]) -> "Dataset":
        """Apply ``function`` to every record (lazy)."""
        return self._with_stage(NarrowStage(stage_mod.MAP, function))

    def flat_map(self, function: Callable[[Any], Iterable[Any]]) -> "Dataset":
        """Apply ``function`` and concatenate the resulting iterables (lazy)."""
        return self._with_stage(NarrowStage(stage_mod.FLAT_MAP, function))

    flatMap = flat_map

    def filter(self, predicate: Callable[[Any], bool]) -> "Dataset":
        """Keep the records for which ``predicate`` is true (lazy)."""
        return self._with_stage(NarrowStage(stage_mod.FILTER, predicate), keep_partitioner=True)

    def map_values(self, function: Callable[[Any], Any]) -> "Dataset":
        """Apply ``function`` to the value of every key-value record (lazy)."""
        return self._with_stage(NarrowStage(stage_mod.MAP_VALUES, function), keep_partitioner=True)

    mapValues = map_values

    def map_partitions(self, function: Callable[[list[Any]], Iterable[Any]]) -> "Dataset":
        """Apply ``function`` to whole partitions (lazy)."""
        return self._with_stage(NarrowStage(stage_mod.PARTITIONS, function))

    mapPartitions = map_partitions

    def key_by(self, function: Callable[[Any], Any]) -> "Dataset":
        """Turn records into ``(function(record), record)`` pairs."""
        return self.map(lambda record: (function(record), record))

    keyBy = key_by

    def keys(self) -> "Dataset":
        return self.map(lambda pair: pair[0])

    def values(self) -> "Dataset":
        return self.map(lambda pair: pair[1])

    def sample(self, fraction: float, seed: int = 17) -> "Dataset":
        """A deterministic pseudo-random sample of ``fraction`` of the records.

        Each partition samples with its own generator derived from
        ``(seed, partition index)``, so the result is identical under every
        executor mode and partition evaluation order.
        """
        return self._with_stage(
            NarrowStage(
                stage_mod.PARTITIONS_INDEXED,
                functools.partial(stage_mod.sample_partition, fraction, seed),
            ),
            keep_partitioner=True,
        )

    def zip_with_index(self) -> "Dataset":
        """Pair every record with its global index: ``(record, index)``."""
        partitions = self.partitions
        offsets = list(itertools.accumulate([0] + [len(p) for p in partitions[:-1]]))
        new_partitions = [
            [(record, offset + position) for position, record in enumerate(partition)]
            for offset, partition in zip(offsets, partitions)
        ]
        self.context.metrics.record_narrow(self.num_partitions, self.count())
        return Dataset(self.context, new_partitions)

    zipWithIndex = zip_with_index

    def zip_partitions(self, other: "Dataset", function: Callable[[list[Any], list[Any]], Iterable[Any]]) -> "Dataset":
        """Combine co-partitioned datasets partition by partition (no shuffle)."""
        if self.num_partitions != other.num_partitions:
            raise ExecutionError(
                "zip_partitions requires both datasets to have the same number of partitions"
            )
        new_partitions = [
            list(function(left, right)) for left, right in zip(self.partitions, other.partitions)
        ]
        self.context.metrics.record_narrow(self.num_partitions, self.count() + other.count())
        return Dataset(self.context, new_partitions, self.partitioner)

    zipPartitions = zip_partitions

    def union(self, other: "Dataset", num_partitions: int | None = None) -> "Dataset":
        """Concatenate two datasets (no shuffle).

        Like Spark, the result has ``self.num_partitions + other.num_partitions``
        partitions -- repeated unions grow the partition count.  Pass
        ``num_partitions`` to repartition the result back down (this costs a
        round-robin shuffle).
        """
        combined = Dataset(self.context, self.partitions + other.partitions)
        if num_partitions is not None:
            return combined.repartition(num_partitions)
        return combined

    def cartesian(self, other: "Dataset") -> "Dataset":
        """All pairs of records; a shuffle in any distributed implementation."""
        left = self.collect()
        right = other.collect()
        self.context.metrics.record_shuffle("cartesian", len(left) + len(right))
        pairs = [(a, b) for a in left for b in right]
        return self.context.parallelize_raw(pairs)

    # -- actions -------------------------------------------------------------------

    def reduce(self, function: Callable[[Any, Any], Any]) -> Any:
        """Reduce all records with an associative, commutative function."""
        partial_results = [
            _reduce_list(partition, function) for partition in self.partitions if partition
        ]
        if not partial_results:
            raise ExecutionError("reduce() on an empty dataset")
        return _reduce_list(partial_results, function)

    def fold(self, zero: Any, function: Callable[[Any, Any], Any]) -> Any:
        """Like :meth:`reduce` but with an identity value for empty datasets."""
        result = zero
        for partition in self.partitions:
            for record in partition:
                result = function(result, record)
        return result

    def aggregate(self, zero: Any, seq_op: Callable[[Any, Any], Any], comb_op: Callable[[Any, Any], Any]) -> Any:
        """Two-level aggregation: ``seq_op`` within partitions, ``comb_op`` across."""
        partials = []
        for partition in self.partitions:
            accumulator = zero
            for record in partition:
                accumulator = seq_op(accumulator, record)
            partials.append(accumulator)
        result = zero
        for partial in partials:
            result = comb_op(result, partial)
        return result

    def sum(self) -> Any:
        return self.fold(0, lambda a, b: a + b)

    def count_by_value(self) -> dict[Any, int]:
        """Count occurrences of each distinct record (a shuffle)."""
        counts = self.map(lambda record: (record, 1)).reduce_by_key(lambda a, b: a + b)
        return dict(counts.collect())

    countByValue = count_by_value

    def count_by_key(self) -> dict[Any, int]:
        counts = self.map(lambda pair: (pair[0], 1)).reduce_by_key(lambda a, b: a + b)
        return dict(counts.collect())

    countByKey = count_by_key

    def collect_as_map(self) -> dict[Any, Any]:
        """Collect a key-value dataset into a dict (later keys win)."""
        return dict(self.collect())

    collectAsMap = collect_as_map

    def to_dict(self) -> dict[Any, Any]:
        return self.collect_as_map()

    # -- shuffle transformations ------------------------------------------------------

    def _shuffle_by_key(
        self, operation: str, partitioner: Partitioner | None = None
    ) -> tuple[list[list[Any]], Partitioner]:
        """Redistribute key-value records by key; returns new raw partitions."""
        chosen = partitioner or self.partitioner or HashPartitioner(self.context.num_partitions)
        buckets: list[list[Any]] = [[] for _ in range(chosen.num_partitions)]
        moved = 0
        for partition in self.partitions:
            for record in partition:
                key = record[0]
                buckets[chosen.partition(key)].append(record)
                moved += 1
        self.context.metrics.record_shuffle(operation, moved)
        return buckets, chosen

    def partition_by(self, partitioner: Partitioner) -> "Dataset":
        """Repartition a key-value dataset with an explicit partitioner."""
        if self.partitioner == partitioner:
            return self
        buckets, chosen = self._shuffle_by_key("partitionBy", partitioner)
        return Dataset(self.context, buckets, chosen)

    partitionBy = partition_by

    def repartition(self, num_partitions: int) -> "Dataset":
        """Redistribute records round-robin into ``num_partitions`` partitions."""
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        records = self.collect()
        self.context.metrics.record_shuffle("repartition", len(records))
        partitions: list[list[Any]] = [[] for _ in range(num_partitions)]
        for index, record in enumerate(records):
            partitions[index % num_partitions].append(record)
        return Dataset(self.context, partitions)

    def group_by_key(self, partitioner: Partitioner | None = None) -> "Dataset":
        """Group a key-value dataset into ``(key, [values])`` (a shuffle)."""
        buckets, chosen = self._shuffle_by_key("groupByKey", partitioner)
        grouped_partitions: list[list[Any]] = []
        for bucket in buckets:
            groups: dict[Any, list[Any]] = defaultdict(list)
            for key, value in bucket:
                groups[key].append(value)
            grouped_partitions.append(list(groups.items()))
        return Dataset(self.context, grouped_partitions, chosen)

    groupByKey = group_by_key

    def group_by(self, key_function: Callable[[Any], Any]) -> "Dataset":
        """Group records by ``key_function`` into ``(key, [records])``."""
        return self.map(lambda record: (key_function(record), record)).group_by_key()

    groupBy = group_by

    def reduce_by_key(
        self, function: Callable[[Any, Any], Any], partitioner: Partitioner | None = None
    ) -> "Dataset":
        """Combine values per key with map-side pre-aggregation, then shuffle.

        This mirrors Spark: each partition first combines its own values per
        key, so only one record per (partition, key) crosses the shuffle.
        """
        combined_partitions: list[list[Any]] = []
        for partition in self.partitions:
            accumulator: dict[Any, Any] = {}
            for key, value in partition:
                if key in accumulator:
                    accumulator[key] = function(accumulator[key], value)
                else:
                    accumulator[key] = value
            combined_partitions.append(list(accumulator.items()))
        self.context.metrics.record_narrow(self.num_partitions, self.count())
        pre_aggregated = Dataset(self.context, combined_partitions)
        buckets, chosen = pre_aggregated._shuffle_by_key("reduceByKey", partitioner)
        final_partitions: list[list[Any]] = []
        for bucket in buckets:
            accumulator = {}
            for key, value in bucket:
                if key in accumulator:
                    accumulator[key] = function(accumulator[key], value)
                else:
                    accumulator[key] = value
            final_partitions.append(list(accumulator.items()))
        return Dataset(self.context, final_partitions, chosen)

    reduceByKey = reduce_by_key

    def aggregate_by_key(
        self,
        zero: Any,
        seq_op: Callable[[Any, Any], Any],
        comb_op: Callable[[Any, Any], Any],
        partitioner: Partitioner | None = None,
    ) -> "Dataset":
        """Per-key aggregation with a zero element (Spark's aggregateByKey)."""
        combined_partitions: list[list[Any]] = []
        for partition in self.partitions:
            accumulator: dict[Any, Any] = {}
            for key, value in partition:
                current = accumulator.get(key, zero)
                accumulator[key] = seq_op(current, value)
            combined_partitions.append(list(accumulator.items()))
        self.context.metrics.record_narrow(self.num_partitions, self.count())
        pre_aggregated = Dataset(self.context, combined_partitions)
        buckets, chosen = pre_aggregated._shuffle_by_key("aggregateByKey", partitioner)
        final_partitions: list[list[Any]] = []
        for bucket in buckets:
            accumulator = {}
            for key, value in bucket:
                if key in accumulator:
                    accumulator[key] = comb_op(accumulator[key], value)
                else:
                    accumulator[key] = value
            final_partitions.append(list(accumulator.items()))
        return Dataset(self.context, final_partitions, chosen)

    aggregateByKey = aggregate_by_key

    def distinct(self) -> "Dataset":
        """Remove duplicate records (a shuffle)."""
        keyed = self.map(lambda record: (record, None))
        return keyed.reduce_by_key(lambda a, _b: a).keys()

    def sort_by(self, key_function: Callable[[Any], Any], ascending: bool = True) -> "Dataset":
        """Globally sort records (a shuffle)."""
        records = sorted(self.collect(), key=key_function, reverse=not ascending)
        self.context.metrics.record_shuffle("sortBy", len(records))
        return self.context.parallelize_raw(records)

    sortBy = sort_by

    def sort_by_key(self, ascending: bool = True) -> "Dataset":
        return self.sort_by(lambda pair: pair[0], ascending)

    sortByKey = sort_by_key

    # -- joins ---------------------------------------------------------------------

    def co_group(self, other: "Dataset", partitioner: Partitioner | None = None) -> "Dataset":
        """Group two key-value datasets by key: ``(key, ([left values], [right values]))``."""
        chosen = partitioner or HashPartitioner(self.context.num_partitions)
        left_buckets, _ = self._shuffle_by_key("coGroup", chosen)
        right_buckets, _ = other._shuffle_by_key("coGroup", chosen)
        result_partitions: list[list[Any]] = []
        for left_bucket, right_bucket in zip(left_buckets, right_buckets):
            left_groups: dict[Any, list[Any]] = defaultdict(list)
            right_groups: dict[Any, list[Any]] = defaultdict(list)
            for key, value in left_bucket:
                left_groups[key].append(value)
            for key, value in right_bucket:
                right_groups[key].append(value)
            merged: list[Any] = []
            for key in left_groups.keys() | right_groups.keys():
                merged.append((key, (left_groups.get(key, []), right_groups.get(key, []))))
            result_partitions.append(merged)
        return Dataset(self.context, result_partitions, chosen)

    coGroup = co_group
    cogroup = co_group

    def join(self, other: "Dataset", partitioner: Partitioner | None = None) -> "Dataset":
        """Inner equi-join of key-value datasets: ``(key, (left, right))``."""
        grouped = self.co_group(other, partitioner)
        return grouped.flat_map(
            lambda record: [
                (record[0], (left, right)) for left in record[1][0] for right in record[1][1]
            ]
        )

    def left_outer_join(self, other: "Dataset", partitioner: Partitioner | None = None) -> "Dataset":
        """Left outer join: right side is ``None`` when the key is missing."""
        grouped = self.co_group(other, partitioner)

        def expand(record: Any) -> list[Any]:
            key, (left_values, right_values) = record
            if not right_values:
                return [(key, (left, None)) for left in left_values]
            return [(key, (left, right)) for left in left_values for right in right_values]

        return grouped.flat_map(expand)

    leftOuterJoin = left_outer_join

    def right_outer_join(self, other: "Dataset", partitioner: Partitioner | None = None) -> "Dataset":
        grouped = self.co_group(other, partitioner)

        def expand(record: Any) -> list[Any]:
            key, (left_values, right_values) = record
            if not left_values:
                return [(key, (None, right)) for right in right_values]
            return [(key, (left, right)) for left in left_values for right in right_values]

        return grouped.flat_map(expand)

    rightOuterJoin = right_outer_join

    def full_outer_join(self, other: "Dataset", partitioner: Partitioner | None = None) -> "Dataset":
        grouped = self.co_group(other, partitioner)

        def expand(record: Any) -> list[Any]:
            key, (left_values, right_values) = record
            if not left_values:
                return [(key, (None, right)) for right in right_values]
            if not right_values:
                return [(key, (left, None)) for left in left_values]
            return [(key, (left, right)) for left in left_values for right in right_values]

        return grouped.flat_map(expand)

    fullOuterJoin = full_outer_join

    def broadcast_join(self, other: "Dataset") -> "Dataset":
        """Map-side join: the other dataset is collected and broadcast.

        Use when ``other`` is small (e.g. the centroid table in KMeans); no
        shuffle of the left side is needed.
        """
        lookup: dict[Any, list[Any]] = defaultdict(list)
        for key, value in other.collect():
            lookup[key].append(value)
        self.context.metrics.record_broadcast()
        return self.flat_map(
            lambda record: [(record[0], (record[1], right)) for right in lookup.get(record[0], [])]
        )

    # -- array-merge helpers (Section 3.4) ------------------------------------------

    def merge(self, other: "Dataset") -> "Dataset":
        """The ⊳ operation: union of two key-value datasets, right side wins."""
        grouped = self.co_group(other)

        def choose(record: Any) -> list[Any]:
            key, (left_values, right_values) = record
            if right_values:
                return [(key, right_values[-1])]
            return [(key, left_values[-1])]

        return grouped.flat_map(choose)

    def merge_with(self, other: "Dataset", function: Callable[[Any, Any], Any]) -> "Dataset":
        """The ⊕-aware merge ⊳⊕: combine values present on both sides with ``function``."""
        grouped = self.co_group(other)

        def combine(record: Any) -> list[Any]:
            key, (left_values, right_values) = record
            if not right_values:
                return [(key, left_values[-1])]
            merged = right_values[0]
            for value in right_values[1:]:
                merged = function(merged, value)
            if left_values:
                merged = function(left_values[-1], merged)
            return [(key, merged)]

        return grouped.flat_map(combine)


def _reduce_list(values: list[Any], function: Callable[[Any, Any], Any]) -> Any:
    iterator = iter(values)
    result = next(iterator)
    for value in iterator:
        result = function(result, value)
    return result
