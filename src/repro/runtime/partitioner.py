"""Partitioners: how keys are mapped to partitions during a shuffle.

Partitioners are shipped inside shuffle task descriptors to worker processes
(see :mod:`repro.runtime.stage`), so :func:`stable_hash` must produce the same
value for the same key in *every* process.  Python's built-in ``hash`` is
randomized per interpreter run for ``str``/``bytes`` (PYTHONHASHSEED); using it
for bucketing would send the same key to different partitions depending on
which worker hashed it, silently corrupting group-bys and joins.
"""

from __future__ import annotations

import bisect
import zlib
from typing import Any, Iterable, Sequence


def stable_hash(key: Any) -> int:
    """A process-stable hash for shuffle bucketing.

    ``str``/``bytes`` (and containers holding them) are hashed with CRC32 so
    every executor process agrees on placement; numeric types keep the
    built-in ``hash`` so keys that compare equal across types (``1 == 1.0``)
    land in the same partition.
    """
    if isinstance(key, str):
        return zlib.crc32(key.encode("utf-8", "surrogatepass"))
    if isinstance(key, bytes):
        return zlib.crc32(key)
    if isinstance(key, tuple):
        # The classic polynomial combiner, over stable element hashes.
        result = 0x345678
        for element in key:
            result = (result * 1000003 ^ stable_hash(element)) & 0xFFFFFFFF
        return result ^ len(key)
    if isinstance(key, frozenset):
        # Order-independent combination, like the built-in frozenset hash.
        result = len(key)
        for element in key:
            result ^= stable_hash(element)
        return result
    if key is None:
        # hash(None) is id-based before Python 3.12, hence process-unstable.
        return 0x9E3779B9
    # ints, floats, bools: numeric hashing is deterministic AND consistent
    # across equal values of different types (hash(1) == hash(1.0)), which a
    # repr-based fallback could not preserve.  CAVEAT: a user type whose
    # custom __hash__ folds in str fields (e.g. a frozen dataclass with a
    # string attribute) inherits the per-process randomization; such keys
    # must be converted to tuples/strings before shuffling by key.
    return hash(key)


class Partitioner:
    """Base class: maps a key to a partition index in ``[0, num_partitions)``."""

    def __init__(self, num_partitions: int):
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        self.num_partitions = num_partitions

    def partition(self, key: Any) -> int:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return (
            type(self) is type(other)
            and self.num_partitions == other.num_partitions  # type: ignore[attr-defined]
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.num_partitions))


class HashPartitioner(Partitioner):
    """Spark's default: ``stable_hash(key) mod num_partitions``.

    Uses :func:`stable_hash` (not the built-in ``hash``) so map-side bucketing
    can run inside worker processes: every process places a given key in the
    same partition regardless of its hash randomization seed.
    """

    def partition(self, key: Any) -> int:
        return stable_hash(key) % self.num_partitions


class RangePartitioner(Partitioner):
    """Partitions ordered keys into contiguous ranges given split points.

    ``bounds`` must be sorted ascending; key ``k`` goes to the first partition
    ``i`` with ``k <= bounds[i]``, or to the last partition.
    """

    def __init__(self, num_partitions: int, bounds: Sequence[Any]):
        super().__init__(num_partitions)
        self.bounds = list(bounds)
        if len(self.bounds) != num_partitions - 1:
            raise ValueError("expected num_partitions - 1 bounds")

    @classmethod
    def from_sample(cls, num_partitions: int, sample: Iterable[Any]) -> "RangePartitioner":
        """Build a partitioner from a sample of keys, using evenly spaced
        quantiles of the sorted sample as split points (Spark's sortByKey
        strategy).  The sample must be non-empty when ``num_partitions > 1``.

        Skewed or low-cardinality samples repeat quantile values; duplicate
        split points would make ``bisect_left`` route *every* record for the
        repeated key range to one hot partition and leave the others empty,
        so duplicates are dropped and the partitioner covers fewer (but
        non-degenerate) ranges.  Callers must use the returned partitioner's
        ``num_partitions``, which may be smaller than requested."""
        ordered = sorted(sample)
        if num_partitions > 1 and not ordered:
            raise ValueError("cannot derive range bounds from an empty sample")
        bounds: list[Any] = []
        for index in range(1, num_partitions):
            bound = ordered[(index * len(ordered)) // num_partitions]
            if not bounds or bound != bounds[-1]:
                bounds.append(bound)
        return cls(len(bounds) + 1, bounds)

    @classmethod
    def from_histogram(
        cls, num_partitions: int, histogram: Iterable[tuple[Any, int]]
    ) -> "RangePartitioner":
        """Build a partitioner from a sampled ``(key, count)`` histogram.

        Split points are placed at even quantiles of the *frequency-weighted*
        key distribution, so a key that appears 1000x as often as another
        pulls 1000x the weight toward its range -- under zipf-skewed data
        this balances per-partition record counts where an unweighted sample
        of distinct keys would pack the hot range into one partition.  Like
        :meth:`from_sample`, duplicate split points are dropped, so the
        returned partitioner may cover fewer ranges than requested."""
        ordered = sorted(histogram)
        if num_partitions > 1 and not ordered:
            raise ValueError("cannot derive range bounds from an empty histogram")
        total = sum(count for _key, count in ordered)
        bounds: list[Any] = []
        cumulative = 0
        next_split = 1
        for key, count in ordered:
            cumulative += count
            while next_split < num_partitions and cumulative * num_partitions >= next_split * total:
                if not bounds or key != bounds[-1]:
                    bounds.append(key)
                next_split += 1
        return cls(len(bounds) + 1, bounds)

    def partition(self, key: Any) -> int:
        index = bisect.bisect_left(self.bounds, key)
        return min(index, self.num_partitions - 1)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RangePartitioner)
            and self.num_partitions == other.num_partitions
            and self.bounds == other.bounds
        )

    def __hash__(self) -> int:
        return hash(("RangePartitioner", self.num_partitions, tuple(self.bounds)))
