"""Partitioners: how keys are mapped to partitions during a shuffle."""

from __future__ import annotations

from typing import Any, Sequence


class Partitioner:
    """Base class: maps a key to a partition index in ``[0, num_partitions)``."""

    def __init__(self, num_partitions: int):
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        self.num_partitions = num_partitions

    def partition(self, key: Any) -> int:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.num_partitions == other.num_partitions  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.num_partitions))


class HashPartitioner(Partitioner):
    """Spark's default: ``hash(key) mod num_partitions``.

    Python's built-in ``hash`` is randomized for strings between interpreter
    runs; that is fine here because partition placement never affects results,
    only which partition processes a record.
    """

    def partition(self, key: Any) -> int:
        return hash(key) % self.num_partitions


class RangePartitioner(Partitioner):
    """Partitions ordered keys into contiguous ranges given split points."""

    def __init__(self, num_partitions: int, bounds: Sequence[Any]):
        super().__init__(num_partitions)
        self.bounds = list(bounds)
        if len(self.bounds) != num_partitions - 1:
            raise ValueError("expected num_partitions - 1 bounds")

    def partition(self, key: Any) -> int:
        for index, bound in enumerate(self.bounds):
            if key <= bound:
                return index
        return self.num_partitions - 1

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RangePartitioner)
            and self.num_partitions == other.num_partitions
            and self.bounds == other.bounds
        )

    def __hash__(self) -> int:
        return hash(("RangePartitioner", self.num_partitions, tuple(self.bounds)))
