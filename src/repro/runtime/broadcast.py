"""Broadcast variables: read-only values shared with every task.

On a cluster a broadcast ships one copy of a value to each executor instead of
once per task; here it is a thin wrapper that exists so hand-written baseline
programs (e.g. KMeans, which broadcasts the centroids) have the same structure
as their Spark originals and so the metrics can count broadcasts.
"""

from __future__ import annotations

from typing import Generic, TypeVar

T = TypeVar("T")


class Broadcast(Generic[T]):
    """A read-only value addressable from any task via ``.value``."""

    def __init__(self, value: T, broadcast_id: int = 0):
        self._value = value
        self.id = broadcast_id

    @property
    def value(self) -> T:
        return self._value

    def unpersist(self) -> None:
        """Release the broadcast (a no-op locally; kept for API parity)."""

    def __repr__(self) -> str:
        return f"Broadcast(id={self.id})"
