"""Out-of-core shuffle spilling: framed-pickle runs, payloads, and the store.

The in-memory shuffle path is bounded by driver/worker RAM: every map task
materializes all of its buckets and the driver concatenates whole bucket
lists before the reduce side runs.  This module provides the spillable
alternative:

* a **map task** accumulates records per bucket in a :class:`BucketWriter`;
  once the estimated buffered bytes exceed ``spill_threshold_bytes`` the
  writer appends each non-empty bucket as one **framed-pickle run** to that
  bucket's per-(task, partition) spill file and empties the buffers.
* the task's output per bucket is a :class:`BucketPayload` -- the run
  descriptors plus whatever remained in memory -- instead of a record list.
  Payloads are tiny picklable tuples, so they cross the process boundary
  while the records stay on disk.
* a **reduce task** receives the list of payloads destined for its partition
  and *streams* the records back with :func:`iter_merged` (runs in write
  order, then the in-memory remainder), which reproduces exactly the record
  order of the in-memory path -- reduce-side merges and group-bys therefore
  yield byte-identical results with and without spilling.
* for ``sort_by``, runs are written **pre-sorted** and
  :func:`merge_sorted_payloads` performs a k-way external merge
  (``heapq.merge`` is stable across its inputs, so ties keep chronological
  order just like a stable in-memory sort).

File framing: a run is a sequence of **chunk frames**, each ``[8-byte
payload length | 4-byte record count | pickle bytes of a record chunk]``
(at most :data:`RUN_CHUNK_RECORDS` records per chunk), so a spill file is
self-describing and a :class:`SpillRun` descriptor (path, offset, length,
records) can seek straight to its first frame.  Readers decode one chunk at
a time (:func:`stream_run`), so a reduce task merging k runs holds k chunks
-- not k whole runs, and never the whole partition -- in memory at once.

Lifecycle is owned by the driver's :class:`ShuffleStore`
(one per :class:`~repro.runtime.context.DistributedContext`): each shuffle
gets its own directory under a lazily-created temp root, removed as soon as
the shuffle's reduce side has consumed the runs (or the shuffle failed), and
the whole root is removed on context shutdown -- with a ``weakref.finalize``
backstop for contexts that are never closed.
"""

from __future__ import annotations

import heapq
import os
import pickle
import shutil
import struct
import sys
import tempfile
import weakref
from typing import Any, Callable, Iterable, Iterator, NamedTuple

#: Chunk frame header: payload byte length + record count.
_FRAME_HEADER = struct.Struct(">QI")

#: Records per chunk frame within a run: the unit of reduce-side streaming
#: (and of memory use while merging -- one chunk per run is live at a time).
RUN_CHUNK_RECORDS = 512


class SpillSpec(NamedTuple):
    """Picklable per-shuffle spill instructions shipped inside map tasks.

    Attributes:
        directory: the shuffle's private spill directory (absolute path on a
            filesystem shared by driver and worker processes).
        threshold_bytes: estimated in-memory bucket bytes a map task may
            buffer before flushing its buckets to runs.
    """

    directory: str
    threshold_bytes: int


class SpillRun(NamedTuple):
    """One framed-pickle run inside a spill file."""

    path: str
    offset: int
    length: int
    records: int


class BucketPayload(NamedTuple):
    """One map task's output for one reduce partition.

    ``runs`` hold the spilled record chunks in write (chronological) order;
    ``records`` is the in-memory remainder, chronologically *after* every
    run.  Streaming runs-then-remainder therefore reproduces the exact
    record order the in-memory path would have produced.
    """

    runs: tuple[SpillRun, ...]
    records: tuple[Any, ...]

    @property
    def record_count(self) -> int:
        return sum(run.records for run in self.runs) + len(self.records)


def approximate_size(record: Any) -> int:
    """Cheap per-record memory estimate driving the spill budget.

    ``sys.getsizeof`` plus one level of tuple contents: fast enough for the
    per-record hot path and deterministic for a given value, so spill
    decisions (and the resulting metrics) are identical across executor
    modes.
    """
    size = sys.getsizeof(record)
    if isinstance(record, tuple):
        for element in record:
            size += sys.getsizeof(element)
    return size


def append_run(path: str, records: list[Any]) -> SpillRun:
    """Append one chunk-framed run to ``path`` and return its descriptor."""
    with open(path, "ab") as handle:
        offset = handle.tell()
        length = 0
        for start in range(0, len(records), RUN_CHUNK_RECORDS):
            chunk = records[start : start + RUN_CHUNK_RECORDS]
            payload = pickle.dumps(chunk, protocol=pickle.HIGHEST_PROTOCOL)
            handle.write(_FRAME_HEADER.pack(len(payload), len(chunk)))
            handle.write(payload)
            length += _FRAME_HEADER.size + len(payload)
    return SpillRun(path, offset, length, len(records))


def stream_run(run: SpillRun) -> Iterator[Any]:
    """Stream one run's records, decoding one chunk frame at a time."""
    consumed = yielded = 0
    with open(run.path, "rb") as handle:
        handle.seek(run.offset)
        while consumed < run.length:
            header = handle.read(_FRAME_HEADER.size)
            length, count = _FRAME_HEADER.unpack(header)
            chunk = pickle.loads(handle.read(length))
            if len(chunk) != count:  # pragma: no cover - corruption guard
                raise OSError(
                    f"corrupt spill chunk {run.path}@{run.offset + consumed}: "
                    f"{len(chunk)} != {count}"
                )
            consumed += _FRAME_HEADER.size + length
            yielded += len(chunk)
            yield from chunk
    if yielded != run.records:  # pragma: no cover - corruption guard
        raise OSError(f"corrupt spill run {run.path}@{run.offset}: {yielded} != {run.records}")


def read_run(run: SpillRun) -> list[Any]:
    """Load one whole run (convenience for tests and small runs)."""
    return list(stream_run(run))


def iter_payload(payload: BucketPayload) -> Iterator[Any]:
    """Stream one payload's records: runs in write order, then the remainder."""
    for run in payload.runs:
        yield from stream_run(run)
    yield from payload.records


def iter_merged(payloads: Iterable[BucketPayload]) -> Iterator[Any]:
    """Stream a reduce partition's records across its payloads, in map-task
    order -- the same order the in-memory transpose produced."""
    for payload in payloads:
        yield from iter_payload(payload)


def merge_sorted_payloads(
    payloads: Iterable[BucketPayload],
    key: Callable[[Any], Any],
    ascending: bool,
) -> Iterator[Any]:
    """External merge of a sort shuffle's payloads.

    Requires each run to have been written sorted with the same
    ``(key, ascending)`` (the map side does this when the shuffle carries a
    sort spec).  Remainders are sorted here.  ``heapq.merge`` resolves ties
    in favour of earlier inputs, and inputs are ordered chronologically, so
    the merged stream equals a stable in-memory sort of the concatenation.
    Runs are streamed chunk-frame by chunk-frame, so the merge holds one
    chunk per run -- not the whole bucket -- in memory.
    """
    streams: list[Iterable[Any]] = []
    for payload in payloads:
        for run in payload.runs:
            streams.append(stream_run(run))
        if payload.records:
            streams.append(sorted(payload.records, key=key, reverse=not ascending))
    return heapq.merge(*streams, key=key, reverse=not ascending)


class BucketWriter:
    """Accumulates one map task's buckets, spilling once over budget.

    Created inside the map task (possibly in a worker process).  ``task_tag``
    makes the task's spill files unique within the shuffle directory
    (``i<input>-m<map partition>``); one file exists per (task, reduce
    partition), and successive flushes append runs to it.
    """

    def __init__(
        self,
        num_buckets: int,
        spill: SpillSpec | None,
        task_tag: str = "m0",
        sort_spec: tuple[Callable[[Any], Any], bool] | None = None,
    ):
        self.spill = spill
        self.task_tag = task_tag
        self.sort_spec = sort_spec
        self.buckets: list[list[Any]] = [[] for _ in range(num_buckets)]
        self._paths: list[str | None] = [None] * num_buckets
        self.runs: list[list[SpillRun]] = [[] for _ in range(num_buckets)]
        self.buffered = 0
        self.peak_memory = 0
        self.spilled_bytes = 0
        self.spill_files = 0

    def add(self, bucket_index: int, record: Any) -> None:
        self.buckets[bucket_index].append(record)
        if self.spill is None:
            return
        self.buffered += approximate_size(record)
        if self.buffered > self.peak_memory:
            self.peak_memory = self.buffered
        if self.buffered > self.spill.threshold_bytes:
            self.flush()

    def flush(self) -> None:
        """Spill every non-empty bucket as one run and empty the buffers."""
        if self.spill is None:  # pragma: no cover - guarded by add()
            return
        for bucket_index, bucket in enumerate(self.buckets):
            if not bucket:
                continue
            if self.sort_spec is not None:
                key, ascending = self.sort_spec
                bucket.sort(key=key, reverse=not ascending)
            path = self._paths[bucket_index]
            if path is None:
                path = os.path.join(
                    self.spill.directory, f"{self.task_tag}-p{bucket_index}.spill"
                )
                self._paths[bucket_index] = path
                self.spill_files += 1
            run = append_run(path, bucket)
            self.runs[bucket_index].append(run)
            self.spilled_bytes += run.length
            self.buckets[bucket_index] = []
        self.buffered = 0

    def finish(self) -> list[BucketPayload]:
        """The per-bucket payloads (in-memory remainders stay unsorted; the
        reduce side merges them)."""
        return [
            BucketPayload(tuple(self.runs[index]), tuple(self.buckets[index]))
            for index in range(len(self.buckets))
        ]


class ShuffleStore:
    """Driver-owned lifecycle manager for shuffle spill directories.

    One store per :class:`~repro.runtime.context.DistributedContext`.  When
    spilling is disabled (``threshold_bytes is None``) the store is inert and
    :meth:`begin_shuffle` returns ``None``.  Otherwise every shuffle gets a
    private directory under a lazily-created temp root; the context removes
    it via :meth:`end_shuffle` as soon as the shuffle's runs have been
    consumed (success *or* failure), and :meth:`close` removes the root.  A
    ``weakref.finalize`` removes the root even if the context is never
    closed, so crashed runs do not leak spill files past interpreter exit.
    """

    def __init__(self, base_dir: str | None = None, threshold_bytes: int | None = None):
        if threshold_bytes is not None and threshold_bytes <= 0:
            raise ValueError("spill_threshold_bytes must be positive (or None to disable)")
        self.threshold_bytes = threshold_bytes
        self.base_dir = os.path.abspath(base_dir) if base_dir else None
        self._root: str | None = None
        self._finalizer: weakref.finalize | None = None
        self._shuffle_counter = 0

    @property
    def enabled(self) -> bool:
        return self.threshold_bytes is not None

    @property
    def root(self) -> str | None:
        """The temp root currently holding spill directories (None until the
        first spilled shuffle, and again after :meth:`close`)."""
        return self._root

    def _ensure_root(self) -> str:
        if self._root is None:
            if self.base_dir is not None:
                os.makedirs(self.base_dir, exist_ok=True)
            self._root = tempfile.mkdtemp(prefix="diablo-shuffle-", dir=self.base_dir)
            self._finalizer = weakref.finalize(
                self, shutil.rmtree, self._root, True
            )
        return self._root

    def begin_shuffle(self) -> SpillSpec | None:
        """Allocate a spill directory for one shuffle (None when disabled)."""
        if self.threshold_bytes is None:
            return None
        self._shuffle_counter += 1
        directory = os.path.join(self._ensure_root(), f"shuffle-{self._shuffle_counter}")
        os.makedirs(directory)
        return SpillSpec(directory, self.threshold_bytes)

    def end_shuffle(self, spec: SpillSpec | None) -> None:
        """Remove one shuffle's spill directory (idempotent, crash-safe)."""
        if spec is not None:
            shutil.rmtree(spec.directory, ignore_errors=True)

    def active_shuffle_dirs(self) -> list[str]:
        """Spill directories not yet cleaned up (diagnostics / tests)."""
        if self._root is None or not os.path.isdir(self._root):
            return []
        return sorted(
            os.path.join(self._root, name) for name in os.listdir(self._root)
        )

    def close(self) -> None:
        """Remove the temp root; the store stays usable (root recreated
        lazily on the next spilled shuffle)."""
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        if self._root is not None:
            shutil.rmtree(self._root, ignore_errors=True)
            self._root = None
