"""Execution metrics for the local DISC runtime.

Wall-clock numbers vary from machine to machine, so the benchmark suite also
asserts on *structural* metrics: how many shuffle stages a query ran, how many
records and (estimated serialized) bytes crossed the simulated network, how
effective map-side combining was, and which join strategy the planner picked.
These are the quantities that determine the relative performance shapes the
paper reports (e.g. the DIABLO KMeans shuffles far more data than the
hand-written broadcast version).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Metrics:
    """Counters accumulated by a :class:`~repro.runtime.context.DistributedContext`."""

    #: Number of shuffle stages executed (groupByKey / reduceByKey / join / ...).
    shuffles: int = 0
    #: Number of records written to the simulated shuffle.
    shuffled_records: int = 0
    #: Estimated serialized bytes written to the simulated shuffle.
    shuffled_bytes: int = 0
    #: Number of narrow (per-partition) tasks executed.
    narrow_tasks: int = 0
    #: Number of datasets materialized.
    datasets_created: int = 0
    #: Number of broadcast variables created.
    broadcasts: int = 0
    #: Records scanned by narrow operations (a proxy for compute volume).
    records_processed: int = 0
    #: Number of fused narrow stages executed (one per forced pipeline, not
    #: one per operator -- a map→filter→map_values chain counts once).
    fused_stages: int = 0
    #: Total narrow operators folded into fused stages.
    fused_operators: int = 0
    #: Times the process executor fell back to the driver (unpicklable task
    #: or a broken worker pool).
    process_fallbacks: int = 0
    #: Tasks actually dispatched to a thread/process pool (0 under the
    #: sequential executor and for driver fallbacks) -- executor-specific by
    #: design, like ``process_fallbacks``.
    parallel_tasks: int = 0
    #: Map-side shuffle tasks executed (one per input partition per shuffle).
    shuffle_map_tasks: int = 0
    #: Reduce-side shuffle tasks executed (one per output bucket per shuffle).
    shuffle_reduce_tasks: int = 0
    #: Records entering map-side combiners (pre-aggregation input).
    combiner_input_records: int = 0
    #: Records leaving map-side combiners (what actually gets shuffled).
    combiner_output_records: int = 0
    #: Bytes written to shuffle spill files (0 unless spilling is enabled
    #: via ``spill_threshold_bytes`` and a shuffle actually exceeded it).
    spilled_bytes: int = 0
    #: Spill files created by shuffle map tasks.
    spill_files: int = 0
    #: Largest estimated in-memory bucket footprint any single map task
    #: reached between flushes -- should hover near the spill threshold when
    #: spilling is active (only tracked while spilling is enabled).
    peak_shuffle_memory: int = 0
    #: Wide operators that executed with *no* ShuffleStage at all because
    #: their input(s) already carried the required partitioner (narrow
    #: reduce/group/aggregate passes and co-partitioned narrow joins).
    shuffles_eliminated: int = 0
    #: Joins / co-groups executed as co-partitioned narrow zip stages
    #: (a subset of ``shuffles_eliminated``).
    narrow_joins: int = 0
    #: Shuffle inputs whose map-side bucketing pass was skipped because the
    #: input was already partitioned by the shuffle's partitioner (the other
    #: side still shuffles; this side moves zero records/bytes).
    prepartitioned_inputs: int = 0
    #: Loop-invariant datasets reused from the while-loop cache instead of
    #: being recomputed (and re-shuffled) by a later iteration.
    loop_invariant_reuses: int = 0
    #: Record-function stages planned to run as columnar batch kernels
    #: (``map``/``flat_map``/``filter``/``map_values`` chains and
    #: vectorizable map-side combiners).  Counted at plan time, so identical
    #: across executor modes; 0 unless the context runs with ``columnar``
    #: truthy (``True`` or ``"auto"``).
    vectorized_stages: int = 0
    #: Record-function stages that stayed on the record path while columnar
    #: execution was on (unrecognized functions, combiners without a kernel,
    #: and -- under ``columnar="auto"`` -- whole chains that were not fully
    #: lowerable).
    columnar_fallbacks: int = 0
    #: Batch runs skipped straight to the record path because an earlier
    #: partition of the same (plan-cached) segment already fell back -- the
    #: memoized-fallback conversion-tax savings.  Runtime counters, so only
    #: driver-side executors (sequential / threads) report them; process and
    #: cluster workers keep theirs worker-side.
    columnar_memoized_skips: int = 0
    #: Batch runs that resumed from a resident ColumnarPartition produced by
    #: the previous force instead of re-running ``from_records``.
    columnar_resident_reuses: int = 0
    #: Map-side shuffle tasks whose bucket assignment ran vectorized over a
    #: resident int key column instead of hashing record-at-a-time.
    columnar_vector_bucket_tasks: int = 0
    #: Loop-body statements whose lowered plan skeleton was served from the
    #: while-loop plan cache (iterations 2+ rebind mutated scans instead of
    #: re-running CSE / annotation / lowering from the IR).
    plan_cache_hits: int = 0
    #: Hot keys salted by the adaptive shuffle path: their per-map-task
    #: partials were spread across reduce partitions and final-folded by the
    #: driver (counted once per salted key per shuffle).
    salted_keys: int = 0
    #: Force-time adaptive execution decisions taken (salting, map-side
    #: grouping, histogram-driven range bounds, broadcast re-decisions).
    adaptive_decisions: int = 0
    #: Cluster-mode task batches that ran in the driver instead of on workers
    #: (no task_spec, or a chain that could not cross the wire).  0 under the
    #: three in-process executors.
    cluster_fallbacks: int = 0
    #: Partitions served from the workers' resident stores instead of being
    #: re-shipped by the driver (cluster-mode push-cache hits).
    resident_partition_reuses: int = 0
    #: Serialized shuffle-payload bytes that passed *through the driver* in
    #: cluster mode.  Zero in a healthy cluster run: reduce inputs move
    #: worker-to-worker, and this counter only grows when a driver fallback
    #: produced or consumed real payloads.
    driver_payload_bytes: int = 0
    #: Shuffle bucket payloads a cluster worker fetched from a peer worker's
    #: serve socket (the worker-to-worker shuffle transfers).
    worker_payload_fetches: int = 0
    #: Serialized frame bytes moved by those worker-to-worker fetches.
    worker_payload_bytes: int = 0
    #: Shuffle bucket payloads a cluster worker read from its own store
    #: (map and reduce for that bucket landed on the same worker).
    worker_payload_local_reads: int = 0
    #: Per-operation shuffle counts (operation name -> count).
    shuffle_operations: dict[str, int] = field(default_factory=dict)
    #: Chosen join strategies ("broadcast" / "shuffle" / "cartesian" -> count).
    join_strategies: dict[str, int] = field(default_factory=dict)
    #: Per-stage detail log: one dict per executed shuffle stage.
    shuffle_stage_log: list[dict] = field(default_factory=list)
    #: One dict per eliminated (or partially eliminated) shuffle:
    #: ``{"operation": ..., "kind": "narrow"|"prepartitioned-input",
    #: "reason": ...}`` -- rendered by ``explain_metrics``.
    elimination_log: list[dict] = field(default_factory=list)
    #: One dict per adaptive decision: ``{"operation": ..., "kind":
    #: "salted-reduce"|"map-side-grouping"|"histogram-range-bounds"|
    #: "broadcast-join", "reason": ...}`` -- rendered by ``explain_metrics``.
    adaptive_log: list[dict] = field(default_factory=list)

    def record_shuffle(self, operation: str, records: int) -> None:
        """Account for one shuffle stage moving ``records`` records."""
        self.shuffles += 1
        self.shuffled_records += records
        self.shuffle_operations[operation] = self.shuffle_operations.get(operation, 0) + 1

    def record_shuffle_stage(
        self,
        operation: str,
        records: int,
        bytes_moved: int,
        map_tasks: int,
        reduce_tasks: int,
    ) -> None:
        """Account for one executed :class:`~repro.runtime.stage.ShuffleStage`."""
        self.record_shuffle(operation, records)
        self.shuffled_bytes += bytes_moved
        self.shuffle_map_tasks += map_tasks
        self.shuffle_reduce_tasks += reduce_tasks
        self.shuffle_stage_log.append(
            {
                "operation": operation,
                "records": records,
                "bytes": bytes_moved,
                "map_tasks": map_tasks,
                "reduce_tasks": reduce_tasks,
            }
        )

    def record_combiner(self, records_in: int, records_out: int) -> None:
        """Account for one map-side combine pass (pre-shuffle aggregation)."""
        self.combiner_input_records += records_in
        self.combiner_output_records += records_out

    @property
    def combiner_hit_rate(self) -> float:
        """Fraction of combiner input records eliminated before the shuffle
        (0.0 when no combiner ran)."""
        if self.combiner_input_records == 0:
            return 0.0
        saved = self.combiner_input_records - self.combiner_output_records
        return saved / self.combiner_input_records

    def record_spill(self, spilled_bytes: int, spill_files: int, peak_memory: int) -> None:
        """Account for one spill-enabled shuffle's out-of-core traffic."""
        self.spilled_bytes += spilled_bytes
        self.spill_files += spill_files
        self.peak_shuffle_memory = max(self.peak_shuffle_memory, peak_memory)

    def record_shuffle_eliminated(self, operation: str, reason: str, narrow_join: bool = False) -> None:
        """Account for one wide operator lowered to a narrow (shuffle-free) pass."""
        self.shuffles_eliminated += 1
        if narrow_join:
            self.narrow_joins += 1
        self.elimination_log.append(
            {"operation": operation, "kind": "narrow", "reason": reason}
        )

    def record_prepartitioned_input(self, operation: str, reason: str) -> None:
        """Account for one shuffle input whose map-side shuffle was skipped."""
        self.prepartitioned_inputs += 1
        self.elimination_log.append(
            {"operation": operation, "kind": "prepartitioned-input", "reason": reason}
        )

    def record_loop_invariant_reuse(self) -> None:
        """Account for one loop-invariant dataset served from the loop cache."""
        self.loop_invariant_reuses += 1

    def record_plan_cache_hit(self) -> None:
        """Account for one statement plan served from the plan-skeleton cache."""
        self.plan_cache_hits += 1

    def record_salted_keys(self, count: int) -> None:
        """Account for ``count`` hot keys salted by one adaptive shuffle."""
        self.salted_keys += count

    def record_adaptive_decision(self, operation: str, kind: str, reason: str) -> None:
        """Account for one force-time adaptive execution decision."""
        self.adaptive_decisions += 1
        self.adaptive_log.append({"operation": operation, "kind": kind, "reason": reason})

    def record_join_strategy(self, strategy: str) -> None:
        """Account for one join planned as ``strategy``."""
        self.join_strategies[strategy] = self.join_strategies.get(strategy, 0) + 1

    def record_narrow(self, tasks: int, records: int) -> None:
        """Account for a narrow stage of ``tasks`` tasks over ``records`` records."""
        self.narrow_tasks += tasks
        self.records_processed += records

    def record_fused(self, operators: int) -> None:
        """Account for one fused narrow stage covering ``operators`` operators."""
        self.fused_stages += 1
        self.fused_operators += operators

    def record_process_fallback(self) -> None:
        self.process_fallbacks += 1

    def record_vectorization(self, vectorized: int, fallbacks: int) -> None:
        """Account for one columnar-enabled plan's stage classification."""
        self.vectorized_stages += vectorized
        self.columnar_fallbacks += fallbacks

    def record_columnar_runtime(self, stats: dict[str, int]) -> None:
        """Merge one batch of :func:`repro.runtime.stage.consume_batch_stats`."""
        self.columnar_memoized_skips += stats.get("memoized_skips", 0)
        self.columnar_resident_reuses += stats.get("resident_reuses", 0)
        self.columnar_vector_bucket_tasks += stats.get("vector_bucket_tasks", 0)

    def record_parallel_tasks(self, tasks: int) -> None:
        """Account for ``tasks`` tasks dispatched to a worker pool."""
        self.parallel_tasks += tasks

    def record_cluster_fallback(self) -> None:
        """Account for one cluster-mode task batch executed in the driver."""
        self.cluster_fallbacks += 1

    def record_resident_reuse(self, partitions: int) -> None:
        """Account for ``partitions`` partitions reused from worker stores."""
        self.resident_partition_reuses += partitions

    def record_driver_payload(self, payload_bytes: int) -> None:
        """Account for shuffle-payload bytes that crossed through the driver."""
        self.driver_payload_bytes += payload_bytes

    def record_worker_payload(self, fetches: int, fetch_bytes: int, local_reads: int) -> None:
        """Merge one worker's payload-transfer counters into the driver view."""
        self.worker_payload_fetches += fetches
        self.worker_payload_bytes += fetch_bytes
        self.worker_payload_local_reads += local_reads

    def record_dataset(self) -> None:
        self.datasets_created += 1

    def record_broadcast(self) -> None:
        self.broadcasts += 1

    def reset(self) -> None:
        """Zero every counter (benchmarks call this between runs)."""
        self.shuffles = 0
        self.shuffled_records = 0
        self.shuffled_bytes = 0
        self.narrow_tasks = 0
        self.datasets_created = 0
        self.broadcasts = 0
        self.records_processed = 0
        self.fused_stages = 0
        self.fused_operators = 0
        self.process_fallbacks = 0
        self.parallel_tasks = 0
        self.shuffle_map_tasks = 0
        self.shuffle_reduce_tasks = 0
        self.combiner_input_records = 0
        self.combiner_output_records = 0
        self.spilled_bytes = 0
        self.spill_files = 0
        self.peak_shuffle_memory = 0
        self.shuffles_eliminated = 0
        self.narrow_joins = 0
        self.prepartitioned_inputs = 0
        self.loop_invariant_reuses = 0
        self.vectorized_stages = 0
        self.columnar_fallbacks = 0
        self.columnar_memoized_skips = 0
        self.columnar_resident_reuses = 0
        self.columnar_vector_bucket_tasks = 0
        self.plan_cache_hits = 0
        self.salted_keys = 0
        self.adaptive_decisions = 0
        self.cluster_fallbacks = 0
        self.resident_partition_reuses = 0
        self.driver_payload_bytes = 0
        self.worker_payload_fetches = 0
        self.worker_payload_bytes = 0
        self.worker_payload_local_reads = 0
        self.shuffle_operations = {}
        self.join_strategies = {}
        self.shuffle_stage_log = []
        self.elimination_log = []
        self.adaptive_log = []

    def snapshot(self) -> dict[str, int]:
        """A plain-dict copy of the counters (handy for reporting).

        ``process_fallbacks`` and ``parallel_tasks`` depend on the executor
        mode; every other counter is a function of the plan and the data.
        """
        return {
            "shuffles": self.shuffles,
            "shuffled_records": self.shuffled_records,
            "shuffled_bytes": self.shuffled_bytes,
            "narrow_tasks": self.narrow_tasks,
            "datasets_created": self.datasets_created,
            "broadcasts": self.broadcasts,
            "records_processed": self.records_processed,
            "fused_stages": self.fused_stages,
            "fused_operators": self.fused_operators,
            "process_fallbacks": self.process_fallbacks,
            "parallel_tasks": self.parallel_tasks,
            "shuffle_map_tasks": self.shuffle_map_tasks,
            "shuffle_reduce_tasks": self.shuffle_reduce_tasks,
            "combiner_input_records": self.combiner_input_records,
            "combiner_output_records": self.combiner_output_records,
            "spilled_bytes": self.spilled_bytes,
            "spill_files": self.spill_files,
            "peak_shuffle_memory": self.peak_shuffle_memory,
            "shuffles_eliminated": self.shuffles_eliminated,
            "narrow_joins": self.narrow_joins,
            "prepartitioned_inputs": self.prepartitioned_inputs,
            "loop_invariant_reuses": self.loop_invariant_reuses,
            "vectorized_stages": self.vectorized_stages,
            "columnar_fallbacks": self.columnar_fallbacks,
            "columnar_memoized_skips": self.columnar_memoized_skips,
            "columnar_resident_reuses": self.columnar_resident_reuses,
            "columnar_vector_bucket_tasks": self.columnar_vector_bucket_tasks,
            "plan_cache_hits": self.plan_cache_hits,
            "salted_keys": self.salted_keys,
            "adaptive_decisions": self.adaptive_decisions,
            "cluster_fallbacks": self.cluster_fallbacks,
            "resident_partition_reuses": self.resident_partition_reuses,
            "driver_payload_bytes": self.driver_payload_bytes,
            "worker_payload_fetches": self.worker_payload_fetches,
            "worker_payload_bytes": self.worker_payload_bytes,
            "worker_payload_local_reads": self.worker_payload_local_reads,
            "broadcast_joins": self.join_strategies.get("broadcast", 0),
            "shuffle_joins": self.join_strategies.get("shuffle", 0),
        }
