"""Execution metrics for the local DISC runtime.

Wall-clock numbers vary from machine to machine, so the benchmark suite also
asserts on *structural* metrics: how many shuffle stages a query ran and how
many records crossed the (simulated) network.  These are the quantities that
determine the relative performance shapes the paper reports (e.g. the DIABLO
KMeans shuffles far more data than the hand-written broadcast version).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Metrics:
    """Counters accumulated by a :class:`~repro.runtime.context.DistributedContext`."""

    #: Number of shuffle stages executed (groupByKey / reduceByKey / join / ...).
    shuffles: int = 0
    #: Number of records written to the simulated shuffle.
    shuffled_records: int = 0
    #: Number of narrow (per-partition) tasks executed.
    narrow_tasks: int = 0
    #: Number of datasets materialized.
    datasets_created: int = 0
    #: Number of broadcast variables created.
    broadcasts: int = 0
    #: Records scanned by narrow operations (a proxy for compute volume).
    records_processed: int = 0
    #: Number of fused narrow stages executed (one per forced pipeline, not
    #: one per operator -- a map→filter→map_values chain counts once).
    fused_stages: int = 0
    #: Total narrow operators folded into fused stages.
    fused_operators: int = 0
    #: Times the process executor fell back to the driver (unpicklable task
    #: or a broken worker pool).
    process_fallbacks: int = 0
    #: Per-operation shuffle counts (operation name -> count).
    shuffle_operations: dict[str, int] = field(default_factory=dict)

    def record_shuffle(self, operation: str, records: int) -> None:
        """Account for one shuffle stage moving ``records`` records."""
        self.shuffles += 1
        self.shuffled_records += records
        self.shuffle_operations[operation] = self.shuffle_operations.get(operation, 0) + 1

    def record_narrow(self, tasks: int, records: int) -> None:
        """Account for a narrow stage of ``tasks`` tasks over ``records`` records."""
        self.narrow_tasks += tasks
        self.records_processed += records

    def record_fused(self, operators: int) -> None:
        """Account for one fused narrow stage covering ``operators`` operators."""
        self.fused_stages += 1
        self.fused_operators += operators

    def record_process_fallback(self) -> None:
        self.process_fallbacks += 1

    def record_dataset(self) -> None:
        self.datasets_created += 1

    def record_broadcast(self) -> None:
        self.broadcasts += 1

    def reset(self) -> None:
        """Zero every counter (benchmarks call this between runs)."""
        self.shuffles = 0
        self.shuffled_records = 0
        self.narrow_tasks = 0
        self.datasets_created = 0
        self.broadcasts = 0
        self.records_processed = 0
        self.fused_stages = 0
        self.fused_operators = 0
        self.process_fallbacks = 0
        self.shuffle_operations = {}

    def snapshot(self) -> dict[str, int]:
        """A plain-dict copy of the counters (handy for reporting)."""
        return {
            "shuffles": self.shuffles,
            "shuffled_records": self.shuffled_records,
            "narrow_tasks": self.narrow_tasks,
            "datasets_created": self.datasets_created,
            "broadcasts": self.broadcasts,
            "records_processed": self.records_processed,
            "fused_stages": self.fused_stages,
            "fused_operators": self.fused_operators,
            "process_fallbacks": self.process_fallbacks,
        }
