"""A local DISC (data-intensive scalable computing) runtime.

This package is the substrate that plays the role of Spark Core in the paper:
a partitioned, RDD-like :class:`~repro.runtime.dataset.Dataset` with the usual
narrow operations (map, flatMap, filter, mapValues, zipPartitions) and shuffle
operations (reduceByKey, groupByKey, aggregateByKey, join, coGroup, distinct,
sortBy), a :class:`~repro.runtime.context.DistributedContext` that creates
datasets and broadcasts, hash partitioners, and per-context metrics that count
shuffles and shuffled records so benchmarks can make machine-independent
assertions about plan *shape*.

The runtime executes locally (optionally with a thread pool per partition) but
preserves the data-movement structure of a cluster: every shuffle operation
redistributes records by key across partitions and is counted as such.
"""

from repro.runtime.context import DistributedContext
from repro.runtime.dataset import Dataset
from repro.runtime.broadcast import Broadcast
from repro.runtime.metrics import Metrics
from repro.runtime.partitioner import HashPartitioner, Partitioner, RangePartitioner

__all__ = [
    "DistributedContext",
    "Dataset",
    "Broadcast",
    "Metrics",
    "HashPartitioner",
    "RangePartitioner",
    "Partitioner",
]
