"""A local DISC (data-intensive scalable computing) runtime.

This package is the substrate that plays the role of Spark Core in the paper:
a partitioned, RDD-like :class:`~repro.runtime.dataset.Dataset` with the usual
narrow operations (map, flatMap, filter, mapValues, zipPartitions) and shuffle
operations (reduceByKey, groupByKey, aggregateByKey, join, coGroup, distinct,
sortBy), a :class:`~repro.runtime.context.DistributedContext` that creates
datasets and broadcasts, hash partitioners, and per-context metrics that count
shuffles and shuffled records so benchmarks can make machine-independent
assertions about plan *shape*.

Narrow operations are **lazy and fusing**: chains of maps/filters accumulate
as pending :mod:`~repro.runtime.stage` descriptors and run as a single
per-partition pass when an action forces them.  Wide operations are lazy
:class:`~repro.runtime.stage.ShuffleStage` plan nodes that capture the map-side
chain, an optional combiner and a partitioner, and execute both their map and
reduce sides through the executor.  The context executes stages
``"sequential"``-ly, with a ``"threads"`` pool, or -- when the stage chain
pickles -- with a ``"processes"`` pool so CPU-bound work uses multiple cores.
Either way the runtime preserves the data-movement structure of a cluster:
every shuffle operation redistributes records by key across partitions and is
counted as such (records, estimated bytes, combiner effectiveness, join
strategy).
"""

from repro.runtime.context import DistributedContext, EXECUTOR_MODES
from repro.runtime.dataset import DEFAULT_BROADCAST_JOIN_THRESHOLD, Dataset
from repro.runtime.broadcast import Broadcast
from repro.runtime.metrics import Metrics
from repro.runtime.partitioner import HashPartitioner, Partitioner, RangePartitioner, stable_hash
from repro.runtime.spill import BucketPayload, ShuffleStore, SpillRun, SpillSpec
from repro.runtime.stage import NarrowStage, ShuffleInput, ShuffleStage

__all__ = [
    "DistributedContext",
    "EXECUTOR_MODES",
    "DEFAULT_BROADCAST_JOIN_THRESHOLD",
    "Dataset",
    "Broadcast",
    "Metrics",
    "NarrowStage",
    "ShuffleInput",
    "ShuffleStage",
    "BucketPayload",
    "ShuffleStore",
    "SpillRun",
    "SpillSpec",
    "HashPartitioner",
    "RangePartitioner",
    "Partitioner",
    "stable_hash",
]
