"""A local DISC (data-intensive scalable computing) runtime.

This package is the substrate that plays the role of Spark Core in the paper:
a partitioned, RDD-like :class:`~repro.runtime.dataset.Dataset` with the usual
narrow operations (map, flatMap, filter, mapValues, zipPartitions) and shuffle
operations (reduceByKey, groupByKey, aggregateByKey, join, coGroup, distinct,
sortBy), a :class:`~repro.runtime.context.DistributedContext` that creates
datasets and broadcasts, hash partitioners, and per-context metrics that count
shuffles and shuffled records so benchmarks can make machine-independent
assertions about plan *shape*.

Narrow operations are **lazy and fusing**: chains of maps/filters accumulate
as pending :mod:`~repro.runtime.stage` descriptors and run as a single
per-partition pass when a shuffle or action forces them.  The context executes
fused stages ``"sequential"``-ly, with a ``"threads"`` pool, or -- when the
stage chain pickles -- with a ``"processes"`` pool so CPU-bound work uses
multiple cores.  Either way the runtime preserves the data-movement structure
of a cluster: every shuffle operation redistributes records by key across
partitions and is counted as such.
"""

from repro.runtime.context import DistributedContext, EXECUTOR_MODES
from repro.runtime.dataset import Dataset
from repro.runtime.broadcast import Broadcast
from repro.runtime.metrics import Metrics
from repro.runtime.partitioner import HashPartitioner, Partitioner, RangePartitioner
from repro.runtime.stage import NarrowStage

__all__ = [
    "DistributedContext",
    "EXECUTOR_MODES",
    "Dataset",
    "Broadcast",
    "Metrics",
    "NarrowStage",
    "HashPartitioner",
    "RangePartitioner",
    "Partitioner",
]
