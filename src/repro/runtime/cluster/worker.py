"""The ``repro-worker`` daemon: one long-lived cluster worker process.

A worker makes two kinds of connections:

* **one outbound control connection to the driver** -- it registers, then
  serves driver requests in lockstep (one request, one response):
  ``run_tasks`` / ``shuffle_write`` execute fused stage chains over the
  partitions named in the request, ``store_free`` drops resident state,
  ``heartbeat`` answers liveness probes, ``shutdown`` exits;
* **one listening *serve* socket for peers** -- other workers (or, in a
  fallback, the driver) fetch captured shuffle payloads from it by key.
  Peer fetches run on their own threads, so a worker busy reducing can
  still feed the bucket data it mapped earlier to the rest of the cluster.

Start one manually with ``repro-worker HOST:PORT`` (or
``DIABLO_CLUSTER_ADDRESS=HOST:PORT repro-worker``), pointing at the address
the driver's :class:`~repro.runtime.cluster.context.ClusterContext` is
listening on.  The worker retries the initial connection for a few seconds,
so workers may be launched before the driver binds.
"""

from __future__ import annotations

import argparse
import logging
import os
import socket
import sys
import threading
import time
import traceback
from typing import Any

from repro.errors import ExecutionError
from repro.runtime import stage as stage_mod
from repro.runtime.cluster import protocol, wire
from repro.runtime.cluster.store import WorkerStore, set_active_store
from repro.runtime.spill import iter_payload

logger = logging.getLogger("repro.worker")

#: How long the initial driver connection is retried (the two-terminal flow:
#: workers may start before the driver binds its address).
CONNECT_RETRY_SECONDS = 15.0


def _resolve_partition(store: WorkerStore, index: int, spec: tuple) -> list[Any]:
    """Materialize one task partition from its wire spec."""
    kind = spec[0]
    if kind == "records":
        return spec[1]
    if kind == "stored":
        return store.get_partition(spec[1], index)
    if kind == "payloads":
        return spec[1]
    raise ExecutionError(f"unknown partition spec kind {kind!r}")


def _execute_batch(store: WorkerStore, request: dict[str, Any], capture: bool) -> dict[str, Any]:
    """Run one ``run_tasks`` / ``shuffle_write`` request; the response payload."""
    task_spec = request["task_spec"]
    columnar = request["columnar"]
    store_as = request.get("store_as")
    capture_id = request.get("capture_id")
    task = stage_mod.compose(task_spec, columnar)
    results: list[tuple[int, Any]] = []
    for index, spec in request["partitions"]:
        partition = _resolve_partition(store, index, spec)
        if store_as is not None and spec[0] == "records":
            store.put_partition(store_as, index, partition)
        output = task(partition, index)
        if capture:
            # Map-side shuffle: keep every non-empty bucket payload resident
            # and report only (bucket, record count); the driver routes the
            # references and peers fetch the data directly from this worker.
            stats = output[0]
            buckets: list[tuple[int, int]] = []
            for bucket_index, payload in enumerate(output[1:]):
                count = payload.record_count
                if count:
                    store.put_payload((capture_id, index, bucket_index), payload)
                    buckets.append((bucket_index, count))
            results.append((index, (stats, len(output) - 1, buckets)))
        else:
            results.append((index, output))
    return {"results": results, "counters": store.drain_counters()}


class WorkerDaemon:
    """One worker process: control loop plus a peer-serve listener."""

    def __init__(self, driver_address: str, serve_host: str = "127.0.0.1"):
        self.driver_address = driver_address
        self.serve_host = serve_host
        self.store = WorkerStore()
        self.index: int | None = None
        self._serve_socket: socket.socket | None = None
        self._stopping = threading.Event()

    # -- peer serving --------------------------------------------------------

    def _serve_peer(self, conn: socket.socket) -> None:
        """Answer payload fetches on one peer connection until it closes."""
        with conn:
            while True:
                try:
                    message_type, payload = protocol.recv_message(conn)
                except protocol.ConnectionClosed:
                    return
                except (OSError, protocol.ProtocolError) as error:
                    if not self._stopping.is_set():
                        logger.warning("peer connection failed: %s", error)
                    return
                if message_type != protocol.FETCH_PAYLOAD:
                    protocol.send_message(
                        conn, protocol.ERROR, {"message": f"unexpected {message_type}"}
                    )
                    return
                key = tuple(payload["key"])
                stored = self.store.get_payload(key)
                if stored is None:
                    protocol.send_message(conn, protocol.PAYLOAD, {"found": False, "records": []})
                else:
                    protocol.send_message(
                        conn,
                        protocol.PAYLOAD,
                        {"found": True, "records": list(iter_payload(stored))},
                    )

    def _serve_loop(self) -> None:
        assert self._serve_socket is not None
        while not self._stopping.is_set():
            try:
                conn, _ = self._serve_socket.accept()
            except OSError:
                return
            threading.Thread(target=self._serve_peer, args=(conn,), daemon=True).start()

    # -- driver control loop -------------------------------------------------

    def _connect_driver(self) -> socket.socket:
        address = protocol.parse_address(self.driver_address)
        deadline = time.monotonic() + CONNECT_RETRY_SECONDS
        while True:
            try:
                return socket.create_connection(address, timeout=10.0)
            except OSError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.1)

    def run(self) -> int:
        """Register with the driver and serve requests until shutdown."""
        self._serve_socket = socket.create_server((self.serve_host, 0))
        serve_address = protocol.format_address(self._serve_socket.getsockname()[:2])
        set_active_store(self.store, serve_address)
        threading.Thread(target=self._serve_loop, daemon=True).start()

        sock = self._connect_driver()
        sock.settimeout(None)
        protocol.send_message(
            sock,
            protocol.REGISTER,
            {
                "pid": os.getpid(),
                "serve_address": serve_address,
                "protocol_version": protocol.PROTOCOL_VERSION,
                "python": tuple(sys.version_info[:3]),
            },
        )
        message_type, payload = protocol.recv_message(sock)
        if message_type == protocol.ERROR:
            logger.error("driver rejected registration: %s", payload.get("message"))
            return 1
        if message_type != protocol.REGISTERED:
            logger.error("expected %s, got %s", protocol.REGISTERED, message_type)
            return 1
        self.index = payload["index"]
        logger.info("registered as worker %d, serving peers on %s", self.index, serve_address)

        try:
            with sock:
                return self._control_loop(sock)
        finally:
            self._stopping.set()
            self._serve_socket.close()
            set_active_store(None, None)

    def _control_loop(self, sock: socket.socket) -> int:
        while True:
            try:
                message_type, payload = protocol.recv_message(sock)
            except protocol.ConnectionClosed:
                logger.info("driver disconnected; exiting")
                return 0
            except protocol.ProtocolError as error:
                # An undecodable body was still fully read, so the stream is
                # intact: report the failure and stay alive (lockstep means
                # this ERROR answers the request we could not decode).
                logger.warning("undecodable driver request: %s", error)
                protocol.send_message(
                    sock, protocol.ERROR, {"message": str(error), "exception": None}
                )
                continue
            if message_type == protocol.SHUTDOWN:
                protocol.send_message(sock, protocol.SHUTDOWN_ACK, {"index": self.index})
                logger.info("shutdown requested; exiting")
                return 0
            if message_type == protocol.HEARTBEAT:
                partitions, payloads = self.store.resident_counts()
                protocol.send_message(
                    sock,
                    protocol.HEARTBEAT_ACK,
                    {"index": self.index, "partitions": partitions, "payloads": payloads},
                )
                continue
            if message_type == protocol.STORE_FREE:
                dropped = self.store.free(
                    payload.get("data_ids", ()), payload.get("capture_ids", ())
                )
                protocol.send_message(sock, protocol.STORE_FREED, {"dropped": dropped})
                continue
            if message_type in (protocol.RUN_TASKS, protocol.SHUFFLE_WRITE):
                capture = message_type == protocol.SHUFFLE_WRITE
                try:
                    response = _execute_batch(self.store, payload, capture)
                except BaseException as error:  # noqa: B036 - reported to the driver
                    logger.warning("task batch failed:\n%s", traceback.format_exc())
                    try:
                        shipped: Any = wire.cluster_dumps(error)
                    except wire.UnshippableError:
                        shipped = None
                    protocol.send_message(
                        sock,
                        protocol.ERROR,
                        {
                            "message": f"{type(error).__name__}: {error}",
                            "exception": shipped,
                            "traceback": traceback.format_exc(),
                        },
                    )
                    continue
                protocol.send_message(sock, protocol.TASK_RESULT, response)
                continue
            protocol.send_message(
                sock, protocol.ERROR, {"message": f"unknown message type {message_type!r}"}
            )


def main(argv: list[str] | None = None) -> int:
    """Entry point of the ``repro-worker`` console script."""
    parser = argparse.ArgumentParser(
        prog="repro-worker",
        description="A DIABLO cluster worker; connects to a ClusterContext driver.",
    )
    parser.add_argument(
        "driver",
        nargs="?",
        default=os.environ.get("DIABLO_CLUSTER_ADDRESS"),
        help="driver address as HOST:PORT (default: $DIABLO_CLUSTER_ADDRESS)",
    )
    parser.add_argument(
        "--log-level", default="INFO", help="logging level for worker stderr (default INFO)"
    )
    arguments = parser.parse_args(argv)
    if not arguments.driver:
        parser.error("no driver address: pass HOST:PORT or set DIABLO_CLUSTER_ADDRESS")
    logging.basicConfig(
        level=getattr(logging, arguments.log_level.upper(), logging.INFO),
        format=f"%(asctime)s worker[{os.getpid()}] %(levelname)s %(message)s",
        stream=sys.stderr,
    )
    # Shipped chains nest closures deeply (see wire._RECURSION_LIMIT); give
    # task execution the same headroom deserialization gets.
    sys.setrecursionlimit(max(sys.getrecursionlimit(), wire._RECURSION_LIMIT))
    try:
        return WorkerDaemon(arguments.driver).run()
    except KeyboardInterrupt:  # pragma: no cover - interactive use
        return 130


if __name__ == "__main__":
    sys.exit(main())
