"""Worker-side state: resident partitions, captured shuffle payloads, and the
:class:`RemotePayload` handle that moves shuffle data worker-to-worker.

Each worker process owns one :class:`WorkerStore`:

* **Resident partitions** -- input partitions the driver shipped once and
  addresses by ``(data_id, partition_index)`` afterwards, so re-scanning the
  same dataset across stages costs a tiny reference instead of re-sending
  the records.
* **Captured payloads** -- the :class:`~repro.runtime.spill.BucketPayload`
  outputs of map-side shuffle chains, keyed by
  ``(capture_id, map_partition, bucket)``.  The driver only ever routes the
  *descriptors* (:class:`RemotePayload`); the records stay put until the
  reduce task that owns the bucket reads them -- locally when the map ran on
  the same worker, over a peer fetch otherwise.  Shuffle data therefore
  never passes through the driver.

A :class:`RemotePayload` quacks like an in-memory ``BucketPayload`` (``runs``
is the empty tuple, ``records`` materializes on first access), so the
reduce-side processors in :mod:`repro.runtime.stage` stream it without
knowing it crossed the network.  Collapsing a spilled payload to one flat
record list preserves results: runs-then-remainder is exactly the record
order the in-memory path produces, and both the streaming merge and the sort
merge consume payloads in that order.
"""

from __future__ import annotations

import socket
import threading
from typing import Any, Iterable

from repro.errors import ExecutionError
from repro.runtime.cluster import protocol
from repro.runtime.spill import BucketPayload, iter_payload


class WorkerStore:
    """Partition / payload storage for one worker process (thread-safe: the
    serve loop reads while the task loop writes)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._partitions: dict[tuple[int, int], list[Any]] = {}
        self._payloads: dict[tuple[int, int, int], BucketPayload] = {}
        self.payload_fetches = 0
        self.payload_fetch_bytes = 0
        self.payload_local_reads = 0

    # -- resident partitions ------------------------------------------------

    def put_partition(self, data_id: int, index: int, records: list[Any]) -> None:
        with self._lock:
            self._partitions[(data_id, index)] = records

    def get_partition(self, data_id: int, index: int) -> list[Any]:
        with self._lock:
            try:
                return self._partitions[(data_id, index)]
            except KeyError:
                raise ExecutionError(
                    f"worker has no resident partition ({data_id}, {index}); "
                    "the driver's push cache and this store disagree"
                ) from None

    # -- captured shuffle payloads ------------------------------------------

    def put_payload(self, key: tuple[int, int, int], payload: BucketPayload) -> None:
        with self._lock:
            self._payloads[key] = payload

    def get_payload(self, key: tuple[int, int, int]) -> BucketPayload | None:
        with self._lock:
            return self._payloads.get(key)

    def free(self, data_ids: Iterable[int] = (), capture_ids: Iterable[int] = ()) -> int:
        """Drop resident partitions / captured payloads; returns entries freed."""
        dropped = 0
        data_ids = set(data_ids)
        capture_ids = set(capture_ids)
        with self._lock:
            for key in [k for k in self._partitions if k[0] in data_ids]:
                del self._partitions[key]
                dropped += 1
            for pkey in [k for k in self._payloads if k[0] in capture_ids]:
                del self._payloads[pkey]
                dropped += 1
        return dropped

    def resident_counts(self) -> tuple[int, int]:
        """``(resident partitions, captured payloads)`` currently held."""
        with self._lock:
            return len(self._partitions), len(self._payloads)

    def drain_counters(self) -> dict[str, int]:
        """The payload-transfer counters since the last drain."""
        with self._lock:
            counters = {
                "payload_fetches": self.payload_fetches,
                "payload_fetch_bytes": self.payload_fetch_bytes,
                "payload_local_reads": self.payload_local_reads,
            }
            self.payload_fetches = 0
            self.payload_fetch_bytes = 0
            self.payload_local_reads = 0
            return counters


#: The store of the worker process we are running in (None in the driver).
_ACTIVE_STORE: WorkerStore | None = None
_ACTIVE_ADDRESS: str | None = None


def set_active_store(store: WorkerStore | None, address: str | None) -> None:
    """Install ``store`` as this process's worker store (worker startup)."""
    global _ACTIVE_STORE, _ACTIVE_ADDRESS
    _ACTIVE_STORE = store
    _ACTIVE_ADDRESS = address


#: Payload traffic that crossed *through the driver process* (reduce inputs
#: fetched by a driver-side fallback).  Zero in a healthy cluster run.
_DRIVER_FETCHES = {"fetches": 0, "bytes": 0}
_DRIVER_FETCH_LOCK = threading.Lock()


def drain_driver_fetch_counters() -> tuple[int, int]:
    """``(fetches, bytes)`` pulled into the driver since the last drain."""
    with _DRIVER_FETCH_LOCK:
        fetches, fetched = _DRIVER_FETCHES["fetches"], _DRIVER_FETCHES["bytes"]
        _DRIVER_FETCHES["fetches"] = 0
        _DRIVER_FETCHES["bytes"] = 0
        return fetches, fetched


class _FetchConnections:
    """A per-process cache of peer-fetch sockets, one per serve address."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._sockets: dict[str, socket.socket] = {}

    def fetch(self, address: str, key: tuple[int, int, int]) -> tuple[list[Any], int]:
        """``(records, frame_bytes)`` for one stored payload on a peer."""
        with self._lock:
            sock = self._sockets.pop(address, None)
        try:
            if sock is None:
                sock = socket.create_connection(protocol.parse_address(address), timeout=60.0)
            protocol.send_message(sock, protocol.FETCH_PAYLOAD, {"key": key})
            message_type, payload, frame_bytes = protocol.recv_message_sized(sock)
        except (OSError, protocol.ProtocolError):
            if sock is not None:
                sock.close()
            raise
        if message_type != protocol.PAYLOAD or not payload.get("found", False):
            sock.close()
            raise ExecutionError(
                f"peer {address} could not serve payload {key}: got {message_type}"
            )
        with self._lock:
            previous = self._sockets.setdefault(address, sock)
        if previous is not sock:  # pragma: no cover - concurrent fetches to one peer
            sock.close()
        return payload["records"], frame_bytes

    def close(self) -> None:
        with self._lock:
            for sock in self._sockets.values():
                sock.close()
            self._sockets.clear()


_FETCH_CONNECTIONS = _FetchConnections()


class RemotePayload:
    """A shuffle bucket payload that still lives on the worker that wrote it.

    Duck-types the in-memory :class:`~repro.runtime.spill.BucketPayload`
    surface the reduce processors use: ``runs`` (always empty -- spilled runs
    were written on the *producing* worker's filesystem and are streamed by
    it at fetch time), ``records`` (materialized on first access and cached,
    because the sorted-merge path reads it twice), and ``record_count``
    (known without any transfer, so the driver can route buckets for free).
    """

    __slots__ = ("address", "key", "record_count", "_records")

    #: No local spill runs, ever: remote data arrives as one record block.
    runs: tuple = ()

    def __init__(self, address: str, key: tuple[int, int, int], record_count: int):
        self.address = address
        self.key = key
        self.record_count = record_count
        self._records = None

    @property
    def records(self) -> tuple[Any, ...]:
        if self._records is None:
            self._records = tuple(self._resolve())
        return self._records

    def _resolve(self) -> list[Any]:
        store = _ACTIVE_STORE
        if store is not None and _ACTIVE_ADDRESS == self.address:
            payload = store.get_payload(self.key)
            if payload is None:
                raise ExecutionError(f"local payload {self.key} missing from the worker store")
            store.payload_local_reads += 1
            return list(iter_payload(payload))
        records, frame_bytes = _FETCH_CONNECTIONS.fetch(self.address, self.key)
        if store is not None:
            with store._lock:
                store.payload_fetches += 1
                store.payload_fetch_bytes += frame_bytes
        else:
            # No worker store: this payload was just pulled into the driver.
            with _DRIVER_FETCH_LOCK:
                _DRIVER_FETCHES["fetches"] += 1
                _DRIVER_FETCHES["bytes"] += frame_bytes
        return records

    def __reduce__(self) -> tuple:
        return (RemotePayload, (self.address, self.key, self.record_count))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RemotePayload({self.address}, key={self.key}, records={self.record_count})"
