"""The cluster wire protocol: length-prefixed framed-pickle messages.

Every message on every cluster socket -- driver-to-worker scheduling,
worker-to-worker payload fetches -- is one *frame*:

.. code-block:: text

    +--------+---------+---------+------------------+----------------+
    | magic  | version | padding | body length (u64)| pickled body   |
    | 4 bytes| 1 byte  | 3 bytes | big-endian       | length bytes   |
    +--------+---------+---------+------------------+----------------+

The body is ``(message_type, payload_dict)`` serialized by
:func:`~repro.runtime.cluster.wire.cluster_dumps` -- the same
length-then-bytes framing idiom as :mod:`repro.runtime.spill`'s run files,
promoted to a socket and given a magic/version prefix so an endpoint can
reject a peer speaking the wrong protocol *before* unpickling anything.

Errors are split so callers can tell a clean peer exit from a broken one:

* :class:`ConnectionClosed` -- the peer closed the socket *between* frames
  (normal during shutdown);
* :class:`ProtocolError` -- bad magic, a version mismatch, an oversized
  frame, or a socket that died *inside* a frame (truncation).
"""

from __future__ import annotations

import socket
import struct
from typing import Any

from repro.errors import DiabloError
from repro.runtime.cluster import wire

#: First bytes of every frame; reject non-cluster peers immediately.
MAGIC = b"DBLO"
#: Bumped on any incompatible change to framing or message payloads.
PROTOCOL_VERSION = 1
#: magic, version byte, 3 pad bytes, u64 body length.
_WIRE_HEADER = struct.Struct(">4sB3xQ")
#: Hard per-frame cap: a length beyond this is a corrupt or hostile header.
MAX_FRAME_BYTES = 1 << 31

# -- message types ------------------------------------------------------------
REGISTER = "register"  #: worker -> driver: here I am (pid, serve address, versions)
REGISTERED = "registered"  #: driver -> worker: accepted, here is your index
RUN_TASKS = "run_tasks"  #: driver -> worker: run a fused narrow chain
SHUFFLE_WRITE = "shuffle_write"  #: driver -> worker: run a map-side chain, keep payloads
TASK_RESULT = "task_result"  #: worker -> driver: per-partition results + counters
FETCH_PAYLOAD = "fetch_payload"  #: peer/driver -> worker: send one stored bucket payload
PAYLOAD = "payload"  #: worker -> peer/driver: the materialized bucket records
STORE_FREE = "store_free"  #: driver -> worker: drop resident partitions / captures
STORE_FREED = "store_freed"  #: worker -> driver: ack
HEARTBEAT = "heartbeat"  #: driver -> worker: liveness probe
HEARTBEAT_ACK = "heartbeat_ack"  #: worker -> driver: still here
SHUTDOWN = "shutdown"  #: driver -> worker: exit cleanly
SHUTDOWN_ACK = "shutdown_ack"  #: worker -> driver: exiting
ERROR = "error"  #: worker -> driver: the request failed (message + cause)


class ProtocolError(DiabloError):
    """The peer sent bytes that are not a valid protocol frame."""


class ConnectionClosed(ProtocolError):
    """The peer closed the connection cleanly between frames."""


def encode_message(message_type: str, payload: dict[str, Any]) -> bytes:
    """One complete frame (header + body) for ``(message_type, payload)``.

    Raises :class:`~repro.runtime.cluster.wire.UnshippableError` when the
    payload cannot cross the wire -- callers use that to fall back *before*
    anything is sent.
    """
    body = wire.cluster_dumps((message_type, payload))
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame body of {len(body)} bytes exceeds the {MAX_FRAME_BYTES} cap")
    return _WIRE_HEADER.pack(MAGIC, PROTOCOL_VERSION, len(body)) + body


def send_frame(sock: socket.socket, frame: bytes) -> None:
    """Write one pre-encoded frame to ``sock``."""
    sock.sendall(frame)


def send_message(sock: socket.socket, message_type: str, payload: dict[str, Any]) -> None:
    """Encode and write one message to ``sock``."""
    send_frame(sock, encode_message(message_type, payload))


def _recv_exact(sock: socket.socket, count: int, at_frame_start: bool) -> bytes:
    """Read exactly ``count`` bytes or raise the appropriate closure error."""
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if at_frame_start and remaining == count:
                raise ConnectionClosed("peer closed the connection")
            raise ProtocolError(
                f"truncated frame: connection closed with {remaining} of {count} bytes unread"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message_sized(sock: socket.socket) -> tuple[str, dict[str, Any], int]:
    """Read one frame; returns ``(message_type, payload, frame_bytes)``.

    The byte count covers header plus body -- the payload-transfer metrics
    are measured here, on real serialized traffic.
    """
    header = _recv_exact(sock, _WIRE_HEADER.size, at_frame_start=True)
    magic, version, length = _WIRE_HEADER.unpack(header)
    if magic != MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r} (expected {MAGIC!r})")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version mismatch: peer speaks v{version}, this side v{PROTOCOL_VERSION}"
        )
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame body of {length} bytes exceeds the {MAX_FRAME_BYTES} cap")
    body = _recv_exact(sock, length, at_frame_start=False)
    try:
        message_type, payload = wire.cluster_loads(body)
    except Exception as error:
        raise ProtocolError(f"undecodable frame body: {error}") from error
    return message_type, payload, _WIRE_HEADER.size + length


def recv_message(sock: socket.socket) -> tuple[str, dict[str, Any]]:
    """Read one frame; returns ``(message_type, payload)``."""
    message_type, payload, _ = recv_message_sized(sock)
    return message_type, payload


def parse_address(address: str) -> tuple[str, int]:
    """Split ``"host:port"`` into a socket address tuple."""
    host, separator, port = address.rpartition(":")
    if not separator or not host:
        raise ValueError(f"cluster address must look like host:port, got {address!r}")
    return host, int(port)


def format_address(address: tuple[str, int]) -> str:
    """The ``"host:port"`` form of a socket address tuple."""
    return f"{address[0]}:{address[1]}"
