"""Closure-capable serialization for the cluster wire.

Translated plans are full of *local* functions: the term evaluator builds
record functions as closures over IR terms (``bind_element``, ``project_head``,
``keep_row``, ...), and the builtin monoid registry holds lambdas.  Plain
:mod:`pickle` refuses all of them, which is fine for the in-process executors
(the ``"processes"`` pool just falls back to the driver) but would defeat the
cluster backend: a map-side chain that cannot ship forces its shuffle payloads
through the driver.

:func:`cluster_dumps` therefore extends pickle with two rules, applied only on
the cluster wire (the in-process executors keep their conservative
behaviour):

* **Functions pickle by value when they cannot pickle by reference.**  A
  function that is not importable under its qualified name ships as its
  marshalled code object, its closure cell contents, its defaults, and the
  globals its code actually references.  On the worker the function is rebuilt
  against the live module dictionary when the defining module is importable
  (the worker runs the same code tree), or against an isolated dictionary of
  the shipped globals otherwise (e.g. functions defined in the driver's
  ``__main__``).  Both driver and worker must run the same Python version --
  marshal is version-specific -- which the registration handshake enforces.

* **Driver-only objects ship as inert stubs.**  A
  :class:`~repro.runtime.context.DistributedContext` (reachable from every
  shipped evaluator through its environment) and the driver-side
  :class:`~repro.runtime.dataset.Dataset` partitions it holds must never be
  *used* inside a worker task, but they are routinely *reachable* from one.
  They serialize as stubs that raise :class:`DriverOnlyError` on first use, so
  a task that genuinely needs them fails with a clear message instead of
  silently dragging the driver state across the wire.

Anything else that does not pickle raises :class:`UnshippableError`; the
cluster context catches it and runs that task in the driver (counted by
``metrics.cluster_fallbacks``).
"""

from __future__ import annotations

import builtins
import contextlib
import importlib
import io
import marshal
import pickle
import sys
import types
from typing import Any

from repro.errors import ExecutionError


class UnshippableError(ExecutionError):
    """The object graph cannot cross the cluster wire (caller should fall back)."""


class DriverOnlyError(ExecutionError):
    """A worker task touched an object that only exists in the driver."""


class _DriverStub:
    """Inert stand-in for a driver-only object inside a shipped task."""

    __slots__ = ("_kind",)

    def __init__(self, kind: str):
        object.__setattr__(self, "_kind", kind)

    def __getattr__(self, name: str) -> Any:
        kind = object.__getattribute__(self, "_kind")
        raise DriverOnlyError(
            f"{kind} objects are driver-only and cannot be used inside a "
            f"cluster task (attempted to read attribute {name!r})"
        )

    def __call__(self, *_args: Any, **_kwargs: Any) -> Any:
        kind = object.__getattribute__(self, "_kind")
        raise DriverOnlyError(f"{kind} objects are driver-only and cannot be called in a cluster task")

    def __reduce__(self) -> tuple:
        return (_DriverStub, (object.__getattribute__(self, "_kind"),))


#: Key marking a rebuilt function's globals dict as wire-isolated (the
#: defining module was not importable on this side), so phase 2 knows to
#: fill in the shipped global values.
_ISOLATED_GLOBALS_MARKER = "__diablo_wire_isolated__"


class _ModuleRef:
    """A global that is a module: ship its name, re-import on the worker."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __reduce__(self) -> tuple:
        return (_ModuleRef, (self.name,))


def _global_names(code: types.CodeType) -> set[str]:
    """Every name ``code`` (or a code object nested in it) loads as a global."""
    names = set(code.co_names)
    for const in code.co_consts:
        if isinstance(const, types.CodeType):
            names |= _global_names(const)
    return names


def _importable(fn: types.FunctionType) -> bool:
    """Whether plain pickle could serialize ``fn`` by reference."""
    module = sys.modules.get(fn.__module__ or "")
    if module is None:
        return False
    obj: Any = module
    for part in fn.__qualname__.split("."):
        obj = getattr(obj, part, None)
        if obj is None:
            return False
    return obj is fn


def _ship_by_reference(fn: types.FunctionType) -> bool:
    """Whether ``fn`` should cross the wire as a module-qualified name.

    Importability *in the driver* is not enough: the driver may have extra
    ``sys.path`` entries a worker does not (a pytest run makes the test
    modules importable, for example).  Only the codebase itself and the
    standard library are guaranteed identical on both sides; every other
    function ships by value.
    """
    if not _importable(fn):
        return False
    top_level = (fn.__module__ or "").split(".", 1)[0]
    return top_level == "repro" or top_level in sys.stdlib_module_names


def _function_reduce(fn: types.FunctionType) -> tuple:
    """The by-value reduction of a non-importable function.

    Uses the six-element reduce form: the *shell* (code + empty closure
    cells) is built and memoized first, and the cell contents / defaults /
    globals arrive as *state* applied afterwards.  Recursive closures --
    a local function whose cells reach back to itself -- would otherwise
    recurse forever through the reduce arguments.
    """
    code = fn.__code__
    try:
        code_bytes = marshal.dumps(code)
    except ValueError as error:  # pragma: no cover - marshal rejects exotica
        raise UnshippableError(f"cannot marshal code of {fn.__qualname__}: {error}") from error
    try:
        cells = tuple(cell.cell_contents for cell in fn.__closure__ or ())
    except ValueError as error:
        raise UnshippableError(
            f"{fn.__qualname__} captures an unassigned closure cell"
        ) from error
    shipped_globals = []
    fn_globals = fn.__globals__
    for name in sorted(_global_names(code)):
        if name not in fn_globals:
            continue
        value = fn_globals[name]
        if isinstance(value, types.ModuleType):
            value = _ModuleRef(value.__name__)
        shipped_globals.append((name, value))
    state = (fn.__defaults__, fn.__kwdefaults__, cells, tuple(shipped_globals))
    return (
        _build_function_shell,
        (code_bytes, fn.__module__ or "", fn.__qualname__),
        state,
        None,
        None,
        _set_function_state,
    )


def _build_function_shell(code_bytes: bytes, module_name: str, qualname: str) -> types.FunctionType:
    """Worker-side phase 1: the function with empty closure cells."""
    code = marshal.loads(code_bytes)
    module = None
    if module_name and module_name != "__main__":
        module = sys.modules.get(module_name)
        if module is None:
            try:
                module = importlib.import_module(module_name)
            except Exception:
                module = None
    if module is not None:
        # The worker runs the same code tree: the live module dictionary is
        # authoritative for every global the function reads.
        fn_globals = module.__dict__
    else:
        # Functions from the driver's __main__ (or an unimportable module)
        # get an isolated globals dict; phase 2 fills in what they referenced.
        fn_globals = {
            "__builtins__": builtins,
            "__name__": module_name or "__wire__",
            _ISOLATED_GLOBALS_MARKER: True,
        }
    closure = tuple(types.CellType() for _ in code.co_freevars)
    fn = types.FunctionType(code, fn_globals, code.co_name, None, closure or None)
    fn.__qualname__ = qualname
    return fn


def _set_function_state(fn: types.FunctionType, state: tuple) -> None:
    """Worker-side phase 2: fill cells, defaults and shipped globals."""
    defaults, kwdefaults, cells, shipped_globals = state
    fn.__defaults__ = defaults
    if kwdefaults:
        fn.__kwdefaults__ = dict(kwdefaults)
    for cell, value in zip(fn.__closure__ or (), cells):
        cell.cell_contents = value
    if _ISOLATED_GLOBALS_MARKER in fn.__globals__:
        for name, value in shipped_globals:
            if isinstance(value, _ModuleRef):
                value = importlib.import_module(value.name)
            fn.__globals__[name] = value


class _ClusterPickler(pickle.Pickler):
    """Pickler with the two cluster-wire rules (functions by value, stubs)."""

    def reducer_override(self, obj: Any) -> Any:
        if isinstance(obj, types.FunctionType):
            # Never serialize this module's own rebuild helpers by value:
            # their reduction references themselves, which would regress
            # forever if this module were ever not importable by name.
            if obj.__module__ == __name__ or _ship_by_reference(obj):
                return NotImplemented
            return _function_reduce(obj)
        kind = _driver_only_kind(obj)
        if kind is not None:
            return (_DriverStub, (kind,))
        return NotImplemented


def _driver_only_kind(obj: Any) -> str | None:
    """The stub label for ``obj`` when it must not cross the wire, else None."""
    # Imported lazily (and only when a candidate type is seen) to keep the
    # wire module free of runtime-layer import cycles.
    from repro.runtime.context import DistributedContext
    from repro.runtime.dataset import Dataset
    from repro.runtime.spill import ShuffleStore

    if isinstance(obj, DistributedContext):
        return "DistributedContext"
    if isinstance(obj, Dataset):
        return "Dataset"
    if isinstance(obj, ShuffleStore):
        return "ShuffleStore"
    return None


#: Translated plans nest closures inside closures (each loop-body statement
#: layers record functions over the previous ones), so pickling a shipped
#: chain recurses far deeper than the default interpreter limit.
_RECURSION_LIMIT = 20_000


@contextlib.contextmanager
def _deep_recursion() -> Any:
    previous = sys.getrecursionlimit()
    sys.setrecursionlimit(max(previous, _RECURSION_LIMIT))
    try:
        yield
    finally:
        sys.setrecursionlimit(previous)


def cluster_dumps(obj: Any) -> bytes:
    """Serialize ``obj`` for the cluster wire.

    Raises :class:`UnshippableError` when the graph cannot cross the wire
    even with the extended rules.
    """
    buffer = io.BytesIO()
    try:
        with _deep_recursion():
            _ClusterPickler(buffer, protocol=pickle.HIGHEST_PROTOCOL).dump(obj)
    except UnshippableError:
        raise
    except (pickle.PicklingError, TypeError, AttributeError, ValueError, RecursionError) as error:
        raise UnshippableError(f"cannot ship over the cluster wire: {error}") from error
    return buffer.getvalue()


def cluster_loads(data: bytes) -> Any:
    """Deserialize a :func:`cluster_dumps` body (plain pickle load)."""
    with _deep_recursion():
        return pickle.loads(data)
