"""The driver side of ``executor_mode="cluster"``.

:class:`ClusterContext` keeps the whole :class:`~repro.runtime.context.
DistributedContext` surface -- plan building, shuffle planning, adaptive
execution, broadcast joins and metrics all run unchanged in the driver --
and replaces *task execution*: every fused stage chain that has a picklable
descriptor is shipped over the wire to a long-lived worker process instead
of running in a local pool.

Scheduling model (deliberately simple, documented in DESIGN.md):

* partition ``i`` always runs on worker ``i % N`` -- deterministic placement
  is what makes resident partitions and shuffle-payload locality work
  without a placement table;
* each worker has one scheduler thread and a FIFO queue; requests on one
  control socket are strict request/response;
* map-side shuffle chains are sent as ``shuffle_write``: the worker keeps
  the produced bucket payloads and returns ``(bucket, record_count)``
  references.  Reduce tasks receive those references and read the records
  locally or from the producing worker's serve socket -- the driver routes
  descriptors only, so reduce-input bytes through the driver are zero (the
  ``driver_payload_bytes`` metric measures exactly this);
* failure handling is fail-fast: a worker that drops its socket, times out,
  or misses heartbeats marks the job with :class:`~repro.errors.
  WorkerLostError`.  There is no lineage or task retry -- lost state fails
  the computation promptly instead of hanging.
"""

from __future__ import annotations

import functools
import itertools
import os
import queue
import socket
import sys
import threading
import time
from concurrent.futures import Future
from typing import Any, Callable

from repro.errors import ExecutionError, WorkerLostError
from repro.runtime import stage as stage_mod
from repro.runtime.cluster import protocol, wire
from repro.runtime.cluster import store as store_mod
from repro.runtime.cluster.store import RemotePayload
from repro.runtime.context import DistributedContext
from repro.runtime.spill import BucketPayload, approximate_size

#: Map-side writer functions whose payload outputs are captured on workers.
_WRITER_FUNCTIONS = (
    stage_mod.shuffle_write,
    stage_mod.salted_shuffle_write,
    stage_mod.repartition_write,
    stage_mod.prepartitioned_write,
)

#: How many distinct partition lists stay push-cached on the workers.
_PUSH_CACHE_CAPACITY = 16


class _RemoteTaskError(Exception):
    """Internal: a worker reported that the task itself failed."""

    def __init__(self, message: str, cause: BaseException | None, remote_traceback: str):
        super().__init__(message)
        self.cause = cause
        self.remote_traceback = remote_traceback


class _WorkerHandle:
    """Driver-side state for one registered worker: socket + scheduler."""

    def __init__(self, index: int, sock: socket.socket, serve_address: str, pid: int):
        self.index = index
        self.sock = sock
        self.serve_address = serve_address
        self.pid = pid
        self.lost: WorkerLostError | None = None
        self.busy = False
        self.queue: queue.Queue = queue.Queue()
        self.thread = threading.Thread(
            target=self._loop, name=f"cluster-worker-{index}", daemon=True
        )
        self.thread.start()

    def submit(self, frame: bytes, timeout: float | None) -> Future:
        """Queue one pre-encoded request frame; the future gets the response."""
        future: Future = Future()
        if self.lost is not None:
            future.set_exception(self.lost)
            return future
        self.queue.put((frame, timeout, future))
        return future

    def _loop(self) -> None:
        while True:
            item = self.queue.get()
            if item is None:
                return
            frame, timeout, future = item
            if self.lost is not None:
                future.set_exception(self.lost)
                continue
            self.busy = True
            try:
                self.sock.settimeout(timeout)
                protocol.send_frame(self.sock, frame)
                message_type, payload = protocol.recv_message(self.sock)
            except protocol.ConnectionClosed:
                self._mark_lost(future, "closed its connection")
                continue
            except TimeoutError:
                self._mark_lost(future, f"did not respond within {timeout:.0f}s")
                continue
            except (OSError, protocol.ProtocolError) as error:
                self._mark_lost(future, f"connection failed ({error})")
                continue
            finally:
                self.busy = False
            if message_type == protocol.ERROR:
                future.set_exception(
                    _RemoteTaskError(
                        payload.get("message", "task failed"),
                        payload.get("exception"),
                        payload.get("traceback", ""),
                    )
                )
            else:
                future.set_result((message_type, payload))

    def _mark_lost(self, future: Future, reason: str) -> None:
        """Fail this request, every queued request, and all future ones."""
        self.busy = False
        self.lost = WorkerLostError(
            f"cluster worker {self.index} (pid {self.pid}) {reason}"
        )
        self.sock.close()
        future.set_exception(self.lost)
        while True:
            try:
                item = self.queue.get_nowait()
            except queue.Empty:
                return
            if item is not None:
                item[2].set_exception(self.lost)

    def stop(self) -> None:
        self.queue.put(None)
        self.sock.close()


class _PushCache:
    """LRU of partition lists already resident on the workers.

    Holds *strong* references: partition lists cannot be weak-referenced,
    and a strong reference also pins the list's ``id`` so a recycled id can
    never alias a dead entry.  Eviction returns the freed data ids so the
    context can tell the workers to drop them.
    """

    def __init__(self, capacity: int = _PUSH_CACHE_CAPACITY):
        self.capacity = capacity
        self._entries: dict[int, tuple[int, list[list[Any]]]] = {}
        self._order: list[int] = []

    def lookup(self, partitions: list[list[Any]]) -> int | None:
        key = id(partitions)
        entry = self._entries.get(key)
        if entry is None:
            return None
        self._order.remove(key)
        self._order.append(key)
        return entry[0]

    def insert(self, partitions: list[list[Any]], data_id: int) -> list[int]:
        """Register a freshly shipped list; returns evicted data ids."""
        key = id(partitions)
        self._entries[key] = (data_id, partitions)
        self._order.append(key)
        evicted: list[int] = []
        while len(self._order) > self.capacity:
            old_key = self._order.pop(0)
            evicted.append(self._entries.pop(old_key)[0])
        return evicted

    def clear(self) -> None:
        self._entries.clear()
        self._order.clear()


class ClusterContext(DistributedContext):
    """A :class:`DistributedContext` that executes stages on remote workers.

    With no ``cluster_address`` the context binds an ephemeral localhost
    port and spawns ``cluster_workers`` local worker subprocesses (via
    :class:`~repro.runtime.cluster.local.LocalCluster`).  With an address --
    passed explicitly or through ``DIABLO_CLUSTER_ADDRESS`` -- it binds that
    address and waits for externally started ``repro-worker`` processes to
    register.
    """

    #: Reduce passes must go through run_tasks even without spilling: the
    #: routed payloads are remote references that only workers should read.
    _reduce_in_tasks = True

    def __init__(
        self,
        num_partitions: int = 8,
        cluster_workers: int = 2,
        cluster_address: str | None = None,
        task_timeout: float = 300.0,
        heartbeat_interval: float = 5.0,
        register_timeout: float = 60.0,
        **kwargs: Any,
    ):
        super().__init__(num_partitions=num_partitions, executor="sequential", **kwargs)
        self.executor = "cluster"
        if cluster_workers <= 0:
            raise ValueError("cluster_workers must be positive")
        self.cluster_workers = cluster_workers
        self.task_timeout = task_timeout
        self.heartbeat_interval = heartbeat_interval
        if cluster_address is None:
            cluster_address = os.environ.get("DIABLO_CLUSTER_ADDRESS") or None
        self._local_cluster = None
        self._workers: list[_WorkerHandle] | None = None
        self._push_cache = _PushCache()
        self._data_ids = itertools.count(1)
        self._capture_ids = itertools.count(1)
        self._capture_stack: list[list[int]] = []
        self._stop_monitor = threading.Event()
        self._monitor_thread: threading.Thread | None = None
        self._start_cluster(cluster_address, register_timeout)

    @classmethod
    def from_config(cls, config: Any) -> "ClusterContext":
        """Build a cluster context from a :class:`~repro.api.DiabloConfig`."""
        return cls(
            num_partitions=config.num_partitions,
            cluster_workers=getattr(config, "cluster_workers", 2),
            cluster_address=getattr(config, "cluster_address", None),
            broadcast_join_threshold=config.broadcast_join_threshold,
            spill_threshold_bytes=config.spill_threshold_bytes,
            spill_dir=config.spill_dir,
            plan_optimize=getattr(config, "plan_optimize", True),
            columnar=getattr(config, "columnar", None),
            adaptive=getattr(config, "adaptive", True),
            plan_cache=getattr(config, "plan_cache", True),
        )

    # -- cluster bring-up ----------------------------------------------------

    def _start_cluster(self, cluster_address: str | None, register_timeout: float) -> None:
        if cluster_address is None:
            listener = socket.create_server(("127.0.0.1", 0))
            spawn_local = True
        else:
            listener = socket.create_server(protocol.parse_address(cluster_address))
            spawn_local = False
        self.cluster_address = protocol.format_address(listener.getsockname()[:2])
        try:
            if spawn_local:
                from repro.runtime.cluster.local import LocalCluster

                self._local_cluster = LocalCluster(self.cluster_workers, self.cluster_address)
            self._workers = self._accept_workers(listener, register_timeout)
        except BaseException:
            if self._local_cluster is not None:
                self._local_cluster.close()
            for handle in self._workers or []:
                handle.stop()
            raise
        finally:
            listener.close()
        self._monitor_thread = threading.Thread(
            target=self._monitor_loop, name="cluster-heartbeat", daemon=True
        )
        self._monitor_thread.start()

    def _accept_workers(
        self, listener: socket.socket, register_timeout: float
    ) -> list[_WorkerHandle]:
        handles: list[_WorkerHandle] = []
        deadline = time.monotonic() + register_timeout
        while len(handles) < self.cluster_workers:
            listener.settimeout(max(0.1, deadline - time.monotonic()))
            try:
                conn, _ = listener.accept()
            except TimeoutError:
                raise ExecutionError(
                    f"cluster registration timed out: {len(handles)} of "
                    f"{self.cluster_workers} workers registered on "
                    f"{self.cluster_address} within {register_timeout:.0f}s"
                ) from None
            try:
                conn.settimeout(10.0)
                message_type, payload = protocol.recv_message(conn)
            except (OSError, protocol.ProtocolError):
                conn.close()
                continue
            if message_type != protocol.REGISTER:
                conn.close()
                continue
            peer_python = tuple(payload.get("python", ()))[:2]
            if peer_python != tuple(sys.version_info[:2]):
                # Shipped functions travel as marshalled code objects, which
                # are only valid within one minor Python version.
                protocol.send_message(
                    conn,
                    protocol.ERROR,
                    {
                        "message": (
                            f"python version mismatch: driver runs "
                            f"{sys.version_info[0]}.{sys.version_info[1]}, "
                            f"worker runs {peer_python}"
                        )
                    },
                )
                conn.close()
                continue
            index = len(handles)
            protocol.send_message(conn, protocol.REGISTERED, {"index": index})
            conn.settimeout(None)
            handles.append(
                _WorkerHandle(index, conn, payload["serve_address"], payload.get("pid", 0))
            )
        return handles

    def _monitor_loop(self) -> None:
        """Probe idle workers so a silently dead one is noticed between jobs."""
        while not self._stop_monitor.wait(self.heartbeat_interval):
            for handle in self._workers or []:
                if handle.lost is None and not handle.busy and handle.queue.empty():
                    handle.submit(
                        protocol.encode_message(protocol.HEARTBEAT, {}),
                        self.heartbeat_interval * 2,
                    )

    # -- task dispatch -------------------------------------------------------

    def run_tasks(
        self,
        task: Callable[[list[Any], int], list[Any]],
        partitions: list[list[Any]],
        task_spec: tuple[Any, ...] | None = None,
    ) -> list[list[Any]]:
        if not partitions:
            return []
        if task_spec is None:
            return self._run_in_driver(task, partitions)
        outcome = self._dispatch(task_spec, partitions)
        if outcome is None:
            return self._run_in_driver(task, partitions)
        return outcome

    def _run_in_driver(
        self, task: Callable[[list[Any], int], list[Any]], partitions: list[list[Any]]
    ) -> list[list[Any]]:
        """Driver fallback: also accounts for any payloads it pulls over."""
        self.metrics.record_cluster_fallback()
        result = [task(partition, index) for index, partition in enumerate(partitions)]
        fetches, fetched_bytes = store_mod.drain_driver_fetch_counters()
        if fetches:
            self.metrics.record_driver_payload(fetched_bytes)
        return result

    def _writer_capture(self, task_spec: tuple[Any, ...]) -> bool:
        """Whether this chain ends in a map-side shuffle writer."""
        last = task_spec[-1]
        return (
            last.kind == stage_mod.PARTITIONS_INDEXED
            and isinstance(last.function, functools.partial)
            and last.function.func in _WRITER_FUNCTIONS
        )

    def _payload_mode(self, partitions: list[list[Any]]) -> bool:
        """Whether the partitions are reduce buckets of routed payloads."""
        for partition in partitions:
            if partition:
                return isinstance(partition[0], (BucketPayload, RemotePayload))
        return False

    def _dispatch(
        self, task_spec: tuple[Any, ...], partitions: list[list[Any]]
    ) -> list[list[Any]] | None:
        workers = self._workers
        if not workers:
            raise ExecutionError("cluster context is shut down")
        capture = self._writer_capture(task_spec)
        payload_mode = not capture and self._payload_mode(partitions)
        capture_id = next(self._capture_ids) if capture else None

        store_as: int | None = None
        fresh = False
        if not payload_mode:
            store_as = self._push_cache.lookup(partitions)
            if store_as is None:
                store_as = next(self._data_ids)
                fresh = True

        driver_bytes = 0
        entries: dict[int, list[tuple[int, tuple]]] = {}
        for index, partition in enumerate(partitions):
            worker_index = index % len(workers)
            if payload_mode:
                for element in partition:
                    if isinstance(element, BucketPayload):
                        # A real payload (produced by a driver fallback) is
                        # about to ride through the driver to a worker.
                        driver_bytes += sum(run.length for run in element.runs)
                        driver_bytes += sum(approximate_size(r) for r in element.records)
                spec: tuple = ("payloads", partition)
            elif fresh:
                spec = ("records", partition)
            else:
                spec = ("stored", store_as)
            entries.setdefault(worker_index, []).append((index, spec))

        message_type = protocol.SHUFFLE_WRITE if capture else protocol.RUN_TASKS
        frames: dict[int, bytes] = {}
        try:
            for worker_index, worker_entries in entries.items():
                frames[worker_index] = protocol.encode_message(
                    message_type,
                    {
                        "task_spec": task_spec,
                        "partitions": worker_entries,
                        "columnar": self.columnar,
                        "store_as": store_as if (fresh and not payload_mode) else None,
                        "capture_id": capture_id,
                    },
                )
        except wire.UnshippableError:
            return None

        if capture_id is not None and self._capture_stack:
            self._capture_stack[-1].append(capture_id)
        if fresh and not payload_mode:
            for evicted in self._push_cache.insert(partitions, store_as):
                self._free_on_workers(data_ids=[evicted])
        elif not payload_mode:
            self.metrics.record_resident_reuse(len(partitions))

        futures = [
            (worker_index, workers[worker_index].submit(frame, self.task_timeout))
            for worker_index, frame in frames.items()
        ]
        by_index: dict[int, Any] = {}
        task_error: _RemoteTaskError | None = None
        lost_error: WorkerLostError | None = None
        for worker_index, future in futures:
            try:
                _, response = future.result()
            except _RemoteTaskError as error:
                task_error = task_error or error
                continue
            except WorkerLostError as error:
                lost_error = lost_error or error
                continue
            counters = response.get("counters") or {}
            self.metrics.record_worker_payload(
                counters.get("payload_fetches", 0),
                counters.get("payload_fetch_bytes", 0),
                counters.get("payload_local_reads", 0),
            )
            serve_address = workers[worker_index].serve_address
            for index, output in response["results"]:
                if capture:
                    stats, num_buckets, buckets = output
                    by_index[index] = self._assemble_capture(
                        serve_address, capture_id, index, stats, num_buckets, buckets
                    )
                else:
                    by_index[index] = output
        if lost_error is not None:
            raise lost_error
        if task_error is not None:
            cause = task_error.cause
            if isinstance(cause, BaseException):
                raise ExecutionError(f"1 task(s) failed: {cause}") from cause
            raise ExecutionError(
                f"1 task(s) failed: {task_error}\n{task_error.remote_traceback}"
            )
        if driver_bytes:
            self.metrics.record_driver_payload(driver_bytes)
        self.metrics.record_parallel_tasks(len(partitions))
        return [by_index[index] for index in range(len(partitions))]

    def _assemble_capture(
        self,
        serve_address: str,
        capture_id: int,
        map_index: int,
        stats: Any,
        num_buckets: int,
        buckets: list[tuple[int, int]],
    ) -> list[Any]:
        """Rebuild a writer task's ``[stats, payload...]`` output shape with
        remote references in place of the worker-resident payloads."""
        counts = dict(buckets)
        output: list[Any] = [stats]
        for bucket_index in range(num_buckets):
            count = counts.get(bucket_index, 0)
            if count:
                output.append(
                    RemotePayload(
                        serve_address, (capture_id, map_index, bucket_index), count
                    )
                )
            else:
                output.append(BucketPayload((), ()))
        return output

    # -- shuffle lifecycle ---------------------------------------------------

    def run_shuffle(self, shuffle: Any) -> tuple[list[list[Any]], Any]:
        self._capture_stack.append([])
        try:
            return super().run_shuffle(shuffle)
        finally:
            capture_ids = self._capture_stack.pop()
            if capture_ids:
                self._free_on_workers(capture_ids=capture_ids)

    def _free_on_workers(
        self, data_ids: list[int] | None = None, capture_ids: list[int] | None = None
    ) -> None:
        """Best-effort STORE_FREE broadcast (a lost worker is already failing)."""
        try:
            frame = protocol.encode_message(
                protocol.STORE_FREE,
                {"data_ids": data_ids or [], "capture_ids": capture_ids or []},
            )
        except wire.UnshippableError:  # pragma: no cover - ids are ints
            return
        for handle in self._workers or []:
            if handle.lost is None:
                handle.submit(frame, self.task_timeout)

    # -- shutdown ------------------------------------------------------------

    def shutdown(self, cancel_pending: bool = True) -> None:
        """Stop workers, the heartbeat monitor and local subprocesses.

        Safe to call twice.  Unlike the in-process executors the cluster
        does *not* restart lazily: a shut-down cluster context is done.
        """
        workers, self._workers = self._workers, None
        if workers is not None:
            self._stop_monitor.set()
            goodbyes = []
            for handle in workers:
                if handle.lost is None:
                    goodbyes.append(
                        handle.submit(protocol.encode_message(protocol.SHUTDOWN, {}), 5.0)
                    )
            for future in goodbyes:
                try:
                    future.result(timeout=5.0)
                except Exception:
                    pass
            for handle in workers:
                handle.stop()
            if self._local_cluster is not None:
                self._local_cluster.close()
            self._push_cache.clear()
        super().shutdown(cancel_pending)

    close = shutdown

    def __exit__(self, *_exc: Any) -> None:
        self.shutdown()
