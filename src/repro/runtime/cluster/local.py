"""A local cluster of worker subprocesses, for tests and single-machine runs.

:class:`LocalCluster` spawns ``N`` ``repro-worker`` processes (as
``python -m repro.runtime.cluster.worker``, so it works from a source tree
without installing the console script) pointed at a driver address.  Each
worker's stderr goes to its own log file -- the CI equivalence job uploads
those on failure -- and :meth:`kill` exists so failure-detection tests can
take a worker down abruptly.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
from typing import IO

import repro


def _worker_environment() -> dict[str, str]:
    """The subprocess environment: inherit, but make ``repro`` importable."""
    environment = dict(os.environ)
    package_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    existing = environment.get("PYTHONPATH")
    if existing:
        if package_root not in existing.split(os.pathsep):
            environment["PYTHONPATH"] = package_root + os.pathsep + existing
    else:
        environment["PYTHONPATH"] = package_root
    return environment


class LocalCluster:
    """``num_workers`` worker subprocesses attached to one driver address.

    Logs land in ``log_dir`` (default: the ``DIABLO_WORKER_LOG_DIR``
    environment variable, else a fresh temporary directory) as
    ``worker-<index>.log``.
    """

    def __init__(self, num_workers: int, driver_address: str, log_dir: str | None = None):
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        self.driver_address = driver_address
        if log_dir is None:
            log_dir = os.environ.get("DIABLO_WORKER_LOG_DIR") or tempfile.mkdtemp(
                prefix="diablo-workers-"
            )
        os.makedirs(log_dir, exist_ok=True)
        self.log_dir = log_dir
        self.processes: list[subprocess.Popen | None] = []
        self._logs: list[IO[bytes]] = []
        environment = _worker_environment()
        try:
            for index in range(num_workers):
                log = open(os.path.join(log_dir, f"worker-{index}.log"), "wb")
                self._logs.append(log)
                self.processes.append(
                    subprocess.Popen(
                        [sys.executable, "-m", "repro.runtime.cluster.worker", driver_address],
                        stdout=log,
                        stderr=subprocess.STDOUT,
                        env=environment,
                    )
                )
        except BaseException:
            self.close()
            raise

    def kill(self, index: int) -> None:
        """Kill one worker abruptly (SIGKILL) -- for failure-detection tests."""
        process = self.processes[index]
        if process is not None and process.poll() is None:
            process.send_signal(signal.SIGKILL)
            process.wait()

    def poll(self) -> list[int | None]:
        """Exit codes by worker index (None while still running)."""
        return [None if p is None else p.poll() for p in self.processes]

    def close(self, timeout: float = 10.0) -> None:
        """Stop every worker; escalates terminate -> kill.  Idempotent.

        Workers normally exit by themselves once the driver socket closes,
        so by the time this runs most processes are already gone.
        """
        for index, process in enumerate(self.processes):
            if process is None:
                continue
            self.processes[index] = None
            if process.poll() is None:
                try:
                    # Grace period first: the driver closing its control
                    # socket already makes workers exit on their own.
                    process.wait(timeout=timeout)
                except subprocess.TimeoutExpired:
                    process.terminate()
                    try:
                        process.wait(timeout=5.0)
                    except subprocess.TimeoutExpired:
                        process.kill()
                        process.wait()
        for log in self._logs:
            try:
                log.close()
            except OSError:  # pragma: no cover - best-effort log flush
                pass
        self._logs = []

    def __enter__(self) -> "LocalCluster":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        alive = sum(1 for p in self.processes if p is not None and p.poll() is None)
        return f"LocalCluster({alive} alive, driver={self.driver_address}, logs={self.log_dir})"
