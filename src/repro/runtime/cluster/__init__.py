"""A real multi-process distributed backend (``executor_mode="cluster"``).

The cluster executor runs stages on long-lived worker processes connected to
the driver over TCP sockets:

* :mod:`~repro.runtime.cluster.wire` -- the closure-capable serializer that
  lets translated record functions (local closures over IR terms) cross the
  process boundary;
* :mod:`~repro.runtime.cluster.protocol` -- the length-prefixed framed-pickle
  wire protocol (versioned message types);
* :mod:`~repro.runtime.cluster.store` -- the worker-side partition / payload
  store and the :class:`~repro.runtime.cluster.store.RemotePayload` handle
  that moves shuffle data worker-to-worker;
* :mod:`~repro.runtime.cluster.worker` -- the ``repro-worker`` daemon;
* :mod:`~repro.runtime.cluster.context` -- the driver-side
  :class:`~repro.runtime.cluster.context.ClusterContext`;
* :mod:`~repro.runtime.cluster.local` -- the
  :class:`~repro.runtime.cluster.local.LocalCluster` subprocess fixture.
"""

from __future__ import annotations

from repro.errors import WorkerLostError
from repro.runtime.cluster.context import ClusterContext
from repro.runtime.cluster.local import LocalCluster

__all__ = ["ClusterContext", "LocalCluster", "WorkerLostError"]
