"""The driver-side entry point of the local DISC runtime.

A :class:`DistributedContext` plays the role of Spark's ``SparkContext``: it
creates datasets from driver data, creates broadcast variables, owns the
metrics counters, and decides how narrow tasks are executed.  Three executor
modes are supported:

* ``"sequential"`` -- one partition after another in the driver;
* ``"threads"`` -- one task per partition in a thread pool (fine for I/O- or
  C-extension-bound work, GIL-bound for pure-Python compute);
* ``"processes"`` -- fused stage chains dispatched to a
  :class:`~concurrent.futures.ProcessPoolExecutor` in partition chunks, so
  CPU-bound workloads use multiple cores.  A stage chain can only cross the
  process boundary when its task descriptor pickles (module-level functions,
  ``functools.partial`` over them); chains that close over driver state fall
  back to sequential in-driver execution, counted by
  ``metrics.process_fallbacks``.

The context also owns the out-of-core shuffle lifecycle: a
:class:`~repro.runtime.spill.ShuffleStore` that hands each shuffle a private
spill directory when ``spill_threshold_bytes`` is set (map tasks flush bucket
runs to disk over that budget; reduce tasks stream them back), removes it as
soon as the shuffle completes or fails, and removes everything on
``shutdown``/``close``.  ``DIABLO_SPILL_THRESHOLD_BYTES`` and
``DIABLO_SPILL_DIR`` environment variables supply defaults when the
constructor arguments are omitted, which is how the nightly CI job forces
every shuffle in the test suite through the spill path.
"""

from __future__ import annotations

import functools
import os
from collections import Counter
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Iterable, Mapping

from repro.errors import ExecutionError
from repro.runtime import stage as stage_mod
from repro.runtime.broadcast import Broadcast
from repro.runtime.dataset import (
    DEFAULT_BROADCAST_JOIN_THRESHOLD,
    Dataset,
    choose_broadcast_side,
)
from repro.runtime.metrics import Metrics
from repro.runtime.partitioner import HashPartitioner
from repro.runtime.spill import ShuffleStore
from repro.runtime.stage import NarrowStage, ShuffleStage

#: Executor modes accepted by :class:`DistributedContext`.
EXECUTOR_MODES = ("sequential", "threads", "processes")

#: Records sampled per map partition when the adaptive layer histograms a
#: shuffle's keys at force time (driver-side stride sample through the
#: input's captured narrow chain -- deterministic, so every executor mode
#: makes the same decision).
ADAPTIVE_SAMPLE_PER_PARTITION = 64

#: Minimum sampled records before any adaptive re-planning fires; tiny
#: inputs gain nothing and would make decisions from noise.
ADAPTIVE_MIN_SAMPLE = 32

#: At most this many keys are salted per shuffle (hot keys beyond the cap
#: are, by construction, below the per-key share of the capped set).
MAX_SALTED_KEYS = 8

#: groupByKey switches to a map-side ``("group",)`` combiner when the
#: sampled records-per-distinct-key duplication factor reaches this value --
#: below it the combiner would move nearly one record per input record and
#: only add per-task dict overhead.
GROUP_COMBINE_MIN_DUPLICATION = 4.0


class _ResolvedSource:
    """A stand-in ``ShuffleInput.source`` holding already-computed partitions.

    ``_try_broadcast_join`` runs each join input's captured narrow chain
    eagerly (the post-chain record counts drive the broadcast decision); when
    the join falls back to a shuffle, the rewritten input carries the chained
    partitions through this shim so the shuffle pass does not run the chain a
    second time."""

    __slots__ = ("partitions",)

    def __init__(self, partitions: list[list[Any]]):
        self.partitions = partitions


def _spill_threshold_from_env() -> int | None:
    """The ``DIABLO_SPILL_THRESHOLD_BYTES`` default: unset, empty or
    non-positive all mean "spilling disabled" (so ``=0`` is the natural way
    to switch it off in an environment that otherwise sets it)."""
    raw = os.environ.get("DIABLO_SPILL_THRESHOLD_BYTES", "").strip()
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"DIABLO_SPILL_THRESHOLD_BYTES must be an integer byte count, got {raw!r}"
        ) from None
    return value if value > 0 else None


def _columnar_from_env() -> bool | str:
    """The ``DIABLO_COLUMNAR`` default: ``"auto"``, a truthy or a falsy flag.

    Unset or empty means "record path" so plain contexts keep their
    historical behaviour; the api layer's :class:`~repro.api.DiabloConfig`
    defaults to ``"auto"`` explicitly.
    """
    raw = os.environ.get("DIABLO_COLUMNAR", "").strip().lower()
    if not raw:
        return False
    if raw == "auto":
        return "auto"
    if raw in ("1", "true", "on", "yes"):
        return True
    if raw in ("0", "false", "off", "no"):
        return False
    raise ValueError(
        f'DIABLO_COLUMNAR must be "auto", a truthy or a falsy flag, got {raw!r}'
    )


class DistributedContext:
    """Creates and executes datasets on the local DISC runtime.

    Args:
        num_partitions: default number of partitions for new datasets.
        executor: ``"sequential"``, ``"threads"`` or ``"processes"`` (see the
            module docstring).
        num_threads: size of the thread pool when ``executor="threads"``.
        num_processes: size of the process pool when ``executor="processes"``
            (defaults to ``min(num_partitions, cpu count)``).
        broadcast_join_threshold: joins whose build side has at most this many
            records run as broadcast hash joins instead of shuffle joins (the
            strategy knob; only affects performance, never results).
        spill_threshold_bytes: estimated in-memory bytes a shuffle map task
            may buffer before spilling its buckets to framed-pickle runs on
            disk (out-of-core shuffle).  ``None`` (the default) keeps every
            shuffle in memory; the ``DIABLO_SPILL_THRESHOLD_BYTES``
            environment variable supplies a default when unset.  Spilling
            only affects memory use, never results.
        spill_dir: directory hosting the spill files (``None`` = the system
            temp dir, or ``DIABLO_SPILL_DIR`` when set).
        plan_optimize: enable partition-aware shuffle elimination (narrow
            keyed passes, co-partitioned zip joins, pre-partitioned map-side
            bypass).  On by default; turning it off forces every wide
            operator down the full shuffle path (ablation / debugging knob;
            only affects performance and metrics, never results).
        columnar: execute vectorizable narrow chains and map-side combiners
            as columnar batch kernels (see :mod:`repro.runtime.columnar`).
            ``True`` batches every vectorizable run; ``"auto"`` batches only
            fully lowerable chains (and memoizes runtime fallbacks, so a
            chain that failed batch execution once never pays the conversion
            tax again); ``False`` keeps everything record-at-a-time.
            ``None`` (the default) reads the ``DIABLO_COLUMNAR`` environment
            variable, falling back to ``False``.  Per-partition fallback to
            the record path keeps results identical in every mode
            (performance and the ``vectorized_stages`` /
            ``columnar_fallbacks`` counters are the only observable
            difference).
        adaptive: adaptive skew-aware execution.  At force time the driver
            stride-samples an eligible keyed shuffle's input (through its
            captured narrow chain) into a per-key histogram; hot keys in
            ``reduce_by_key``/``aggregate_by_key`` are salted into per-task
            partials folded back exactly by the driver, heavily duplicated
            ``group_by_key`` inputs switch to a map-side grouping combiner,
            ``sort_by`` derives its range bounds from the frequency-weighted
            histogram, and auto-strategy joins size broadcast-vs-shuffle
            from actual post-chain record counts.  On by default; only
            performance and the ``salted_keys``/``adaptive_decisions``
            counters change, never results.
        plan_cache: plan-skeleton caching across ``while`` iterations.  The
            algebra layer reuses iteration 1's lowered plan tree for a loop
            body statement on iterations 2+, rebinding only the mutated
            input datasets instead of re-running the full build/annotate
            pass (``metrics.plan_cache_hits`` counts the reuses).  On by
            default; only performance and that counter change, never
            results.
    """

    #: Whether an unspilled shuffle's reduce side must still go through
    #: :meth:`run_tasks`.  False here (in-memory payloads concatenate for
    #: free in the driver); the cluster backend overrides it to True because
    #: its routed payloads are worker-resident references that only a task
    #: should resolve.
    _reduce_in_tasks = False

    def __init__(
        self,
        num_partitions: int = 8,
        executor: str = "sequential",
        num_threads: int | None = None,
        num_processes: int | None = None,
        broadcast_join_threshold: int = DEFAULT_BROADCAST_JOIN_THRESHOLD,
        spill_threshold_bytes: int | None = None,
        spill_dir: str | None = None,
        plan_optimize: bool = True,
        columnar: bool | str | None = None,
        adaptive: bool = True,
        plan_cache: bool = True,
    ):
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        if executor not in EXECUTOR_MODES:
            raise ValueError(f"unknown executor {executor!r}")
        if columnar is None:
            columnar = _columnar_from_env()
        if columnar not in (True, False, "auto"):
            raise ValueError('columnar must be True, False or "auto"')
        self.num_partitions = num_partitions
        self.executor = executor
        self.num_threads = num_threads or num_partitions
        self.num_processes = num_processes or min(num_partitions, os.cpu_count() or 2)
        self.broadcast_join_threshold = broadcast_join_threshold
        self.plan_optimize = plan_optimize
        self.columnar = columnar
        self.adaptive = adaptive
        self.plan_cache = plan_cache
        if spill_threshold_bytes is None:
            spill_threshold_bytes = _spill_threshold_from_env()
        self.spill_threshold_bytes = spill_threshold_bytes
        self.shuffle_store = ShuffleStore(
            spill_dir or os.environ.get("DIABLO_SPILL_DIR") or None, spill_threshold_bytes
        )
        self.metrics = Metrics()
        self._broadcast_counter = 0
        self._pool: ThreadPoolExecutor | None = None
        self._process_pool: ProcessPoolExecutor | None = None

    @classmethod
    def from_config(cls, config: Any) -> "DistributedContext":
        """Build a context from a configuration object.

        ``config`` is duck-typed (any object with the runtime fields of
        :class:`repro.api.DiabloConfig`) so the runtime layer does not depend
        on the api layer.
        """
        if getattr(config, "executor_mode", None) == "cluster" and cls is DistributedContext:
            from repro.runtime.cluster.context import ClusterContext

            return ClusterContext.from_config(config)
        return cls(
            num_partitions=config.num_partitions,
            executor=config.executor_mode,
            num_threads=config.num_threads,
            num_processes=config.num_processes,
            broadcast_join_threshold=config.broadcast_join_threshold,
            spill_threshold_bytes=config.spill_threshold_bytes,
            spill_dir=config.spill_dir,
            plan_optimize=getattr(config, "plan_optimize", True),
            columnar=getattr(config, "columnar", None),
            adaptive=getattr(config, "adaptive", True),
            plan_cache=getattr(config, "plan_cache", True),
        )

    # -- dataset creation -------------------------------------------------------

    def parallelize(self, data: Iterable[Any], num_partitions: int | None = None) -> Dataset:
        """Create a dataset from driver-side data, split into partitions."""
        records = list(data)
        return Dataset(self, self._split(records, num_partitions or self.num_partitions))

    def parallelize_raw(self, records: list[Any], num_partitions: int | None = None) -> Dataset:
        """Like :meth:`parallelize` but without copying an already-built list."""
        return Dataset(self, self._split(records, num_partitions or self.num_partitions))

    def parallelize_pairs(
        self, data: Mapping[Any, Any] | Iterable[tuple[Any, Any]], num_partitions: int | None = None
    ) -> Dataset:
        """Create a key-value dataset from a mapping or an iterable of pairs."""
        if isinstance(data, Mapping):
            records = list(data.items())
        else:
            records = list(data)
        return self.parallelize_raw(records, num_partitions)

    from_dict = parallelize_pairs

    def indexed(self, data: Iterable[Any], num_partitions: int | None = None) -> Dataset:
        """Create a key-value dataset ``(position, element)`` from a plain sequence.

        The translator represents every collection as an indexed (sparse
        array) dataset; this is the canonical way to feed it a plain list.
        """
        records = list(enumerate(data))
        return self.parallelize_raw(records, num_partitions)

    def range_dataset(self, lower: int, upper: int, num_partitions: int | None = None) -> Dataset:
        """The dataset of integers ``lower..upper`` (both bounds inclusive)."""
        if upper < lower:
            return self.empty()
        return self.parallelize_raw(list(range(lower, upper + 1)), num_partitions)

    def empty(self) -> Dataset:
        """A dataset with no records."""
        return Dataset(self, [[] for _ in range(self.num_partitions)])

    def broadcast(self, value: Any) -> Broadcast:
        """Create a broadcast variable holding ``value``."""
        self._broadcast_counter += 1
        self.metrics.record_broadcast()
        return Broadcast(value, self._broadcast_counter)

    def hash_partitioner(self, num_partitions: int | None = None) -> HashPartitioner:
        return HashPartitioner(num_partitions or self.num_partitions)

    # -- task execution -----------------------------------------------------------

    def run_tasks(
        self,
        task: Callable[[list[Any], int], list[Any]],
        partitions: list[list[Any]],
        task_spec: tuple[Any, ...] | None = None,
    ) -> list[list[Any]]:
        """Run ``task(partition, index)`` over every partition.

        ``task_spec`` is an optional picklable descriptor of the task (a tuple
        of :class:`~repro.runtime.stage.NarrowStage`) that lets the
        ``"processes"`` executor rebuild the fused task inside a worker
        process instead of pickling a driver closure.
        """
        try:
            return self._run_tasks(task, partitions, task_spec)
        finally:
            if self.columnar:
                # Fold the module-global batch-runtime counters (memoized
                # fallback skips, resident partition reuses, ...) into this
                # context's metrics; only driver-side executors produce them.
                self.metrics.record_columnar_runtime(stage_mod.consume_batch_stats())

    def _run_tasks(
        self,
        task: Callable[[list[Any], int], list[Any]],
        partitions: list[list[Any]],
        task_spec: tuple[Any, ...] | None = None,
    ) -> list[list[Any]]:
        if self.executor == "sequential" or len(partitions) <= 1:
            return [task(partition, index) for index, partition in enumerate(partitions)]
        if self.executor == "processes":
            if task_spec is not None:
                outcome = self._run_in_processes(task_spec, partitions)
                if outcome is not None:
                    self.metrics.record_parallel_tasks(len(partitions))
                    return outcome
            self.metrics.record_process_fallback()
            return [task(partition, index) for index, partition in enumerate(partitions)]
        pool = self._thread_pool()
        self.metrics.record_parallel_tasks(len(partitions))
        futures = [
            pool.submit(task, partition, index) for index, partition in enumerate(partitions)
        ]
        results: list[list[Any]] = []
        errors: list[BaseException] = []
        for future in futures:
            error = future.exception()
            if error is not None:
                errors.append(error)
            else:
                results.append(future.result())
        if errors:
            raise ExecutionError(f"{len(errors)} task(s) failed: {errors[0]}") from errors[0]
        return results

    def _run_in_processes(
        self, task_spec: tuple[Any, ...], partitions: list[list[Any]]
    ) -> list[list[Any]] | None:
        """Dispatch a fused stage chain to the process pool in partition chunks.

        Returns None when the work cannot cross the process boundary (the
        descriptor or the records do not pickle, or the pool broke); the
        caller then runs the task in the driver.
        """
        if not stage_mod.is_picklable(task_spec):
            return None
        pool = self._pool_of_processes()
        indexed = list(enumerate(partitions))
        chunk_count = min(self.num_processes, len(indexed))
        chunks = [indexed[offset::chunk_count] for offset in range(chunk_count)]
        futures = [
            pool.submit(stage_mod.run_fused_chunk, task_spec, chunk, self.columnar)
            for chunk in chunks
        ]
        results: dict[int, list[Any]] = {}
        task_errors: list[BaseException] = []
        infrastructure_errors: list[BaseException] = []
        for future in futures:
            error = future.exception()
            if error is None:
                for index, records in future.result():
                    results[index] = records
            elif isinstance(error, stage_mod.FusedTaskError):
                # The worker wraps failures of the task itself, so anything
                # else (PicklingError, BrokenProcessPool, ...) came from the
                # pool machinery, not from user code.
                task_errors.append(error.args[0] if error.args else error)
            else:
                infrastructure_errors.append(error)
        if task_errors:
            raise ExecutionError(
                f"{len(task_errors)} task(s) failed: {task_errors[0]}"
            ) from task_errors[0]
        if infrastructure_errors:
            # The pool (or the payload) could not carry the work; discard the
            # broken pool and let the caller fall back to the driver.
            self._shutdown_process_pool()
            return None
        return [results[index] for index in range(len(partitions))]

    # -- shuffle execution ---------------------------------------------------------

    def run_shuffle(self, shuffle: ShuffleStage) -> tuple[list[list[Any]], Any]:
        """Execute a :class:`~repro.runtime.stage.ShuffleStage` plan node.

        Map side: each input's narrow chain + combiner + partitioner bucketing
        runs as one :meth:`run_tasks` pass per input.  Map tasks emit one
        :class:`~repro.runtime.spill.BucketPayload` per reduce partition --
        spilled framed-pickle runs (when ``spill_threshold_bytes`` is set)
        plus the in-memory remainder -- and the driver only *routes* those
        descriptors; it never concatenates record lists.  The reduce side
        (streaming merge/group/join of each bucket) is a second
        :meth:`run_tasks` pass.  Joins with an ``"auto"``/``"broadcast"``
        strategy may instead resolve to a broadcast hash join (no shuffle).

        The shuffle's spill directory is removed as soon as the reduce side
        has consumed the runs -- including when either side raises.

        Returns ``(partitions, partitioner)`` for the result dataset.
        """
        if shuffle.join_type is not None and shuffle.strategy != "shuffle":
            resolved = self._try_broadcast_join(shuffle)
            if not isinstance(resolved, ShuffleStage):
                return resolved
            # Falling back to a shuffle: the returned stage carries the
            # already-chained inputs (the sizing pass ran their chains).
            shuffle = resolved
        if shuffle.join_type is not None:
            self.metrics.record_join_strategy("shuffle")

        salt_plan: tuple[tuple[Any, ...], Callable[[Any, Any], Any]] | None = None
        if self.adaptive:
            shuffle, salt_plan = self._adapt_shuffle(shuffle)

        spill = self.shuffle_store.begin_shuffle()
        try:
            return self._run_shuffle_spillable(shuffle, spill, salt_plan)
        finally:
            self.shuffle_store.end_shuffle(spill)

    # -- adaptive re-planning (force-time skew handling) ---------------------------

    def _sample_shuffle_keys(self, shuffle_input: Any) -> Counter | None:
        """Driver-side per-key histogram of one shuffle input.

        Stride-samples up to :data:`ADAPTIVE_SAMPLE_PER_PARTITION` records
        per source partition and runs the input's captured narrow chain over
        the sample, so the histogram describes the keys that will actually be
        bucketed.  A pure function of the source partitions -- every executor
        mode derives the same histogram, keeping adaptive decisions (and
        therefore results) executor-independent.  Returns None when the
        sample cannot be keyed (the decision is then simply skipped).
        """
        try:
            partitions = shuffle_input.source.partitions
            task = (
                stage_mod.compose(shuffle_input.stages) if shuffle_input.stages else None
            )
            histogram: Counter = Counter()
            for index, partition in enumerate(partitions):
                if not partition:
                    continue
                step = max(1, len(partition) // ADAPTIVE_SAMPLE_PER_PARTITION)
                sample = partition[::step]
                if task is not None:
                    sample = task(list(sample), index)
                for record in sample:
                    histogram[record[0]] += 1
            return histogram
        except Exception:
            return None

    def _adapt_shuffle(
        self, shuffle: ShuffleStage
    ) -> tuple[ShuffleStage, tuple[tuple[Any, ...], Callable[[Any, Any], Any]] | None]:
        """Re-plan an eligible single-input keyed shuffle from a key sample.

        Two rewrites, both decided in the driver *before* any map task runs
        (so every task agrees on the plan):

        * **salted reduce** (``reduceByKey``/``aggregateByKey``): keys whose
          sampled share fills at least half an average reduce partition are
          salted by map task index (see
          :func:`repro.runtime.stage.salted_shuffle_write`); returns a salt
          plan ``(hot keys in decision order, combine fn)`` that
          ``_fold_salted`` uses for the exact driver-side final fold.
        * **map-side grouping** (``groupByKey``): when the sampled
          duplication factor reaches
          :data:`GROUP_COMBINE_MIN_DUPLICATION`, a ``("group",)`` combiner
          collapses each task's records to one ``(key, [values])`` partial
          per key and the reduce side concatenates partials -- same output,
          a fraction of the shuffled records.
        """
        if (
            len(shuffle.inputs) != 1
            or shuffle.partitioner is None
            or shuffle.key_function is not None
            or shuffle.sort_ascending is not None
            or shuffle.join_type is not None
            or len(shuffle.reduce_stages) != 1
        ):
            return shuffle, None
        shuffle_input = shuffle.inputs[0]
        reduce_fn = shuffle.reduce_stages[0].function
        wants_salting = (
            shuffle.operation in ("reduceByKey", "aggregateByKey")
            and shuffle_input.combiner is not None
            and isinstance(reduce_fn, functools.partial)
            and reduce_fn.func is stage_mod.reduce_bucket
            and shuffle.num_output_partitions > 1
        )
        wants_grouping = (
            shuffle.operation == "groupByKey"
            and shuffle_input.combiner is None
            and reduce_fn is stage_mod.group_bucket
            and not self._can_bypass_map_side(
                shuffle, shuffle_input, shuffle_input.source.num_partitions
            )
        )
        if not (wants_salting or wants_grouping):
            return shuffle, None
        histogram = self._sample_shuffle_keys(shuffle_input)
        if histogram is None:
            return shuffle, None
        total = sum(histogram.values())
        if total < ADAPTIVE_MIN_SAMPLE:
            return shuffle, None

        if wants_grouping:
            distinct = len(histogram)
            if total < distinct * GROUP_COMBINE_MIN_DUPLICATION:
                return shuffle, None
            self.metrics.record_adaptive_decision(
                shuffle.operation,
                "map-side-grouping",
                f"sampled duplication {total / distinct:.1f}x over {distinct} key(s)",
            )
            rewritten = shuffle._replace(
                inputs=(shuffle_input._replace(combiner=("group",)),),
                reduce_stages=(
                    NarrowStage(stage_mod.PARTITIONS, stage_mod.group_merge_bucket),
                ),
            )
            return rewritten, None

        # Salted reduce: hot = sampled share >= half an average partition.
        num_output = shuffle.num_output_partitions
        hot = tuple(
            key
            for key, count in histogram.most_common(MAX_SALTED_KEYS)
            if count * num_output * 2 >= total
        )
        if not hot:
            return shuffle, None
        combine_fn = reduce_fn.args[0]
        shares = ", ".join(
            f"{histogram[key] * 100 // total}%" for key in hot
        )
        self.metrics.record_salted_keys(len(hot))
        self.metrics.record_adaptive_decision(
            shuffle.operation,
            "salted-reduce",
            f"{len(hot)} hot key(s) at sampled share(s) {shares}",
        )
        return shuffle, (hot, combine_fn)

    def _fold_salted(
        self,
        partitions: list[list[Any]],
        salt_plan: tuple[tuple[Any, ...], Callable[[Any, Any], Any]],
        partitioner: Any,
    ) -> list[list[Any]]:
        """Fold salted per-task partials back into their home partitions.

        Each hot key's partials are folded left-to-right in map-task order --
        exactly the order the unsalted reduce side would have combined them
        in (``iter_merged`` streams payloads in map-task order and a
        combined map task emits one partial per key) -- so the result is
        bit-identical for *any* combine function, associative-only float
        sums included.  The folded record lands in the key's home partition,
        keeping the shuffle's claimed output partitioner truthful.
        """
        hot_keys, combine_fn = salt_plan
        salted: dict[Any, list[tuple[int, Any]]] = {}
        stripped: list[list[Any]] = []
        for partition in partitions:
            kept: list[Any] = []
            for record in partition:
                if isinstance(record[0], stage_mod.SaltedKey):
                    salted_key = record[0]
                    salted.setdefault(salted_key.key, []).append(
                        (salted_key.salt, record[1])
                    )
                else:
                    kept.append(record)
            stripped.append(kept)
        for key in hot_keys:
            partials = salted.get(key)
            if not partials:
                continue
            partials.sort(key=lambda entry: entry[0])
            folded = partials[0][1]
            for _, value in partials[1:]:
                folded = combine_fn(folded, value)
            stripped[partitioner.partition(key)].append((key, folded))
        return stripped

    def _run_shuffle_spillable(
        self,
        shuffle: ShuffleStage,
        spill: Any,
        salt_plan: tuple[tuple[Any, ...], Callable[[Any, Any], Any]] | None = None,
    ) -> tuple[list[list[Any]], Any]:
        """The map and reduce passes of a shuffle, writing through ``spill``."""
        tagged = len(shuffle.inputs) > 1
        sort_spec = (
            (shuffle.key_function, shuffle.sort_ascending)
            if shuffle.sort_ascending is not None and spill is not None
            else None
        )
        merged: list[list[Any]] = [[] for _ in range(shuffle.num_output_partitions)]
        total_records = total_bytes = map_tasks = 0
        spilled_bytes = spill_files = peak_memory = 0
        for input_index, shuffle_input in enumerate(shuffle.inputs):
            source_partitions = shuffle_input.source.partitions
            chain = shuffle_input.stages
            if tagged:
                chain += (
                    NarrowStage(stage_mod.MAP, functools.partial(stage_mod.tag_record, input_index)),
                )
            if self._can_bypass_map_side(shuffle, shuffle_input, len(source_partitions)):
                # The input is already partitioned exactly like the shuffle:
                # partition i's records all belong to reduce partition i, so
                # the bucketing/spilling pass is skipped and this side moves
                # zero shuffle traffic (the narrow chain still runs).
                writer = functools.partial(
                    stage_mod.prepartitioned_write, shuffle.num_output_partitions
                )
                self.metrics.record_prepartitioned_input(
                    shuffle.operation,
                    f"input {input_index} already partitioned by "
                    f"{type(shuffle.partitioner).__name__}({shuffle.partitioner.num_partitions})",
                )
            elif shuffle.partitioner is None:
                writer = functools.partial(
                    stage_mod.repartition_write,
                    shuffle.num_output_partitions,
                    spill,
                    input_index,
                )
            elif salt_plan is not None:
                writer = functools.partial(
                    stage_mod.salted_shuffle_write,
                    shuffle.partitioner,
                    shuffle_input.combiner,
                    shuffle.key_function or stage_mod.pair_key,
                    spill,
                    input_index,
                    sort_spec,
                    frozenset(salt_plan[0]),
                    columnar=self.columnar,
                )
            else:
                key_of = shuffle.key_function or (
                    stage_mod.tagged_key if tagged else stage_mod.pair_key
                )
                writer = functools.partial(
                    stage_mod.shuffle_write,
                    shuffle.partitioner,
                    shuffle_input.combiner,
                    key_of,
                    spill,
                    input_index,
                    sort_spec,
                    columnar=self.columnar,
                )
            chain += (NarrowStage(stage_mod.PARTITIONS_INDEXED, writer),)
            if self.columnar:
                self.metrics.record_vectorization(
                    *stage_mod.vectorization_counts(chain, self.columnar)
                )
            outputs = self.run_tasks(
                stage_mod.compose(chain, self.columnar), source_partitions, task_spec=chain
            )
            records_in = records_out = bytes_out = 0
            for output in outputs:
                stats: stage_mod.ShuffleWriteStats = output[0]
                records_in += stats.records_in
                records_out += stats.records_out
                bytes_out += stats.bytes_out
                spilled_bytes += stats.spilled_bytes
                spill_files += stats.spill_files
                peak_memory = max(peak_memory, stats.peak_memory)
                for bucket_index, payload in enumerate(output[1:]):
                    # record_count rather than runs/records truthiness: a
                    # cluster RemotePayload knows its count for free, while
                    # touching .records would fetch it over the network.
                    if payload.record_count:
                        merged[bucket_index].append(payload)
            if shuffle_input.captured_operators:
                self.metrics.record_fused(shuffle_input.captured_operators)
            self.metrics.record_narrow(len(source_partitions), records_in)
            if shuffle_input.combiner is not None:
                self.metrics.record_combiner(records_in, records_out)
            total_records += records_out
            total_bytes += bytes_out
            map_tasks += len(source_partitions)

        # Spill traffic is map-side work: account for it before the reduce
        # pass so a reduce failure still reports what was written to disk.
        if spill is not None:
            self.metrics.record_spill(spilled_bytes, spill_files, peak_memory)

        if shuffle.reduce_stages:
            result = self.run_tasks(
                stage_mod.compose(shuffle.reduce_stages, self.columnar),
                merged,
                task_spec=shuffle.reduce_stages,
            )
            reduce_tasks = len(merged)
        elif spill is not None or self._reduce_in_tasks:
            # The routed payloads *are* the result (repartition/partitionBy),
            # but spilled runs still need reading -- a real reduce pass.
            # The cluster backend forces this path even without spilling:
            # its payloads are remote references that workers resolve.
            read_stages = (NarrowStage(stage_mod.PARTITIONS, stage_mod.read_bucket),)
            result = self.run_tasks(
                stage_mod.compose(read_stages), merged, task_spec=read_stages
            )
            reduce_tasks = len(merged)
        else:
            # In-memory payloads concatenate for free in the driver; a
            # run_tasks pass here would only round-trip every record through
            # the worker pool to do the same thing.
            result = [stage_mod.read_bucket(bucket) for bucket in merged]
            reduce_tasks = 0
        if shuffle.reverse_output:
            result = list(reversed(result))
        if salt_plan is not None:
            result = self._fold_salted(result, salt_plan, shuffle.partitioner)
        self.metrics.record_shuffle_stage(
            shuffle.operation, total_records, total_bytes, map_tasks, reduce_tasks
        )
        return result, shuffle.result_partitioner

    def _can_bypass_map_side(
        self, shuffle: ShuffleStage, shuffle_input: Any, num_source_partitions: int
    ) -> bool:
        """Whether one shuffle input needs no map-side bucketing pass.

        Requires the input's effective partitioner (tracked through its
        pending narrow chain) to equal the shuffle's bucketing partitioner,
        with default pair-key bucketing and no map-side combiner (single-
        input combiner operators are already eliminated at the Dataset layer,
        so this guard is for correctness, not coverage).
        """
        return (
            self.plan_optimize
            and shuffle.partitioner is not None
            and shuffle.key_function is None
            and shuffle.sort_ascending is None
            and shuffle_input.combiner is None
            and shuffle_input.partitioner is not None
            and shuffle_input.partitioner == shuffle.partitioner
            and num_source_partitions == shuffle.num_output_partitions
        )

    def _resolve_join_input(self, shuffle_input: Any) -> tuple[Any, list[list[Any]]]:
        """Run one join input's captured narrow chain eagerly.

        Returns ``(rewritten_input, post-chain partitions)``: the rewritten
        input holds the chained partitions behind a :class:`_ResolvedSource`
        with an empty stage chain, so a join that falls back to a shuffle
        does not run the chain a second time."""
        partitions = shuffle_input.source.partitions
        if not shuffle_input.stages:
            return shuffle_input, partitions
        if self.columnar:
            self.metrics.record_vectorization(
                *stage_mod.vectorization_counts(shuffle_input.stages, self.columnar)
            )
        chained = self.run_tasks(
            stage_mod.compose(shuffle_input.stages, self.columnar),
            partitions,
            task_spec=shuffle_input.stages,
        )
        if shuffle_input.captured_operators:
            self.metrics.record_fused(shuffle_input.captured_operators)
        self.metrics.record_narrow(len(chained), sum(len(p) for p in chained))
        resolved = shuffle_input._replace(
            source=_ResolvedSource(chained), stages=(), captured_operators=0
        )
        return resolved, chained

    def _try_broadcast_join(self, shuffle: ShuffleStage) -> tuple[list[list[Any]], Any] | ShuffleStage:
        """Resolve a join with an auto/broadcast strategy.

        Returns the executed broadcast hash join, or a (possibly rewritten)
        :class:`ShuffleStage` when the join must shuffle (both sides above
        the threshold, or an unsupported direction -- full outer joins always
        shuffle).  Sizes compare each side's record count *after* its
        captured narrow chain runs: the chain has to run either way, and
        sizing the raw source would never broadcast a side that a captured
        ``filter`` shrinks under the threshold."""
        how = shuffle.join_type
        if how == "full":
            return shuffle
        left_input, right_input = shuffle.inputs
        resolved = self.adaptive or shuffle.strategy == "broadcast"
        if resolved:
            # Adaptive sizing: run the captured narrow chains first and
            # re-decide broadcast-vs-shuffle from the *actual* post-chain
            # record counts (a captured filter may shrink a side far under
            # the threshold; the chain has to run either way).
            left_input, left_partitions = self._resolve_join_input(left_input)
            right_input, right_partitions = self._resolve_join_input(right_input)
            shuffle = shuffle._replace(inputs=(left_input, right_input))
        else:
            # Static sizing (ablation): decide from the raw source sizes,
            # as a plan-time-only optimizer would.
            left_partitions = left_input.source.partitions
            right_partitions = right_input.source.partitions
        left_count = sum(len(p) for p in left_partitions)
        right_count = sum(len(p) for p in right_partitions)
        eligible = {"inner": ("left", "right"), "left": ("right",), "right": ("left",)}.get(how, ())
        if shuffle.strategy == "broadcast":
            side = "left" if how == "right" else "right"
        else:
            threshold = self.broadcast_join_threshold
            side = choose_broadcast_side(left_count, right_count, threshold)
            if side not in eligible:
                # The smaller side cannot be broadcast for this join type;
                # the other side may still qualify.
                other = "left" if side == "right" else "right"
                other_count = left_count if other == "left" else right_count
                if other in eligible and other_count <= threshold:
                    side = other
                else:
                    return shuffle
            if self.adaptive:
                self.metrics.record_adaptive_decision(
                    shuffle.operation,
                    "broadcast-join",
                    f"post-chain sizes {left_count}/{right_count} records, "
                    f"broadcast {side} (threshold {threshold})",
                )
        if not resolved:
            left_input, left_partitions = self._resolve_join_input(left_input)
            right_input, right_partitions = self._resolve_join_input(right_input)
            shuffle = shuffle._replace(inputs=(left_input, right_input))

        build_partitions = left_partitions if side == "left" else right_partitions
        probe_partitions = right_partitions if side == "left" else left_partitions
        lookup: dict[Any, list[Any]] = {}
        for partition in build_partitions:
            for key, value in partition:
                lookup.setdefault(key, []).append(value)
        self.metrics.record_broadcast()

        probe_chain = (
            NarrowStage(
                stage_mod.PARTITIONS,
                functools.partial(stage_mod.broadcast_join_partition, how, side, lookup),
            ),
        )
        result = self.run_tasks(
            stage_mod.compose(probe_chain), probe_partitions, task_spec=probe_chain
        )
        self.metrics.record_narrow(
            len(probe_partitions), sum(len(p) for p in probe_partitions)
        )
        self.metrics.record_join_strategy("broadcast")
        return result, None

    def _thread_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.num_threads)
        return self._pool

    def _pool_of_processes(self) -> ProcessPoolExecutor:
        if self._process_pool is None:
            self._process_pool = ProcessPoolExecutor(max_workers=self.num_processes)
        return self._process_pool

    def _shutdown_process_pool(self) -> None:
        if self._process_pool is not None:
            self._process_pool.shutdown(wait=False, cancel_futures=True)
            self._process_pool = None

    def shutdown(self, cancel_pending: bool = True) -> None:
        """Stop the worker pools and remove spill files; safe to call twice.

        The context stays usable afterwards -- pools and spill directories
        are recreated lazily on the next parallel task / spilled shuffle --
        so ``shutdown`` is a release of OS resources, not a terminal state.
        With ``cancel_pending=False`` pending process-pool tasks run to
        completion before the pool closes (used when another caller may
        still be mid-computation on this context, e.g. jit context
        eviction); the spill root is then left for the store's GC finalizer,
        because an in-flight shuffle on another thread may still be reading
        and writing runs under it.
        """
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._process_pool is not None:
            if cancel_pending:
                self._shutdown_process_pool()
            else:
                self._process_pool.shutdown(wait=True)
                self._process_pool = None
        if cancel_pending:
            self.shuffle_store.close()

    #: Alias so contexts close like other resource-owning Python objects.
    close = shutdown

    def __enter__(self) -> "DistributedContext":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.shutdown()

    # -- helpers --------------------------------------------------------------------

    @staticmethod
    def _split(records: list[Any], num_partitions: int) -> list[list[Any]]:
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        total = len(records)
        base, extra = divmod(total, num_partitions)
        partitions: list[list[Any]] = []
        start = 0
        for index in range(num_partitions):
            size = base + (1 if index < extra else 0)
            partitions.append(records[start : start + size])
            start += size
        return partitions
