"""The driver-side entry point of the local DISC runtime.

A :class:`DistributedContext` plays the role of Spark's ``SparkContext``: it
creates datasets from driver data, creates broadcast variables, owns the
metrics counters, and decides how narrow tasks are executed (sequentially or
with a thread pool, one task per partition).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Iterable, Mapping

from repro.errors import ExecutionError
from repro.runtime.broadcast import Broadcast
from repro.runtime.dataset import Dataset
from repro.runtime.metrics import Metrics
from repro.runtime.partitioner import HashPartitioner


class DistributedContext:
    """Creates and executes datasets on the local DISC runtime.

    Args:
        num_partitions: default number of partitions for new datasets.
        executor: ``"sequential"`` runs one partition after another in the
            driver; ``"threads"`` runs partitions concurrently in a thread
            pool (``num_threads`` workers).
        num_threads: size of the thread pool when ``executor="threads"``.
    """

    def __init__(
        self,
        num_partitions: int = 8,
        executor: str = "sequential",
        num_threads: int | None = None,
    ):
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        if executor not in ("sequential", "threads"):
            raise ValueError(f"unknown executor {executor!r}")
        self.num_partitions = num_partitions
        self.executor = executor
        self.num_threads = num_threads or num_partitions
        self.metrics = Metrics()
        self._broadcast_counter = 0
        self._pool: ThreadPoolExecutor | None = None

    # -- dataset creation -------------------------------------------------------

    def parallelize(self, data: Iterable[Any], num_partitions: int | None = None) -> Dataset:
        """Create a dataset from driver-side data, split into partitions."""
        records = list(data)
        return Dataset(self, self._split(records, num_partitions or self.num_partitions))

    def parallelize_raw(self, records: list[Any], num_partitions: int | None = None) -> Dataset:
        """Like :meth:`parallelize` but without copying an already-built list."""
        return Dataset(self, self._split(records, num_partitions or self.num_partitions))

    def parallelize_pairs(
        self, data: Mapping[Any, Any] | Iterable[tuple[Any, Any]], num_partitions: int | None = None
    ) -> Dataset:
        """Create a key-value dataset from a mapping or an iterable of pairs."""
        if isinstance(data, Mapping):
            records = list(data.items())
        else:
            records = list(data)
        return self.parallelize_raw(records, num_partitions)

    from_dict = parallelize_pairs

    def indexed(self, data: Iterable[Any], num_partitions: int | None = None) -> Dataset:
        """Create a key-value dataset ``(position, element)`` from a plain sequence.

        The translator represents every collection as an indexed (sparse
        array) dataset; this is the canonical way to feed it a plain list.
        """
        records = list(enumerate(data))
        return self.parallelize_raw(records, num_partitions)

    def range_dataset(self, lower: int, upper: int, num_partitions: int | None = None) -> Dataset:
        """The dataset of integers ``lower..upper`` (both bounds inclusive)."""
        if upper < lower:
            return self.empty()
        return self.parallelize_raw(list(range(lower, upper + 1)), num_partitions)

    def empty(self) -> Dataset:
        """A dataset with no records."""
        return Dataset(self, [[] for _ in range(self.num_partitions)])

    def broadcast(self, value: Any) -> Broadcast:
        """Create a broadcast variable holding ``value``."""
        self._broadcast_counter += 1
        self.metrics.record_broadcast()
        return Broadcast(value, self._broadcast_counter)

    def hash_partitioner(self, num_partitions: int | None = None) -> HashPartitioner:
        return HashPartitioner(num_partitions or self.num_partitions)

    # -- task execution -----------------------------------------------------------

    def run_tasks(
        self, task: Callable[[list[Any]], list[Any]], partitions: list[list[Any]]
    ) -> list[list[Any]]:
        """Run ``task`` over every partition, honoring the executor mode."""
        if self.executor == "sequential" or len(partitions) <= 1:
            return [task(partition) for partition in partitions]
        pool = self._thread_pool()
        futures = [pool.submit(task, partition) for partition in partitions]
        results: list[list[Any]] = []
        errors: list[BaseException] = []
        for future in futures:
            error = future.exception()
            if error is not None:
                errors.append(error)
            else:
                results.append(future.result())
        if errors:
            raise ExecutionError(f"{len(errors)} task(s) failed: {errors[0]}") from errors[0]
        return results

    def _thread_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.num_threads)
        return self._pool

    def shutdown(self) -> None:
        """Stop the thread pool (if one was started)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "DistributedContext":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.shutdown()

    # -- helpers --------------------------------------------------------------------

    @staticmethod
    def _split(records: list[Any], num_partitions: int) -> list[list[Any]]:
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        total = len(records)
        base, extra = divmod(total, num_partitions)
        partitions: list[list[Any]] = []
        start = 0
        for index in range(num_partitions):
            size = base + (1 if index < extra else 0)
            partitions.append(records[start : start + size])
            start += size
        return partitions
