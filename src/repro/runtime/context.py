"""The driver-side entry point of the local DISC runtime.

A :class:`DistributedContext` plays the role of Spark's ``SparkContext``: it
creates datasets from driver data, creates broadcast variables, owns the
metrics counters, and decides how narrow tasks are executed.  Three executor
modes are supported:

* ``"sequential"`` -- one partition after another in the driver;
* ``"threads"`` -- one task per partition in a thread pool (fine for I/O- or
  C-extension-bound work, GIL-bound for pure-Python compute);
* ``"processes"`` -- fused stage chains dispatched to a
  :class:`~concurrent.futures.ProcessPoolExecutor` in partition chunks, so
  CPU-bound workloads use multiple cores.  A stage chain can only cross the
  process boundary when its task descriptor pickles (module-level functions,
  ``functools.partial`` over them); chains that close over driver state fall
  back to sequential in-driver execution, counted by
  ``metrics.process_fallbacks``.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Iterable, Mapping

from repro.errors import ExecutionError
from repro.runtime import stage as stage_mod
from repro.runtime.broadcast import Broadcast
from repro.runtime.dataset import Dataset
from repro.runtime.metrics import Metrics
from repro.runtime.partitioner import HashPartitioner

#: Executor modes accepted by :class:`DistributedContext`.
EXECUTOR_MODES = ("sequential", "threads", "processes")


class DistributedContext:
    """Creates and executes datasets on the local DISC runtime.

    Args:
        num_partitions: default number of partitions for new datasets.
        executor: ``"sequential"``, ``"threads"`` or ``"processes"`` (see the
            module docstring).
        num_threads: size of the thread pool when ``executor="threads"``.
        num_processes: size of the process pool when ``executor="processes"``
            (defaults to ``min(num_partitions, cpu count)``).
    """

    def __init__(
        self,
        num_partitions: int = 8,
        executor: str = "sequential",
        num_threads: int | None = None,
        num_processes: int | None = None,
    ):
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        if executor not in EXECUTOR_MODES:
            raise ValueError(f"unknown executor {executor!r}")
        self.num_partitions = num_partitions
        self.executor = executor
        self.num_threads = num_threads or num_partitions
        self.num_processes = num_processes or min(num_partitions, os.cpu_count() or 2)
        self.metrics = Metrics()
        self._broadcast_counter = 0
        self._pool: ThreadPoolExecutor | None = None
        self._process_pool: ProcessPoolExecutor | None = None

    # -- dataset creation -------------------------------------------------------

    def parallelize(self, data: Iterable[Any], num_partitions: int | None = None) -> Dataset:
        """Create a dataset from driver-side data, split into partitions."""
        records = list(data)
        return Dataset(self, self._split(records, num_partitions or self.num_partitions))

    def parallelize_raw(self, records: list[Any], num_partitions: int | None = None) -> Dataset:
        """Like :meth:`parallelize` but without copying an already-built list."""
        return Dataset(self, self._split(records, num_partitions or self.num_partitions))

    def parallelize_pairs(
        self, data: Mapping[Any, Any] | Iterable[tuple[Any, Any]], num_partitions: int | None = None
    ) -> Dataset:
        """Create a key-value dataset from a mapping or an iterable of pairs."""
        if isinstance(data, Mapping):
            records = list(data.items())
        else:
            records = list(data)
        return self.parallelize_raw(records, num_partitions)

    from_dict = parallelize_pairs

    def indexed(self, data: Iterable[Any], num_partitions: int | None = None) -> Dataset:
        """Create a key-value dataset ``(position, element)`` from a plain sequence.

        The translator represents every collection as an indexed (sparse
        array) dataset; this is the canonical way to feed it a plain list.
        """
        records = list(enumerate(data))
        return self.parallelize_raw(records, num_partitions)

    def range_dataset(self, lower: int, upper: int, num_partitions: int | None = None) -> Dataset:
        """The dataset of integers ``lower..upper`` (both bounds inclusive)."""
        if upper < lower:
            return self.empty()
        return self.parallelize_raw(list(range(lower, upper + 1)), num_partitions)

    def empty(self) -> Dataset:
        """A dataset with no records."""
        return Dataset(self, [[] for _ in range(self.num_partitions)])

    def broadcast(self, value: Any) -> Broadcast:
        """Create a broadcast variable holding ``value``."""
        self._broadcast_counter += 1
        self.metrics.record_broadcast()
        return Broadcast(value, self._broadcast_counter)

    def hash_partitioner(self, num_partitions: int | None = None) -> HashPartitioner:
        return HashPartitioner(num_partitions or self.num_partitions)

    # -- task execution -----------------------------------------------------------

    def run_tasks(
        self,
        task: Callable[[list[Any], int], list[Any]],
        partitions: list[list[Any]],
        task_spec: tuple[Any, ...] | None = None,
    ) -> list[list[Any]]:
        """Run ``task(partition, index)`` over every partition.

        ``task_spec`` is an optional picklable descriptor of the task (a tuple
        of :class:`~repro.runtime.stage.NarrowStage`) that lets the
        ``"processes"`` executor rebuild the fused task inside a worker
        process instead of pickling a driver closure.
        """
        if self.executor == "sequential" or len(partitions) <= 1:
            return [task(partition, index) for index, partition in enumerate(partitions)]
        if self.executor == "processes":
            if task_spec is not None:
                outcome = self._run_in_processes(task_spec, partitions)
                if outcome is not None:
                    return outcome
            self.metrics.record_process_fallback()
            return [task(partition, index) for index, partition in enumerate(partitions)]
        pool = self._thread_pool()
        futures = [
            pool.submit(task, partition, index) for index, partition in enumerate(partitions)
        ]
        results: list[list[Any]] = []
        errors: list[BaseException] = []
        for future in futures:
            error = future.exception()
            if error is not None:
                errors.append(error)
            else:
                results.append(future.result())
        if errors:
            raise ExecutionError(f"{len(errors)} task(s) failed: {errors[0]}") from errors[0]
        return results

    def _run_in_processes(
        self, task_spec: tuple[Any, ...], partitions: list[list[Any]]
    ) -> list[list[Any]] | None:
        """Dispatch a fused stage chain to the process pool in partition chunks.

        Returns None when the work cannot cross the process boundary (the
        descriptor or the records do not pickle, or the pool broke); the
        caller then runs the task in the driver.
        """
        if not stage_mod.is_picklable(task_spec):
            return None
        pool = self._pool_of_processes()
        indexed = list(enumerate(partitions))
        chunk_count = min(self.num_processes, len(indexed))
        chunks = [indexed[offset::chunk_count] for offset in range(chunk_count)]
        futures = [pool.submit(stage_mod.run_fused_chunk, task_spec, chunk) for chunk in chunks]
        results: dict[int, list[Any]] = {}
        task_errors: list[BaseException] = []
        infrastructure_errors: list[BaseException] = []
        for future in futures:
            error = future.exception()
            if error is None:
                for index, records in future.result():
                    results[index] = records
            elif isinstance(error, stage_mod.FusedTaskError):
                # The worker wraps failures of the task itself, so anything
                # else (PicklingError, BrokenProcessPool, ...) came from the
                # pool machinery, not from user code.
                task_errors.append(error.args[0] if error.args else error)
            else:
                infrastructure_errors.append(error)
        if task_errors:
            raise ExecutionError(
                f"{len(task_errors)} task(s) failed: {task_errors[0]}"
            ) from task_errors[0]
        if infrastructure_errors:
            # The pool (or the payload) could not carry the work; discard the
            # broken pool and let the caller fall back to the driver.
            self._shutdown_process_pool()
            return None
        return [results[index] for index in range(len(partitions))]

    def _thread_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.num_threads)
        return self._pool

    def _pool_of_processes(self) -> ProcessPoolExecutor:
        if self._process_pool is None:
            self._process_pool = ProcessPoolExecutor(max_workers=self.num_processes)
        return self._process_pool

    def _shutdown_process_pool(self) -> None:
        if self._process_pool is not None:
            self._process_pool.shutdown(wait=False, cancel_futures=True)
            self._process_pool = None

    def shutdown(self) -> None:
        """Stop the worker pools (if any were started)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._shutdown_process_pool()

    def __enter__(self) -> "DistributedContext":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.shutdown()

    # -- helpers --------------------------------------------------------------------

    @staticmethod
    def _split(records: list[Any], num_partitions: int) -> list[list[Any]]:
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        total = len(records)
        base, extra = divmod(total, num_partitions)
        partitions: list[list[Any]] = []
        start = 0
        for index in range(num_partitions):
            size = base + (1 if index < extra else 0)
            partitions.append(records[start : start + size])
            start += size
        return partitions
