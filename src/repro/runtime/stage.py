"""Fused narrow-stage descriptors for the lazy Dataset engine.

A narrow operation (``map``, ``flat_map``, ``filter``, ``map_values``,
``map_partitions``) does not move records between partitions, so any chain of
them can run as a *single* per-partition pass.  The lazy
:class:`~repro.runtime.dataset.Dataset` records each pending operation as a
:class:`NarrowStage`; when the chain is forced (by a shuffle or an action) the
stages are composed by :func:`compose` into one task and executed in one
``run_tasks`` pass.

A tuple of stages is also the *task descriptor* shipped to worker processes by
the ``"processes"`` executor: it is picklable whenever every stage function is
(module-level functions, ``functools.partial`` over module-level functions).
:func:`run_fused_chunk` is the module-level worker entry point, so the process
pool never has to pickle a closure of the driver's state.
"""

from __future__ import annotations

import pickle
import random
from typing import Any, Callable, Iterable, NamedTuple

#: Stage kinds understood by :func:`apply_stage`.
MAP = "map"
FLAT_MAP = "flat_map"
FILTER = "filter"
MAP_VALUES = "map_values"
#: Whole-partition transform; the function receives the partition list.
PARTITIONS = "partitions"
#: Whole-partition transform that also receives the partition index
#: (used by :meth:`Dataset.sample` to derive per-partition generators).
PARTITIONS_INDEXED = "partitions_indexed"

_KINDS = (MAP, FLAT_MAP, FILTER, MAP_VALUES, PARTITIONS, PARTITIONS_INDEXED)


class NarrowStage(NamedTuple):
    """One pending narrow operation: a kind tag plus the record/partition function."""

    kind: str
    function: Callable[..., Any]


def apply_stage(stage: NarrowStage, records: list[Any], index: int) -> list[Any]:
    """Run one stage over one partition's records."""
    kind, function = stage
    if kind == MAP:
        return [function(record) for record in records]
    if kind == FLAT_MAP:
        return [out for record in records for out in function(record)]
    if kind == FILTER:
        return [record for record in records if function(record)]
    if kind == MAP_VALUES:
        return [(key, function(value)) for key, value in records]
    if kind == PARTITIONS:
        return list(function(records))
    if kind == PARTITIONS_INDEXED:
        return list(function(records, index))
    raise ValueError(f"unknown stage kind {kind!r}")


def compose(stages: Iterable[NarrowStage]) -> Callable[[list[Any], int], list[Any]]:
    """Fuse a stage chain into a single per-partition task."""
    chain = tuple(stages)

    def fused(records: list[Any], index: int) -> list[Any]:
        for stage in chain:
            records = apply_stage(stage, records, index)
        return records

    return fused


def describe(stages: Iterable[NarrowStage]) -> str:
    """A compact human-readable pipeline label, e.g. ``"map→filter→map_values"``."""
    return "→".join(stage.kind for stage in stages)


def is_picklable(stages: tuple[NarrowStage, ...]) -> bool:
    """Whether the stage chain can be shipped to a worker process."""
    try:
        pickle.dumps(stages)
    except Exception:
        return False
    return True


class FusedTaskError(Exception):
    """Wrapper distinguishing a failure of the fused task itself (user code)
    from pool infrastructure failures (broken pool, unpicklable payload).

    The original exception travels as ``args[0]`` so it survives the pickle
    round-trip back to the driver (``__cause__`` does not).
    """


def run_fused_chunk(
    stages: tuple[NarrowStage, ...], chunk: list[tuple[int, list[Any]]]
) -> list[tuple[int, list[Any]]]:
    """Process-pool worker: run the fused chain over a chunk of indexed partitions."""
    task = compose(stages)
    try:
        return [(index, task(records, index)) for index, records in chunk]
    except Exception as error:
        raise FusedTaskError(error) from error


def sample_partition(fraction: float, seed: int, records: list[Any], index: int) -> list[Any]:
    """Sample one partition with a generator derived from ``(seed, index)``.

    Each partition gets its own deterministic stream, so the sample is
    identical no matter which executor runs the partitions or in what order.
    """
    generator = random.Random(seed * 2_654_435_761 + index)
    return [record for record in records if generator.random() < fraction]
