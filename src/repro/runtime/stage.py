"""Fused narrow-stage and shuffle-stage descriptors for the lazy Dataset engine.

A narrow operation (``map``, ``flat_map``, ``filter``, ``map_values``,
``map_partitions``) does not move records between partitions, so any chain of
them can run as a *single* per-partition pass.  The lazy
:class:`~repro.runtime.dataset.Dataset` records each pending operation as a
:class:`NarrowStage`; when the chain is forced (by a shuffle or an action) the
stages are composed by :func:`compose` into one task and executed in one
``run_tasks`` pass.

A tuple of stages is also the *task descriptor* shipped to worker processes by
the ``"processes"`` executor: it is picklable whenever every stage function is
(module-level functions, ``functools.partial`` over module-level functions).
:func:`run_fused_chunk` is the module-level worker entry point, so the process
pool never has to pickle a closure of the driver's state.

Wide operations are plan nodes too: a :class:`ShuffleStage` describes one
shuffle as (per-input map-side narrow chain + optional map-side combiner +
partitioner bucketing) plus a reduce-side stage chain that processes each
merged bucket.  Both sides are expressed as ``NarrowStage`` chains built from
the module-level worker functions below (:func:`shuffle_write`,
:func:`reduce_bucket`, :func:`group_bucket`, :func:`join_bucket`, ...), so the
existing ``run_tasks`` dispatch -- thread pool, process pool with pickle
fallback -- executes the hot map and reduce sides of every wide operator.
:meth:`DistributedContext.run_shuffle` is the interpreter for these nodes.

**The shuffle data path is an iterator protocol, not list-of-lists.**  A map
task's output per reduce partition is a
:class:`~repro.runtime.spill.BucketPayload` -- spilled framed-pickle runs (see
:mod:`repro.runtime.spill`) plus the in-memory remainder.  The driver only
*routes* payload descriptors to reduce partitions; it never concatenates
record lists.  Every reduce-side processor streams the records back with
:func:`repro.runtime.spill.iter_merged` (or an external
``heapq.merge`` for sorted runs), applying its merge/group/join combiner
incrementally, so reduce-side memory is bounded by the live accumulator --
not by the shuffled partition -- and the behaviour is identical in
sequential, threads, and processes executor modes.
"""

from __future__ import annotations

import copy
import functools
import pickle
import random
import sys
from collections import OrderedDict
from typing import Any, Callable, Iterable, NamedTuple

from repro.runtime import columnar as columnar_mod
from repro.runtime import spill as spill_mod
from repro.runtime.partitioner import HashPartitioner
from repro.runtime.spill import BucketPayload, SpillSpec

#: Stage kinds understood by :func:`apply_stage`.
MAP = "map"
FLAT_MAP = "flat_map"
FILTER = "filter"
MAP_VALUES = "map_values"
#: Whole-partition transform; the function receives the partition list.
PARTITIONS = "partitions"
#: Whole-partition transform that also receives the partition index
#: (used by :meth:`Dataset.sample` to derive per-partition generators).
PARTITIONS_INDEXED = "partitions_indexed"

_KINDS = (MAP, FLAT_MAP, FILTER, MAP_VALUES, PARTITIONS, PARTITIONS_INDEXED)


class NarrowStage(NamedTuple):
    """One pending narrow operation: a kind tag plus the record/partition function."""

    kind: str
    function: Callable[..., Any]


def apply_stage(stage: NarrowStage, records: list[Any], index: int) -> list[Any]:
    """Run one stage over one partition's records."""
    kind, function = stage
    if kind == MAP:
        return [function(record) for record in records]
    if kind == FLAT_MAP:
        return [out for record in records for out in function(record)]
    if kind == FILTER:
        return [record for record in records if function(record)]
    if kind == MAP_VALUES:
        return [(key, function(value)) for key, value in records]
    if kind == PARTITIONS:
        return list(function(records))
    if kind == PARTITIONS_INDEXED:
        return list(function(records, index))
    raise ValueError(f"unknown stage kind {kind!r}")


#: Stage kinds whose record functions may carry a batch kernel, mapped to the
#: :mod:`repro.runtime.columnar` classes whose ``apply_batch`` matches the
#: stage semantics (a vectorized marker on a mismatched kind is ignored).
_VECTOR_CLASSES = {
    MAP: (columnar_mod.VectorizedMap, columnar_mod.VectorizedBind, columnar_mod.VectorizedLet),
    FLAT_MAP: (columnar_mod.VectorizedFlatMap,),
    FILTER: (columnar_mod.VectorizedFilter,),
    MAP_VALUES: (columnar_mod.VectorizedMapValues,),
}

#: The record-function stage kinds (the kinds a batch kernel may replace).
_VECTOR_KINDS = (MAP, FLAT_MAP, FILTER, MAP_VALUES)


def stage_vectorizable(stage: NarrowStage) -> bool:
    """Whether one narrow stage has a batch kernel compatible with its kind."""
    classes = _VECTOR_CLASSES.get(stage.kind)
    return classes is not None and isinstance(stage.function, classes)


# -- batch-runtime memoization ---------------------------------------------------
#
# Both caches live at module level so they are shared by every task of every
# force within one interpreter: the driver's for the sequential/threads
# executors, each worker's own for the processes/cluster executors (a worker
# is long-lived, so its caches warm up the same way).

#: Stage runs whose batch execution failed once (any partition): keyed by the
#: functions' identities, with the function objects pinned as the value so a
#: key id can never be recycled by a new function while its entry is live.  A
#: memoized run skips straight to the record path -- the chain never pays the
#: records->columns conversion tax again.
_FALLBACK_MEMO: OrderedDict[tuple[int, ...], tuple[Any, ...]] = OrderedDict()
_FALLBACK_MEMO_LIMIT = 256

#: Output record lists of successful batch runs mapped (by identity) to the
#: ColumnarPartition they were materialized from, so a consecutive narrow
#: force over the same partition resumes columnar instead of re-running
#: ``from_records``.  Entries pin both objects; the small bound caps the
#: doubled (records + columns) residency.
_RESIDENT: OrderedDict[int, tuple[list[Any], Any]] = OrderedDict()
_RESIDENT_LIMIT = 16

#: Batch-runtime counters (reported through ``consume_batch_stats``).
_BATCH_STATS = {"memoized_skips": 0, "resident_reuses": 0, "vector_bucket_tasks": 0}


def consume_batch_stats() -> dict[str, int]:
    """Return and reset the interpreter-wide batch-runtime counters.

    The counters are updated inside executor tasks, so they are only
    observable from the driver for executors sharing its interpreter
    (sequential / threads); process-pool and cluster workers accumulate into
    their own interpreters and their counts stay worker-side.
    """
    stats = dict(_BATCH_STATS)
    for key in _BATCH_STATS:
        _BATCH_STATS[key] = 0
    return stats


def _segment_key(segment: tuple[NarrowStage, ...]) -> tuple[int, ...]:
    return tuple(id(stage.function) for stage in segment)


def _memoized_fallback(segment: tuple[NarrowStage, ...]) -> bool:
    return _segment_key(segment) in _FALLBACK_MEMO


def _record_fallback(segment: tuple[NarrowStage, ...]) -> None:
    key = _segment_key(segment)
    if key not in _FALLBACK_MEMO:
        _FALLBACK_MEMO[key] = tuple(stage.function for stage in segment)
        while len(_FALLBACK_MEMO) > _FALLBACK_MEMO_LIMIT:
            _FALLBACK_MEMO.popitem(last=False)


def _resident_part(records: list[Any]) -> Any | None:
    entry = _RESIDENT.get(id(records))
    if entry is None:
        return None
    cached_records, part = entry
    if cached_records is not records or part.length != len(records):
        return None
    return part


def _remember_resident(records: list[Any], part: Any) -> None:
    _RESIDENT[id(records)] = (records, part)
    while len(_RESIDENT) > _RESIDENT_LIMIT:
        _RESIDENT.popitem(last=False)


def _segment(chain: tuple[NarrowStage, ...]) -> list[tuple[bool, tuple[NarrowStage, ...]]]:
    """Split a chain into maximal runs of batchable / record-only stages."""
    segments: list[tuple[bool, tuple[NarrowStage, ...]]] = []
    for stage in chain:
        batchable = stage_vectorizable(stage)
        if segments and segments[-1][0] == batchable:
            segments[-1] = (batchable, segments[-1][1] + (stage,))
        else:
            segments.append((batchable, (stage,)))
    return segments


def _run_batch_segment(
    segment: tuple[NarrowStage, ...], records: list[Any], index: int
) -> list[Any]:
    """Run one batchable run columnar-side, falling back per partition.

    The kernels are pure (they never mutate ``records`` or call user code),
    so *any* failure -- a :class:`~repro.runtime.columnar.ColumnarFallback`,
    a dtype surprise, an operand TypeError -- can safely replay the same
    records through the record path, which then produces the canonical
    result (or raises the canonical error).  Every fallback is memoized by
    the segment's function identities, so later partitions and later forces
    of the same (plan-cached) segment skip the conversion attempt entirely.
    """
    if _memoized_fallback(segment):
        _BATCH_STATS["memoized_skips"] += 1
        for stage in segment:
            records = apply_stage(stage, records, index)
        return records
    try:
        part = _resident_part(records)
        if part is not None:
            _BATCH_STATS["resident_reuses"] += 1
        else:
            part = columnar_mod.ColumnarPartition.from_records(records)
        if part is None:
            raise columnar_mod.ColumnarFallback("records are not columnar")
        for stage in segment:
            part = stage.function.apply_batch(part)
        out = part.to_records()
        _remember_resident(out, part)
        return out
    except Exception:
        _record_fallback(segment)
        for stage in segment:
            records = apply_stage(stage, records, index)
        return records


def _auto_batchable(chain: tuple[NarrowStage, ...]) -> bool:
    """Whether ``columnar="auto"`` batches this chain.

    Auto mode batches only *fully lowerable* chains -- every record-function
    stage carries a kernel (whole-partition stages manage their own columnar
    handling) and there is at least one.  A partially lowerable chain would
    pay the records->columns conversion tax for a handful of batched stages
    and then round-trip back; those chains stay record-at-a-time.
    """
    found = False
    for stage in chain:
        if stage.kind in _VECTOR_KINDS:
            if not stage_vectorizable(stage):
                return False
            found = True
    return found


def compose(
    stages: Iterable[NarrowStage], columnar: Any = False
) -> Callable[[list[Any], int], list[Any]]:
    """Fuse a stage chain into a single per-partition task.

    ``columnar`` is ``False`` (record path), ``True`` (batch every
    vectorizable run, even inside partially lowerable chains) or ``"auto"``
    (batch only chains :func:`_auto_batchable` accepts).  Batched runs
    execute as kernels over a
    :class:`~repro.runtime.columnar.ColumnarPartition` with a per-partition
    record-path fallback; everything else runs record-at-a-time.
    """
    chain = tuple(stages)
    if columnar == "auto":
        batch = _auto_batchable(chain)
    else:
        batch = bool(columnar) and any(stage_vectorizable(stage) for stage in chain)
    if batch:
        segments = _segment(chain)

        def fused_columnar(records: list[Any], index: int) -> list[Any]:
            for batchable, segment in segments:
                if batchable:
                    records = _run_batch_segment(segment, records, index)
                else:
                    for stage in segment:
                        records = apply_stage(stage, records, index)
            return records

        return fused_columnar

    def fused(records: list[Any], index: int) -> list[Any]:
        for stage in chain:
            records = apply_stage(stage, records, index)
        return records

    return fused


def describe(stages: Iterable[NarrowStage]) -> str:
    """A compact human-readable pipeline label, e.g. ``"map→filter→map_values"``."""
    return "→".join(stage.kind for stage in stages)


def is_picklable(stages: tuple[NarrowStage, ...]) -> bool:
    """Whether the stage chain can be shipped to a worker process."""
    try:
        pickle.dumps(stages)
    except Exception:
        return False
    return True


class FusedTaskError(Exception):
    """Wrapper distinguishing a failure of the fused task itself (user code)
    from pool infrastructure failures (broken pool, unpicklable payload).

    The original exception travels as ``args[0]`` so it survives the pickle
    round-trip back to the driver (``__cause__`` does not).
    """


def run_fused_chunk(
    stages: tuple[NarrowStage, ...],
    chunk: list[tuple[int, list[Any]]],
    columnar: Any = False,
) -> list[tuple[int, list[Any]]]:
    """Process-pool worker: run the fused chain over a chunk of indexed partitions."""
    task = compose(stages, columnar)
    try:
        return [(index, task(records, index)) for index, records in chunk]
    except Exception as error:
        raise FusedTaskError(error) from error


def sample_partition(fraction: float, seed: int, records: list[Any], index: int) -> list[Any]:
    """Sample one partition with a generator derived from ``(seed, index)``.

    Each partition gets its own deterministic stream, so the sample is
    identical no matter which executor runs the partitions or in what order.
    """
    generator = random.Random(seed * 2_654_435_761 + index)
    return [record for record in records if generator.random() < fraction]


# ---------------------------------------------------------------------------
# Shuffle plan nodes
# ---------------------------------------------------------------------------


class ShuffleInput(NamedTuple):
    """One input of a :class:`ShuffleStage`.

    Attributes:
        source: the upstream :class:`~repro.runtime.dataset.Dataset` whose
            partitions feed the map side (forced when the shuffle runs).
        stages: the map-side narrow chain fused into the shuffle (the pending
            operators captured from a lazy dataset, plus any keying stages the
            wide operator injects).
        combiner: map-side pre-aggregation applied before bucketing --
            ``None``, ``("reduce", fn)`` or ``("seq", zero, seq_op)``.
        captured_operators: how many *user* narrow operators were folded into
            ``stages`` (drives the fused-stage metrics).
        partitioner: the *effective* partitioner of the (possibly pending)
            dataset this input was captured from -- i.e. the placement of the
            records *after* ``stages`` run, as tracked by the lazy layer's
            partitioner-preservation rules.  When it equals the shuffle's
            partitioner the map-side bucketing pass is skipped entirely for
            this input (every record is already in its destination
            partition); ``None`` when the placement is unknown.
    """

    source: Any
    stages: tuple[NarrowStage, ...] = ()
    combiner: tuple[Any, ...] | None = None
    captured_operators: int = 0
    partitioner: Any = None


class ShuffleStage(NamedTuple):
    """A wide operator as a first-class plan node.

    Executed by :meth:`DistributedContext.run_shuffle`: every input runs its
    map side (narrow chain + combiner + partitioner bucketing + spilling) as
    one ``run_tasks`` pass, the driver routes the resulting
    :class:`~repro.runtime.spill.BucketPayload` descriptors to reduce-side
    partitions, and ``reduce_stages`` streams those payloads in a second
    ``run_tasks`` pass.

    Attributes:
        operation: metric/explain name (``"reduceByKey"``, ``"join"``, ...).
        inputs: one entry for single-input shuffles, two for coGroup/joins
            (records are then tagged with their input index on the map side).
        num_output_partitions: reduce-side partition count.
        reduce_stages: stage chain applied to each merged bucket (empty for
            pure repartitioning -- the buckets *are* the result).
        partitioner: bucketing partitioner; ``None`` selects the round-robin
            writer used by ``repartition``.
        result_partitioner: partitioner metadata of the output dataset.
        key_function: custom bucketing key (``sortBy`` range-partitions on the
            sort key); defaults to the pair key (tag-aware for two inputs).
        join_type: ``"inner"``/``"left"``/``"right"``/``"full"`` for joins.
        strategy: ``"shuffle"``, ``"auto"`` (pick broadcast hash join when a
            side is small enough) or ``"broadcast"`` (force it).
        reverse_output: reverse the output partition order (descending sorts).
        sort_ascending: set (by ``sort_by``) when the reduce side is an
            order-preserving sort of ``key_function``; the map side then
            writes *pre-sorted* spill runs so the reduce side can external-
            merge instead of materializing the bucket.  ``None`` for every
            other operator.
    """

    operation: str
    inputs: tuple[ShuffleInput, ...]
    num_output_partitions: int
    reduce_stages: tuple[NarrowStage, ...]
    partitioner: Any = None
    result_partitioner: Any = None
    key_function: Callable[[Any], Any] | None = None
    join_type: str | None = None
    strategy: str = "shuffle"
    reverse_output: bool = False
    sort_ascending: bool | None = None


class ShuffleWriteStats(NamedTuple):
    """Per-map-task shuffle-write accounting, returned as the first element of
    every map-side output (ahead of the bucket payloads)."""

    records_in: int
    records_out: int
    bytes_out: int
    spilled_bytes: int = 0
    spill_files: int = 0
    peak_memory: int = 0


class SaltedKey(NamedTuple):
    """A hot key salted with its map task index (adaptive skew handling).

    When the driver's pre-shuffle sample flags a key as hot, every map task
    emits its (already combined) partial for that key under
    ``SaltedKey(key, task_index)`` and buckets it by ``(key, task_index)`` --
    spreading the hot key's per-task partials across reduce partitions
    instead of piling them onto one.  The reduce side passes the salted
    records through untouched (each ``(key, salt)`` is unique), and the
    driver folds them back in map-task order, reproducing the exact left
    fold the unsalted reduce would have performed.  A tuple subclass, so
    :func:`repro.runtime.partitioner.stable_hash` covers it.
    """

    key: Any
    salt: int


def pair_key(record: Any) -> Any:
    """Bucketing key of an untagged key-value record."""
    return record[0]


def tagged_key(record: Any) -> Any:
    """Bucketing key of a ``(side, (key, value))`` record."""
    return record[1][0]


def tag_record(side: int, record: Any) -> tuple[int, Any]:
    """Tag a record with its input index (map side of two-input shuffles)."""
    return (side, record)


def apply_combiner(
    combiner: tuple[Any, ...], records: list[Any], columnar: Any = False
) -> list[Any]:
    """Run a map-side combiner spec over one partition's key-value records.

    With ``columnar`` truthy (``True`` or ``"auto"``) and a combiner
    :func:`~repro.runtime.columnar.combiner_vectorizable` accepts (a
    :class:`~repro.runtime.columnar.VectorizedCombine` fold or the adaptive
    ``("group",)`` collect), the grouped fold runs through
    :func:`~repro.runtime.columnar.combine_batch`; any failure there falls
    back to this record path (the kernel never mutates ``records``).
    """
    if columnar and records and columnar_mod.combiner_vectorizable(combiner):
        try:
            return columnar_mod.combine_batch(combiner, records)
        except Exception:
            pass
    kind = combiner[0]
    accumulator: dict[Any, Any] = {}
    if kind == "reduce":
        function = combiner[1]
        for key, value in records:
            if key in accumulator:
                accumulator[key] = function(accumulator[key], value)
            else:
                accumulator[key] = value
    elif kind == "seq":
        _, zero, seq_op = combiner
        for key, value in records:
            if key in accumulator:
                accumulator[key] = seq_op(accumulator[key], value)
            else:
                # Every key needs its OWN zero: an in-place-mutating seq_op
                # (list/dict accumulators) would otherwise fold every key's
                # values into one shared object.
                accumulator[key] = seq_op(copy.deepcopy(zero), value)
    elif kind == "group":
        # Adaptive map-side grouping (groupByKey on heavily duplicated
        # keys): collapse each task's records into one (key, [values])
        # partial so the shuffle moves one record per (task, key) instead of
        # one per input record.  Insertion order = first-occurrence order and
        # each list keeps record order, so the reduce side's extend-merge
        # reproduces the plain groupByKey output exactly.
        for key, value in records:
            if key in accumulator:
                accumulator[key].append(value)
            else:
                accumulator[key] = [value]
    else:  # pragma: no cover - guarded by the Dataset constructors
        raise ValueError(f"unknown combiner kind {kind!r}")
    return list(accumulator.items())


def estimate_bytes(value: Any) -> int:
    """Approximate serialized size of a value (the 'network' bytes)."""
    try:
        return len(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        if isinstance(value, list):
            return sum(sys.getsizeof(element) for element in value)
        return sys.getsizeof(value)


#: Records sampled per map task when extrapolating shuffle-write bytes.
BYTES_SAMPLE_SIZE = 64


def estimate_shuffle_bytes(buckets: list[Iterable[Any]]) -> int:
    """Extrapolated serialized size of in-memory shuffle output.

    Pickling everything just for a metric would double serialization cost on
    the hot path (and run even under the sequential executor), so only the
    first :data:`BYTES_SAMPLE_SIZE` records are measured and scaled by the
    record count.  The sample is a deterministic function of the bucket
    contents, keeping the metric identical across executor modes.
    """
    total = sum(len(bucket) for bucket in buckets)
    if total == 0:
        return 0
    sample: list[Any] = []
    for bucket in buckets:
        if len(sample) >= BYTES_SAMPLE_SIZE:
            break
        sample.extend(bucket[: BYTES_SAMPLE_SIZE - len(sample)])
    return (estimate_bytes(sample) * total) // len(sample)


def _writer_output(writer: spill_mod.BucketWriter, records_in: int) -> list[Any]:
    """Finalize a map task's writer into ``[stats, payload_0, ...]``.

    ``bytes_out`` counts the spilled run bytes exactly (they *were*
    serialized) plus a sampled estimate of the in-memory remainders, so the
    metric agrees with the historical all-in-memory estimate when nothing
    spills.
    """
    payloads = writer.finish()
    records_out = sum(payload.record_count for payload in payloads)
    bytes_out = writer.spilled_bytes + estimate_shuffle_bytes(
        [payload.records for payload in payloads]
    )
    stats = ShuffleWriteStats(
        records_in,
        records_out,
        bytes_out,
        writer.spilled_bytes,
        writer.spill_files,
        writer.peak_memory,
    )
    return [stats, *payloads]


def _vector_buckets(
    partitioner: Any, key_of: Callable[[Any], Any], records: list[Any], columnar: Any
) -> list[int] | None:
    """Vectorized map-side bucket assignment for scalar int keys, or None.

    Valid only when per-record bucketing provably equals ``key % n``: a plain
    :class:`HashPartitioner` over untagged pairs whose key column is resident
    as an int64 array (the upstream batch segment just produced it) and every
    key satisfies ``hash(key) == key`` -- i.e. ``|key| < 2**61 - 1`` (CPython
    hashes ints modulo the Mersenne prime ``2**61 - 1``) and ``key != -1``
    (``hash(-1)`` is ``-2``).  Python and numpy agree on the sign of ``%``
    for a positive modulus, so ``np.mod`` reproduces ``partition()`` exactly.
    """
    np = columnar_mod.np
    if not columnar or np is None or key_of is not pair_key:
        return None
    if type(partitioner) is not HashPartitioner:
        return None
    part = _resident_part(records)
    if part is None:
        return None
    template = part.template
    if template == "*" or template[0] != "tuple" or not template[1] or template[1][0] != "*":
        return None
    keys = part.columns[0]
    if not isinstance(keys, np.ndarray) or keys.dtype.kind != "i":
        return None
    bound = (1 << 61) - 1
    if not bool(np.all((keys > -bound) & (keys < bound) & (keys != -1))):
        return None
    _BATCH_STATS["vector_bucket_tasks"] += 1
    return np.mod(keys, partitioner.num_partitions).tolist()


def shuffle_write(
    partitioner: Any,
    combiner: tuple[Any, ...] | None,
    key_of: Callable[[Any], Any],
    spill: SpillSpec | None,
    input_index: int,
    sort_spec: tuple[Callable[[Any], Any], bool] | None,
    records: list[Any],
    index: int,
    columnar: Any = False,
) -> list[Any]:
    """Map-side shuffle writer: combine (optionally), bucket by key, spill
    over budget.

    Returns ``[stats, payload_0, ..., payload_{n-1}]``; the driver pops the
    stats and routes the payloads to reduce-side partitions.  Runs inside
    executor tasks, so the partitioner must hash process-stably (see
    :func:`repro.runtime.partitioner.stable_hash`) and ``spill`` must point
    at a directory shared with worker processes.  A combiner's accumulator
    stays in memory (bounded by the task's distinct keys); the bucketed
    *output* is what spills.
    """
    records_in = len(records)
    if combiner is not None:
        records = apply_combiner(combiner, records, columnar)
    writer = spill_mod.BucketWriter(
        partitioner.num_partitions, spill, f"i{input_index}-m{index}", sort_spec
    )
    buckets = _vector_buckets(partitioner, key_of, records, columnar)
    if buckets is not None:
        for bucket, record in zip(buckets, records, strict=True):
            writer.add(bucket, record)
    else:
        for record in records:
            writer.add(partitioner.partition(key_of(record)), record)
    return _writer_output(writer, records_in)


def salted_shuffle_write(
    partitioner: Any,
    combiner: tuple[Any, ...] | None,
    key_of: Callable[[Any], Any],
    spill: SpillSpec | None,
    input_index: int,
    sort_spec: tuple[Callable[[Any], Any], bool] | None,
    hot_keys: frozenset,
    records: list[Any],
    index: int,
    columnar: Any = False,
) -> list[Any]:
    """:func:`shuffle_write` with hot-key salting (adaptive skew handling).

    ``hot_keys`` was decided by the driver from one global pre-shuffle
    sample, so every map task salts the *same* keys: after the combiner runs
    (one partial per key per task), a hot key's partial is emitted as
    ``(SaltedKey(key, index), value)`` and bucketed by ``(key, index)``;
    everything else buckets normally.  Only valid for single-input keyed
    shuffles whose records are plain ``(key, value)`` pairs.
    """
    records_in = len(records)
    if combiner is not None:
        records = apply_combiner(combiner, records, columnar)
    writer = spill_mod.BucketWriter(
        partitioner.num_partitions, spill, f"i{input_index}-m{index}", sort_spec
    )
    for record in records:
        key = key_of(record)
        if key in hot_keys:
            writer.add(partitioner.partition((key, index)), (SaltedKey(key, index), record[1]))
        else:
            writer.add(partitioner.partition(key), record)
    return _writer_output(writer, records_in)


def prepartitioned_write(
    num_output: int,
    records: list[Any],
    index: int,
) -> list[Any]:
    """Map-side writer for an input already partitioned like the shuffle.

    Every record of map partition ``index`` is, by the partitioner equality
    the caller verified, already destined for reduce partition ``index`` --
    so the whole partition becomes one in-memory payload routed straight to
    bucket ``index``.  Nothing is re-bucketed, spilled or counted as shuffle
    traffic: the stats report zero records/bytes moved.
    """
    payloads = [
        BucketPayload((), tuple(records) if bucket == index else ())
        for bucket in range(num_output)
    ]
    return [ShuffleWriteStats(len(records), 0, 0), *payloads]


def repartition_write(
    num_output: int,
    spill: SpillSpec | None,
    input_index: int,
    records: list[Any],
    index: int,
) -> list[Any]:
    """Round-robin shuffle writer for ``repartition`` (keys not required).

    The start offset rotates with the map partition index so small partitions
    do not all pile into bucket 0; placement stays deterministic under every
    executor because it depends only on ``(index, position)``.
    """
    writer = spill_mod.BucketWriter(num_output, spill, f"i{input_index}-m{index}")
    for position, record in enumerate(records):
        writer.add((index + position) % num_output, record)
    return _writer_output(writer, len(records))


# -- reduce-side bucket processors ------------------------------------------------
#
# Each processor receives its reduce partition as a list of BucketPayloads
# (one per contributing map task, in map-task order) and streams the records
# back through the spill layer, applying its combiner incrementally -- the
# full record list is never materialized unless the operator's semantics
# require it (grouping keeps its value lists, joins build their hash sides).


def read_bucket(payloads: list[BucketPayload]) -> list[Any]:
    """Materialize one reduce partition (repartition / partitionBy, where the
    routed records *are* the result)."""
    return list(spill_mod.iter_merged(payloads))


def reduce_bucket(function: Callable[[Any, Any], Any], payloads: list[BucketPayload]) -> list[Any]:
    """Merge key-value records with ``function`` (reduceByKey reduce side).

    Streams the payloads and combines incrementally: live memory is one
    accumulator entry per distinct key plus one spill run, regardless of how
    many records were shuffled.
    """
    accumulator: dict[Any, Any] = {}
    for key, value in spill_mod.iter_merged(payloads):
        if key in accumulator:
            accumulator[key] = function(accumulator[key], value)
        else:
            accumulator[key] = value
    return list(accumulator.items())


def group_bucket(payloads: list[BucketPayload]) -> list[Any]:
    """Group key-value records into ``(key, [values])`` (groupByKey reduce side)."""
    groups: dict[Any, list[Any]] = {}
    for key, value in spill_mod.iter_merged(payloads):
        groups.setdefault(key, []).append(value)
    return list(groups.items())


def group_merge_bucket(payloads: list[BucketPayload]) -> list[Any]:
    """groupByKey reduce side for map-side-grouped input: merge ``(key,
    [values])`` partials by list concatenation.

    ``iter_merged`` streams partials in map-task order and each partial's
    list keeps record order, so the concatenated value lists -- and the
    first-seen key order -- are identical to :func:`group_bucket` over the
    ungrouped records.
    """
    groups: dict[Any, list[Any]] = {}
    for key, values in spill_mod.iter_merged(payloads):
        if key in groups:
            groups[key].extend(values)
        else:
            groups[key] = list(values)
    return list(groups.items())


def _split_tagged_stream(stream: Iterable[Any]) -> tuple[dict[Any, list[Any]], dict[Any, list[Any]]]:
    """Group a stream of tagged ``(side, (key, value))`` records per side.

    Plain dicts (insertion-ordered) rather than sets keep the output order
    independent of per-process hash randomization.
    """
    left: dict[Any, list[Any]] = {}
    right: dict[Any, list[Any]] = {}
    for side, (key, value) in stream:
        target = left if side == 0 else right
        target.setdefault(key, []).append(value)
    return left, right


def split_tagged(payloads: list[BucketPayload]) -> tuple[dict[Any, list[Any]], dict[Any, list[Any]]]:
    """Stream tagged records out of one reduce partition's payloads."""
    return _split_tagged_stream(spill_mod.iter_merged(payloads))


def _cogroup_sides(left: dict[Any, list[Any]], right: dict[Any, list[Any]]) -> list[Any]:
    """Merge per-side group dicts into ``(key, ([left], [right]))`` records."""
    merged: list[Any] = []
    for key, left_values in left.items():
        merged.append((key, (left_values, right.get(key, []))))
    for key, right_values in right.items():
        if key not in left:
            merged.append((key, ([], right_values)))
    return merged


def cogroup_bucket(payloads: list[BucketPayload]) -> list[Any]:
    """coGroup reduce side: ``(key, ([left values], [right values]))``."""
    left, right = split_tagged(payloads)
    return _cogroup_sides(left, right)


def _join_sides(how: str, left: dict[Any, list[Any]], right: dict[Any, list[Any]]) -> list[Any]:
    """Expand per-side group dicts according to the join type."""
    out: list[Any] = []
    if how == "inner":
        for key, left_values in left.items():
            right_values = right.get(key)
            if right_values:
                out.extend(
                    (key, (a, b)) for a in left_values for b in right_values
                )
    elif how == "left":
        for key, left_values in left.items():
            right_values = right.get(key) or [None]
            out.extend((key, (a, b)) for a in left_values for b in right_values)
    elif how == "right":
        for key, right_values in right.items():
            left_values = left.get(key) or [None]
            out.extend((key, (a, b)) for a in left_values for b in right_values)
    elif how == "full":
        for key, left_values in left.items():
            right_values = right.get(key) or [None]
            out.extend((key, (a, b)) for a in left_values for b in right_values)
        for key, right_values in right.items():
            if key not in left:
                out.extend((key, (None, b)) for b in right_values)
    else:  # pragma: no cover - guarded by the Dataset join constructors
        raise ValueError(f"unknown join type {how!r}")
    return out


def join_bucket(how: str, payloads: list[BucketPayload]) -> list[Any]:
    """Join reduce side: cogroup one bucket and expand per the join type."""
    left, right = split_tagged(payloads)
    return _join_sides(how, left, right)


# -- narrow (shuffle-free) wide-operator passes -----------------------------------
#
# When a keyed dataset already carries the partitioner a wide operator would
# shuffle with, every key's records are confined to one partition and the
# operator degenerates to an independent per-partition pass.  These functions
# mirror the reduce-side bucket processors exactly (same accumulation
# structures, same first-seen ordering), so the narrow path is record-for-
# record identical to the shuffle it replaces.


def narrow_group_partition(records: list[Any]) -> list[Any]:
    """groupByKey over one already-key-partitioned partition."""
    groups: dict[Any, list[Any]] = {}
    for key, value in records:
        groups.setdefault(key, []).append(value)
    return list(groups.items())


def zip_cogroup_partition(partition: list[Any]) -> list[Any]:
    """coGroup of co-partitioned inputs; ``partition`` is ``[left, right]``."""
    left_records, right_records = partition
    left, right = _split_tagged_stream(
        [(0, record) for record in left_records] + [(1, record) for record in right_records]
    )
    return _cogroup_sides(left, right)


def zip_join_partition(how: str, partition: list[Any]) -> list[Any]:
    """Join of co-partitioned inputs; ``partition`` is ``[left, right]``."""
    left_records, right_records = partition
    left, right = _split_tagged_stream(
        [(0, record) for record in left_records] + [(1, record) for record in right_records]
    )
    return _join_sides(how, left, right)


def broadcast_join_partition(
    how: str, broadcast_side: str, lookup: dict[Any, list[Any]], records: list[Any]
) -> list[Any]:
    """Probe-side task of a broadcast hash join.

    ``lookup`` holds the broadcast (build) side; ``records`` are the probe
    side's key-value records.  A ``functools.partial`` over this function
    ships the lookup table to worker processes like a real broadcast variable.
    """
    out: list[Any] = []
    if broadcast_side == "right":
        for key, value in records:
            matches = lookup.get(key)
            if matches:
                out.extend((key, (value, match)) for match in matches)
            elif how == "left":
                out.append((key, (value, None)))
    else:
        for key, value in records:
            matches = lookup.get(key)
            if matches:
                out.extend((key, (match, value)) for match in matches)
            elif how == "right":
                out.append((key, (None, value)))
    return out


def sort_bucket(
    key_function: Callable[[Any], Any], ascending: bool, payloads: list[BucketPayload]
) -> list[Any]:
    """sortBy reduce side: ordered merge of one range-partitioned bucket.

    Spilled runs were written pre-sorted by the map side (the shuffle carries
    ``sort_ascending``), so this is an external k-way merge over sorted runs
    plus the sorted in-memory remainders.  ``heapq.merge``'s tie-breaking by
    input order makes the result identical to a stable in-memory sort.
    """
    return list(spill_mod.merge_sorted_payloads(payloads, key_function, ascending))


def pair_with_none(record: Any) -> tuple[Any, None]:
    """Key a record by itself (map side of ``distinct``)."""
    return (record, None)


def keep_first(value: Any, _other: Any) -> Any:
    """Combiner for ``distinct``: any duplicate is as good as the first."""
    return value


def take_key(pair: Any) -> Any:
    """Strip the ``None`` payload after a ``distinct`` reduce."""
    return pair[0]


def _stage_combiner(function: functools.partial) -> tuple[Any, ...] | None:
    """The combiner spec carried by a whole-partition stage closure, if any."""
    if function.func is apply_combiner and function.args:
        return function.args[0]
    if function.func in (shuffle_write, salted_shuffle_write) and len(function.args) > 1:
        return function.args[1]
    return None


def vectorization_counts(
    stages: Iterable[NarrowStage], columnar: Any = True
) -> tuple[int, int]:
    """Plan-time vectorization accounting for one stage chain.

    Returns ``(vectorized, fallbacks)``: record-function stages that will run
    as batch kernels vs. those that stay on the record path while columnar
    execution is on.  Counted from the *plan* -- like ``shuffles_eliminated``
    -- so the numbers are identical across executor modes (a worker-side
    per-partition fallback cannot be observed from the driver under the
    process executor).  Under ``columnar="auto"`` a chain that is not fully
    lowerable counts every record-function stage as a fallback, matching
    what :func:`compose` will execute.  Whole-partition stages are only
    counted when they are ``apply_combiner`` / ``shuffle_write`` closures
    carrying a combiner (the shapes with a grouped-fold/collect kernel);
    structural passes such as ``read_bucket`` do no per-record work and are
    skipped.
    """
    chain = tuple(stages)
    auto_off = columnar == "auto" and not _auto_batchable(chain)
    vectorized = fallbacks = 0
    for stage in chain:
        function = stage.function
        if stage.kind in _VECTOR_KINDS:
            if stage_vectorizable(stage) and not auto_off:
                vectorized += 1
            else:
                fallbacks += 1
        elif isinstance(function, functools.partial):
            combiner = _stage_combiner(function)
            if combiner is not None:
                enabled = bool(function.keywords.get("columnar"))
                if enabled and columnar_mod.combiner_vectorizable(combiner):
                    vectorized += 1
                else:
                    fallbacks += 1
    return vectorized, fallbacks


def vectorization_report(
    stages: Iterable[NarrowStage], columnar: Any = True
) -> list[tuple[str, str | None, str]]:
    """Per-stage vectorization outcomes for explain output.

    One ``(kind, kernel, note)`` entry per counted stage (same selection as
    :func:`vectorization_counts`): ``kernel`` is the batch-kernel name when
    the stage will run batched (note ``"batch"``), else ``None`` with the
    fallback reason -- ``"no batch kernel"``, ``"auto: chain not fully
    lowerable"``, or ``"memoized record-path fallback"`` once a runtime
    fallback has been memoized for the stage's segment.
    """
    chain = tuple(stages)
    auto_off = columnar == "auto" and not _auto_batchable(chain)
    entries: list[tuple[str, str | None, str]] = []
    for batchable, segment in _segment(chain):
        memoized = batchable and _memoized_fallback(segment)
        for stage in segment:
            function = stage.function
            if stage.kind in _VECTOR_KINDS:
                if not batchable:
                    entries.append((stage.kind, None, "no batch kernel"))
                elif auto_off:
                    entries.append((stage.kind, None, "auto: chain not fully lowerable"))
                elif memoized:
                    entries.append((stage.kind, None, "memoized record-path fallback"))
                else:
                    entries.append((stage.kind, type(function).__name__, "batch"))
            elif isinstance(function, functools.partial):
                combiner = _stage_combiner(function)
                if combiner is None:
                    continue
                enabled = bool(function.keywords.get("columnar"))
                if enabled and columnar_mod.combiner_vectorizable(combiner):
                    kernel = "grouped-collect" if combiner[0] == "group" else "grouped-fold"
                    entries.append(("combine", kernel, "batch"))
                else:
                    entries.append(("combine", None, "no combiner kernel"))
    return entries
