"""Columnar (vectorized) execution of narrow record chains and combiners.

The record-at-a-time engine in :mod:`repro.runtime.stage` calls a Python
function per record; for the arithmetic/comparison record functions the
comprehension compiler lowers (bind a tuple element, filter on ``v < 100``,
project ``(i, m * v)``), almost all of that time is interpreter dispatch.
This module executes such chains one *partition* at a time instead:

* :class:`ColumnarPartition` stores a partition "unzipped" into one array per
  scalar leaf of the record structure (numpy arrays when numpy is importable,
  plain Python lists otherwise), plus a *template* describing how the leaves
  reassemble into records -- ``"*"`` for a scalar leaf, ``("tuple", (...))``
  for tuple records such as ``((i, j), v)``, ``("dict", names, (...))`` for
  the row dicts the comprehension evaluator binds.
* :class:`Expr` trees (:class:`Col` / :class:`Ref` / :class:`Lit` /
  :class:`BinOp` / :class:`UnOp` / :class:`Call`) evaluate a scalar term over
  every record at once, with exactly the semantics of
  :func:`repro.operators.apply_binary` -- including true/integer division and
  modulo (``/`` and ``%`` fall back on zero divisors and on integer ranges
  where numpy's double rounding could diverge) and the pure scalar builtins
  in :data:`VECTOR_CALL_IMPLS` (``abs``/``min``/``max``).
* :class:`VectorizedMap` / :class:`VectorizedFilter` /
  :class:`VectorizedMapValues` / :class:`VectorizedBind` /
  :class:`VectorizedFlatMap` are *callable record functions* that
  additionally carry an ``apply_batch`` kernel (flat_map covers the
  constant-fan-out shapes the evaluator and planner emit: tuple-of-heads
  expansion and row extension with literal bindings), and
  :func:`combine_batch` is the grouped kernel behind vectorized
  ``("reduce", fn)`` / ``("seq", zero, seq_op)`` map-side combiners as well
  as the ``("group",)`` grouped-collect used by high-duplication
  ``group_by_key``.

**The record path is the oracle.**  Every vectorized function holds the
original record-at-a-time closure (``oracle``) and delegates ``__call__`` to
it, so plans built with these functions behave *identically* to the classic
engine unless a caller explicitly opts into ``apply_batch``.  Batch kernels
either produce bit-identical results or raise :class:`ColumnarFallback`
(mixed-type columns, ragged records, integer ranges where numpy's fixed-width
arithmetic could diverge from Python's arbitrary precision, IEEE corner cases
such as NaN / negative zero under ``min``/``max``); the caller then re-runs
the records through the oracle.  Fallback is therefore always safe: kernels
are pure and never mutate their input partition.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Iterable

from repro.errors import ExecutionError
from repro.operators import apply_binary, apply_unary

try:  # pragma: no cover - exercised both ways by the test suite
    import numpy as np
except ImportError:  # pragma: no cover
    np = None

#: Scalar leaf types a column may hold (each column must be homogeneous --
#: mixing int and float would silently coerce ints on reassembly).
SCALAR_TYPES = (bool, int, float, str)

#: Magnitude bound for integers entering fixed-width arithmetic: any single
#: ``+``/``-``/``*`` of two such operands fits int64 exactly, and converting
#: to float64 (when the other operand is a float) is lossless.
_INT_OP_BOUND = 2**31

#: Binary operators with a batch kernel.  ``/`` and ``%`` vectorize with
#: guards mirroring ``apply_binary``'s mixed int/float semantics: any zero
#: divisor falls back (the record replay raises the canonical
#: ZeroDivisionError), integer division batches only when every pair divides
#: exactly (int result) or none does (float result), and int operands stay
#: inside the exact-arithmetic window so int64/float64 conversions and
#: rounding match CPython's arbitrary-precision results bit for bit.
SUPPORTED_BINOPS = frozenset(
    {"+", "-", "*", "/", "%", "==", "!=", "<", "<=", ">", ">=", "&&", "||"}
)
SUPPORTED_UNOPS = frozenset({"-", "!"})

#: Monoid operators :func:`combine_batch` can fold with a ufunc.
VECTOR_COMBINE_OPS = frozenset({"+", "*", "min", "max"})

#: Pure scalar builtins with a batch kernel.  The values are the exact
#: callables :mod:`repro.functions` registers under these names; the lowering
#: only emits a :class:`Call` when the program's registry entry *is* the
#: matching builtin, so a re-registered function can never diverge from its
#: kernel.
VECTOR_CALL_IMPLS: dict[str, Callable[..., Any]] = {"abs": abs, "min": min, "max": max}


class ColumnarFallback(Exception):
    """A batch kernel cannot (or must not) handle this partition; the caller
    re-runs the segment record-at-a-time."""


# ---------------------------------------------------------------------------
# Templates: the record structure shared by every record of a partition
# ---------------------------------------------------------------------------


def _template_of(value: Any) -> Any:
    """The template of one record, or None when it cannot be columnized."""
    kind = type(value)
    if kind in SCALAR_TYPES:
        return "*"
    if kind is tuple:
        subs = []
        for element in value:
            sub = _template_of(element)
            if sub is None:
                return None
            subs.append(sub)
        return ("tuple", tuple(subs))
    if kind is dict:
        names = []
        subs = []
        for name, element in value.items():
            if type(name) is not str:
                return None
            sub = _template_of(element)
            if sub is None:
                return None
            names.append(name)
            subs.append(sub)
        return ("dict", tuple(names), tuple(subs))
    return None


def _leaf_count(template: Any) -> int:
    if template == "*":
        return 1
    if template[0] == "tuple":
        return sum(_leaf_count(sub) for sub in template[1])
    return sum(_leaf_count(sub) for sub in template[2])


def _resolve(template: Any, path: tuple[Any, ...]) -> tuple[Any, int, int]:
    """Walk ``path`` (tuple positions / dict field names) down ``template``.

    Returns ``(subtemplate, first_leaf, last_leaf + 1)`` -- the slice of the
    flat column list holding the addressed subtree.
    """
    offset = 0
    current = template
    for step in path:
        if current == "*":
            raise ColumnarFallback(f"cannot descend into a scalar leaf with {step!r}")
        if current[0] == "tuple":
            subs = current[1]
            if not isinstance(step, int) or not 0 <= step < len(subs):
                raise ColumnarFallback(f"no tuple position {step!r}")
        else:
            names, subs = current[1], current[2]
            if step not in names:
                raise ColumnarFallback(f"no field {step!r}")
            step = names.index(step)
        for sub in subs[:step]:
            offset += _leaf_count(sub)
        current = subs[step]
    return current, offset, offset + _leaf_count(current)


def _split_columns(template: Any, values: Any, out: list[Any]) -> bool:
    """Decompose records column-wise, appending leaf columns to ``out``.

    Works one structural *level* at a time (``zip(*values)`` unzips a whole
    tuple position in C) instead of flattening record by record, which is
    what keeps columnization cheaper than the record path it replaces.
    Returns False on any shape mismatch (the caller falls back).
    """
    if template == "*":
        column = _build_column(values)
        if column is None:
            return False
        out.append(column)
        return True
    if template[0] == "tuple":
        subs = template[1]
        width = len(subs)
        if any(type(value) is not tuple or len(value) != width for value in values):
            return False
        for sub, part in zip(subs, zip(*values, strict=False), strict=False):
            if not _split_columns(sub, part, out):
                return False
        return True
    names, subs = template[1], template[2]
    width = len(names)
    if any(type(value) is not dict or len(value) != width for value in values):
        return False
    for name, sub in zip(names, subs, strict=False):
        try:
            part = [value[name] for value in values]
        except KeyError:
            return False
        if not _split_columns(sub, part, out):
            return False
    return True


def _build_column(values: list[Any]) -> Any:
    """Pack one homogeneous scalar column into an array; None when mixed.

    Distinct Python types per column are rejected outright (``bool`` is a
    distinct type from ``int`` here, which ``set(map(type, ...))`` gives us
    for free) so reassembled records keep the exact types of the originals.
    """
    kinds = set(map(type, values))
    if len(kinds) != 1:
        return None
    kind = kinds.pop()
    if kind not in SCALAR_TYPES:
        return None
    if np is None:
        return list(values)
    if kind is bool:
        return np.array(values, dtype=np.bool_)
    if kind is int:
        try:
            return np.array(values, dtype=np.int64)
        except OverflowError:
            return None
    if kind is float:
        return np.array(values, dtype=np.float64)
    return np.array(values, dtype=object)


def _column_list(column: Any) -> list[Any]:
    """Back to native Python scalars (``.tolist`` restores bool/int/float/str)."""
    if np is not None and isinstance(column, np.ndarray):
        return column.tolist()
    return list(column)


class ColumnarPartition:
    """One partition unzipped into per-leaf columns plus a record template.

    Pickles with the default protocol (templates are tuples of strings;
    columns are numpy arrays or lists), so columnar payloads can cross the
    process-executor boundary like any other partition data.
    """

    def __init__(self, template: Any, columns: list[Any], length: int):
        self.template = template
        self.columns = list(columns)
        self.length = length

    @classmethod
    def from_records(cls, records: list[Any]) -> "ColumnarPartition | None":
        """Columnize a partition; None when its records do not fit a single
        template of homogeneous scalar columns (the caller falls back)."""
        if not records:
            return None
        template = _template_of(records[0])
        if template is None:
            return None
        columns: list[Any] = []
        if not _split_columns(template, records, columns):
            return None
        return cls(template, columns, len(records))

    def to_records(self) -> list[Any]:
        """Reassemble the native record list (exact scalar types restored)."""
        return self._assemble(self.template, 0)

    def _assemble(self, template: Any, base: int) -> list[Any]:
        if template == "*":
            return _column_list(self.columns[base])
        if template[0] == "tuple":
            subs = template[1]
            if not subs:
                return [()] * self.length
            parts = []
            for sub in subs:
                parts.append(self._assemble(sub, base))
                base += _leaf_count(sub)
            return list(zip(*parts, strict=False))
        names, subs = template[1], template[2]
        if not names:
            return [{} for _ in range(self.length)]
        parts = []
        for sub in subs:
            parts.append(self._assemble(sub, base))
            base += _leaf_count(sub)
        return [dict(zip(names, values, strict=False)) for values in zip(*parts, strict=False)]

    def subpart(self, path: tuple[Any, ...]) -> "ColumnarPartition":
        """The subtree at ``path`` as a partition sharing this one's columns."""
        template, start, end = _resolve(self.template, path)
        return ColumnarPartition(template, self.columns[start:end], self.length)

    def leaf(self, path: tuple[Any, ...]) -> Any:
        template, start, _ = _resolve(self.template, path)
        if template != "*":
            raise ColumnarFallback(f"path {path!r} is not a scalar leaf")
        return self.columns[start]

    def compress(self, mask: Any) -> "ColumnarPartition":
        """Keep the records selected by a boolean mask."""
        if np is not None and isinstance(mask, np.ndarray):
            return ColumnarPartition(
                self.template,
                [column[mask] for column in self.columns],
                int(mask.sum()),
            )
        kept = [index for index, keep in enumerate(mask) if keep]
        return ColumnarPartition(
            self.template,
            [[column[index] for index in kept] for column in self.columns],
            len(kept),
        )

    def empty(self) -> "ColumnarPartition":
        return ColumnarPartition(self.template, [column[:0] for column in self.columns], 0)


# ---------------------------------------------------------------------------
# Batch scalar operators (exact apply_binary / apply_unary semantics)
# ---------------------------------------------------------------------------


def _is_column(value: Any) -> bool:
    if np is not None and isinstance(value, np.ndarray):
        return True
    return isinstance(value, list)


def _kind(value: Any) -> str:
    """'b'/'i'/'f'/'s' for a column or scalar operand."""
    if np is not None and isinstance(value, np.ndarray):
        return {"b": "b", "i": "i", "f": "f", "O": "s"}.get(value.dtype.kind, "?")
    kind = type(value)
    return {bool: "b", int: "i", float: "f", str: "s"}.get(kind, "?")


def _guard_int(value: Any) -> None:
    """Refuse integer operands outside the exact-arithmetic window."""
    if np is not None and isinstance(value, np.ndarray):
        if value.dtype.kind == "i" and value.size:
            if value.min() <= -_INT_OP_BOUND or value.max() >= _INT_OP_BOUND:
                raise ColumnarFallback("integer magnitude too large for exact vector arithmetic")
    elif isinstance(value, int) and not isinstance(value, bool):
        if not -_INT_OP_BOUND < value < _INT_OP_BOUND:
            raise ColumnarFallback("integer magnitude too large for exact vector arithmetic")


def _to_bool(value: Any, length: int) -> Any:
    if np is not None and isinstance(value, np.ndarray):
        return value.astype(np.bool_)
    if isinstance(value, list):
        return [bool(element) for element in value]
    return bool(value)


def _broadcast(value: Any, length: int) -> Any:
    """A constant as a full column (used when an output leaf is scalar)."""
    if type(value) not in SCALAR_TYPES:
        raise ColumnarFallback(f"cannot broadcast non-scalar {type(value).__name__}")
    if np is None:
        return [value] * length
    if type(value) is bool:
        return np.full(length, value, dtype=np.bool_)
    if type(value) is int:
        try:
            return np.full(length, value, dtype=np.int64)
        except OverflowError as error:
            raise ColumnarFallback("integer constant exceeds int64") from error
    if type(value) is float:
        return np.full(length, value, dtype=np.float64)
    return np.full(length, value, dtype=object)


_CMP_UFUNCS = {
    "==": "equal",
    "!=": "not_equal",
    "<": "less",
    "<=": "less_equal",
    ">": "greater",
    ">=": "greater_equal",
}


def _elementwise(op: str, left: Any, right: Any, length: int) -> list[Any]:
    """The list-backend (and scalar) path: apply_binary per element."""
    left_values = left if isinstance(left, list) else [left] * length
    right_values = right if isinstance(right, list) else [right] * length
    return [apply_binary(op, a, b) for a, b in zip(left_values, right_values, strict=False)]


def batch_binop(op: str, left: Any, right: Any, length: int) -> Any:
    """Apply one supported binary operator over columns and/or scalars.

    Mirrors :func:`repro.operators.apply_binary` exactly or raises
    :class:`ColumnarFallback`.  ``&&``/``||`` evaluate both operands (the
    record evaluator short-circuits, but every supported operand expression
    is total, so the values agree; an operand that *throws* simply triggers
    the fallback, which replays the record path and its short-circuiting).
    """
    if op not in SUPPORTED_BINOPS:
        raise ColumnarFallback(f"unsupported operator {op!r}")
    if not _is_column(left) and not _is_column(right):
        return apply_binary(op, left, right)
    use_numpy = np is not None and (
        isinstance(left, np.ndarray) or isinstance(right, np.ndarray)
    )
    if not use_numpy:
        return _elementwise(op, left, right, length)

    kinds = {_kind(left), _kind(right)}
    if "?" in kinds:
        raise ColumnarFallback("non-scalar operand")
    if op in ("&&", "||"):
        left_bool = _to_bool(left, length)
        right_bool = _to_bool(right, length)
        return (left_bool & right_bool) if op == "&&" else (left_bool | right_bool)
    if op in ("+", "-", "*"):
        if "b" in kinds:
            # Python bool arithmetic promotes to int (True + True == 2);
            # numpy bool arithmetic saturates.  Never vectorize it.
            raise ColumnarFallback("bool arithmetic")
        _guard_int(left)
        _guard_int(right)
        ufunc = {"+": np.add, "-": np.subtract, "*": np.multiply}[op]
        with np.errstate(all="ignore"):
            return ufunc(left, right)
    if op in ("/", "%"):
        return _batch_divmod(op, left, right, kinds)
    # Comparisons.  A str operand against a numeric one has Python semantics
    # (== is False, < raises) that numpy's promotion rules do not replicate.
    if "s" in kinds and kinds != {"s"}:
        raise ColumnarFallback("mixed string/number comparison")
    _guard_int(left)
    _guard_int(right)
    with np.errstate(all="ignore"):
        return getattr(np, _CMP_UFUNCS[op])(left, right)


def _batch_divmod(op: str, left: Any, right: Any, kinds: set[str]) -> Any:
    """The ``/`` and ``%`` kernels (numpy backend; at least one ndarray operand).

    ``apply_binary`` gives ``/`` layered semantics: exactly-divisible int
    pairs yield an int quotient, everything else true-divides, and a zero
    divisor raises ZeroDivisionError (for floats too -- ``1.0 / 0.0`` raises
    in Python where IEEE would give inf).  The kernel batches only the cases
    a fixed dtype represents faithfully and falls back on the rest; the
    record replay then reproduces both the canonical values *and* the
    canonical errors.
    """
    if "b" in kinds:
        # Python promotes bools to int (True / True == 1); numpy's bool
        # division semantics differ.  Never vectorize it.
        raise ColumnarFallback("bool arithmetic")
    if "s" in kinds:
        raise ColumnarFallback("string operand in division")
    if _is_column(right):
        has_zero = bool((np.asarray(right) == 0).any())
    else:
        has_zero = right == 0
    if has_zero:
        # Includes -0.0 divisors: Python raises ZeroDivisionError where
        # numpy would produce +/-inf (or 0 for integer columns).
        raise ColumnarFallback("zero divisor")
    if kinds == {"i"}:
        # Keep int64/float64 conversions exact: CPython's int/int true
        # division is correctly rounded from the exact rationals, while
        # numpy converts each int64 to float64 *first* (double rounding
        # beyond 2**53).  Inside the window both agree bit for bit.
        _guard_int(left)
        _guard_int(right)
        if op == "/":
            with np.errstate(all="ignore"):
                remainder = np.mod(left, right)
            exact = remainder == 0
            if bool(np.all(exact)):
                with np.errstate(all="ignore"):
                    return np.floor_divide(left, right)
            if bool(np.any(exact)):
                # Python yields int for the exact pairs and float for the
                # rest; no single dtype holds that column.
                raise ColumnarFallback("mixed exact/inexact integer division")
    with np.errstate(all="ignore"):
        return np.true_divide(left, right) if op == "/" else np.mod(left, right)


def batch_call(function: str, operands: list[Any], length: int) -> Any:
    """Apply one whitelisted scalar builtin (``abs``/``min``/``max``) batchwise.

    Mirrors the Python builtins exactly or raises :class:`ColumnarFallback`:
    ``abs`` keeps int results int (int64's minimum cannot be negated, so it
    falls back); ``min``/``max`` return the *first* extremal argument under
    Python's comparison rules, so mixed dtypes (Python preserves the winning
    operand's type), NaN (Python's result depends on argument order) and
    signed zeros (numpy orders them, Python keeps the first seen) all fall
    back to the record path.
    """
    impl = VECTOR_CALL_IMPLS.get(function)
    if impl is None:
        raise ColumnarFallback(f"no batch kernel for call {function!r}")
    if not any(_is_column(operand) for operand in operands):
        return impl(*operands)
    if np is None or not any(
        isinstance(operand, np.ndarray) for operand in operands
    ):
        columns = [
            operand if isinstance(operand, list) else [operand] * length
            for operand in operands
        ]
        return [impl(*values) for values in zip(*columns, strict=False)]

    kinds = {_kind(operand) for operand in operands}
    if function == "abs":
        (operand,) = operands
        kind = kinds.pop()
        if kind == "i":
            if operand.size and operand.min() == np.iinfo(np.int64).min:
                raise ColumnarFallback("int64 minimum has no exact absolute value")
            return np.abs(operand)
        if kind == "f":
            return np.abs(operand)
        raise ColumnarFallback(f"abs over column kind {kind!r}")
    # min / max with explicit scalar arguments.  A single argument means the
    # builtin iterates it (a bag reduction), which is not this kernel's job.
    if len(operands) < 2:
        raise ColumnarFallback("min/max needs at least two scalar arguments")
    if len(kinds) != 1:
        raise ColumnarFallback("mixed-type min/max")
    kind = kinds.pop()
    if kind not in ("i", "f"):
        raise ColumnarFallback(f"min/max over column kind {kind!r}")
    if kind == "f":
        for operand in operands:
            if _is_column(operand):
                if np.isnan(operand).any():
                    raise ColumnarFallback("NaN under min/max")
                if ((operand == 0.0) & np.signbit(operand)).any():
                    raise ColumnarFallback("negative zero under min/max")
            elif isinstance(operand, float):
                if operand != operand:
                    raise ColumnarFallback("NaN under min/max")
                if operand == 0.0 and math.copysign(1.0, operand) < 0.0:
                    raise ColumnarFallback("negative zero under min/max")
    ufunc = np.minimum if function == "min" else np.maximum
    result = operands[0]
    with np.errstate(all="ignore"):
        for operand in operands[1:]:
            result = ufunc(result, operand)
    return result


def batch_unop(op: str, operand: Any, length: int) -> Any:
    """Apply ``-``/``!`` over a column (apply_unary semantics)."""
    if op not in SUPPORTED_UNOPS:
        raise ColumnarFallback(f"unsupported unary operator {op!r}")
    if not _is_column(operand):
        return apply_unary(op, operand)
    if np is None or not isinstance(operand, np.ndarray):
        return [apply_unary(op, element) for element in operand]
    if op == "!":
        return ~_to_bool(operand, length)
    kind = operand.dtype.kind
    if kind == "b":
        # Python negates bools through int (-True == -1); numpy raises.
        operand = operand.astype(np.int64)
    elif kind == "i":
        if operand.size and operand.min() == np.iinfo(np.int64).min:
            raise ColumnarFallback("int64 minimum cannot be negated exactly")
    elif kind != "f":
        raise ColumnarFallback(f"cannot negate column kind {kind!r}")
    with np.errstate(all="ignore"):
        return -operand


# ---------------------------------------------------------------------------
# Scalar expressions over a partition
# ---------------------------------------------------------------------------


class ScalarScope:
    """Driver-level name resolution for :class:`Ref` nodes.

    Mirrors the evaluator's ``_lookup``: the lowering-time binding snapshot
    first, then the live program environment.  ``values_provider`` is a
    zero-argument callable returning the *current* environment dict, so a
    plan node cached across loop iterations sees each iteration's updated
    scalars -- exactly like the record closure it shadows.
    """

    def __init__(
        self,
        base: dict[str, Any] | None = None,
        values_provider: Callable[[], dict[str, Any]] | None = None,
    ):
        self.base = base or {}
        self.values_provider = values_provider

    def resolve(self, name: str) -> Any:
        if name in self.base:
            return self.base[name]
        if self.values_provider is not None:
            values = self.values_provider()
            if name in values:
                return values[name]
        raise ExecutionError(f"undefined variable {name!r}")


class Expr:
    """A scalar expression evaluable per record or over a whole partition."""

    def batch(self, part: ColumnarPartition, scope: ScalarScope) -> Any:
        raise NotImplementedError

    def record(self, record: Any, scope: ScalarScope) -> Any:
        raise NotImplementedError


class Col(Expr):
    """A record component: a path of tuple positions / dict field names."""

    def __init__(self, path: Iterable[Any]):
        self.path = tuple(path)

    def batch(self, part: ColumnarPartition, scope: ScalarScope) -> Any:
        return part.leaf(self.path)

    def record(self, record: Any, scope: ScalarScope) -> Any:
        value = record
        for step in self.path:
            value = value[step]
        return value

    def __repr__(self) -> str:
        return f"Col({'.'.join(map(str, self.path))})"


class Ref(Expr):
    """A driver-scope scalar (resolved per batch, broadcast per record)."""

    def __init__(self, name: str):
        self.name = name

    def batch(self, part: ColumnarPartition, scope: ScalarScope) -> Any:
        value = scope.resolve(self.name)
        if type(value) not in SCALAR_TYPES:
            raise ColumnarFallback(f"variable {self.name!r} is not a scalar")
        return value

    def record(self, record: Any, scope: ScalarScope) -> Any:
        return scope.resolve(self.name)

    def __repr__(self) -> str:
        return f"Ref({self.name})"


class Lit(Expr):
    """A constant scalar."""

    def __init__(self, value: Any):
        self.value = value

    def batch(self, part: ColumnarPartition, scope: ScalarScope) -> Any:
        return self.value

    def record(self, record: Any, scope: ScalarScope) -> Any:
        return self.value

    def __repr__(self) -> str:
        return f"Lit({self.value!r})"


class BinOp(Expr):
    def __init__(self, op: str, left: Expr, right: Expr):
        self.op = op
        self.left = left
        self.right = right

    def batch(self, part: ColumnarPartition, scope: ScalarScope) -> Any:
        return batch_binop(
            self.op, self.left.batch(part, scope), self.right.batch(part, scope), part.length
        )

    def record(self, record: Any, scope: ScalarScope) -> Any:
        return apply_binary(self.op, self.left.record(record, scope), self.right.record(record, scope))

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class UnOp(Expr):
    def __init__(self, op: str, operand: Expr):
        self.op = op
        self.operand = operand

    def batch(self, part: ColumnarPartition, scope: ScalarScope) -> Any:
        return batch_unop(self.op, self.operand.batch(part, scope), part.length)

    def record(self, record: Any, scope: ScalarScope) -> Any:
        return apply_unary(self.op, self.operand.record(record, scope))

    def __repr__(self) -> str:
        return f"{self.op}({self.operand!r})"


class Call(Expr):
    """A call to a whitelisted pure scalar builtin (``abs``/``min``/``max``).

    Only constructed by the lowering after checking the program's function
    registry still maps ``function`` to the exact builtin in
    :data:`VECTOR_CALL_IMPLS`; the record path applies that same builtin, so
    both paths share one implementation.
    """

    def __init__(self, function: str, args: Iterable[Expr]):
        self.function = function
        self.args = tuple(args)

    def batch(self, part: ColumnarPartition, scope: ScalarScope) -> Any:
        operands = [arg.batch(part, scope) for arg in self.args]
        return batch_call(self.function, operands, part.length)

    def record(self, record: Any, scope: ScalarScope) -> Any:
        impl = VECTOR_CALL_IMPLS[self.function]
        return impl(*(arg.record(record, scope) for arg in self.args))

    def __repr__(self) -> str:
        return f"Call({self.function}, {self.args!r})"


class OutTuple:
    """A tuple-shaped output spec for :class:`VectorizedMap`."""

    def __init__(self, specs: Iterable[Any]):
        self.specs = tuple(specs)

    def __repr__(self) -> str:
        return f"OutTuple{self.specs!r}"


# ---------------------------------------------------------------------------
# Vectorized record functions
# ---------------------------------------------------------------------------


class VectorizedFunction:
    """A record function that also knows how to process a whole partition.

    ``__call__`` *is* the record path: it delegates to ``oracle`` -- the
    original closure this instance annotates -- whenever one was supplied, so
    wrapping a plan function in a vectorized marker never changes classic
    record-at-a-time results.  ``apply_batch`` maps a
    :class:`ColumnarPartition` to a new one (or raises
    :class:`ColumnarFallback`).
    """

    def __init__(self, oracle: Callable[..., Any] | None = None):
        self.oracle = oracle

    def __call__(self, *args: Any) -> Any:
        if self.oracle is not None:
            return self.oracle(*args)
        return self.apply_record(*args)

    def apply_batch(self, part: ColumnarPartition) -> ColumnarPartition:
        raise NotImplementedError

    def apply_record(self, *args: Any) -> Any:
        raise NotImplementedError


def _build_output(spec: Any, part: ColumnarPartition, scope: ScalarScope) -> tuple[Any, list[Any]]:
    """Evaluate one output spec over a partition: ``(template, columns)``."""
    if isinstance(spec, Col):
        sub = part.subpart(spec.path)
        return sub.template, list(sub.columns)
    if isinstance(spec, OutTuple):
        templates = []
        columns: list[Any] = []
        for element in spec.specs:
            template, element_columns = _build_output(element, part, scope)
            templates.append(template)
            columns.extend(element_columns)
        return ("tuple", tuple(templates)), columns
    column = spec.batch(part, scope)
    if not _is_column(column):
        column = _broadcast(column, part.length)
    return "*", [column]


def _record_output(spec: Any, record: Any, scope: ScalarScope) -> Any:
    """Evaluate one output spec for a single record (the oracle shape)."""
    if isinstance(spec, OutTuple):
        return tuple(_record_output(element, record, scope) for element in spec.specs)
    return spec.record(record, scope)


def _interleave(columns: list[Any], count: int, fan_out: int) -> Any:
    """Merge ``fan_out`` per-copy columns so copy ``j`` of record ``i`` lands
    at output position ``i * fan_out + j`` (the record path's emission order).
    """
    if np is not None and all(isinstance(column, np.ndarray) for column in columns):
        dtypes = {column.dtype for column in columns}
        if len(dtypes) != 1:
            # e.g. a constant bag mixing ints and floats: the record path
            # binds exact per-element types no single dtype represents.
            raise ColumnarFallback("mixed column dtypes across flat_map copies")
        out = np.empty(count * fan_out, dtype=dtypes.pop())
        for j, column in enumerate(columns):
            out[j::fan_out] = column
        return out
    merged = [None] * (count * fan_out)
    for j, column in enumerate(columns):
        values = _column_list(column)
        merged[j::fan_out] = values
    return merged


class VectorizedMap(VectorizedFunction):
    """A ``map`` whose output is built from expressions and spliced columns.

    ``out`` is an :class:`Expr` (scalar output), a :class:`Col` (structural
    passthrough of a whole subtree, scalar or not), or an :class:`OutTuple`
    of such specs (tuple output, e.g. the ``(key, value)`` projections the
    group-by lowering emits).
    """

    def __init__(self, out: Any, scope: ScalarScope | None = None, oracle: Any = None):
        super().__init__(oracle)
        self.out = out
        self.scope = scope or ScalarScope()

    def apply_batch(self, part: ColumnarPartition) -> ColumnarPartition:
        template, columns = _build_output(self.out, part, self.scope)
        return ColumnarPartition(template, columns, part.length)

    def _build(self, spec: Any, part: ColumnarPartition) -> tuple[Any, list[Any]]:
        return _build_output(spec, part, self.scope)

    def apply_record(self, record: Any) -> Any:
        return self._record_value(self.out, record)

    def _record_value(self, spec: Any, record: Any) -> Any:
        if isinstance(spec, OutTuple):
            return tuple(self._record_value(element, record) for element in spec.specs)
        return spec.record(record, self.scope)


class VectorizedFilter(VectorizedFunction):
    """A ``filter`` whose predicate is an :class:`Expr` (truthiness applies)."""

    def __init__(self, predicate: Expr, scope: ScalarScope | None = None, oracle: Any = None):
        super().__init__(oracle)
        self.predicate = predicate
        self.scope = scope or ScalarScope()

    def apply_batch(self, part: ColumnarPartition) -> ColumnarPartition:
        mask = self.predicate.batch(part, self.scope)
        if not _is_column(mask):
            return part if bool(mask) else part.empty()
        return part.compress(_to_bool(mask, part.length))

    def apply_record(self, record: Any) -> Any:
        return bool(self.predicate.record(record, self.scope))


class VectorizedMapValues(VectorizedFunction):
    """A ``map_values`` whose value transform is an :class:`Expr` (paths are
    relative to the pair's *value*)."""

    def __init__(self, expr: Expr, scope: ScalarScope | None = None, oracle: Any = None):
        super().__init__(oracle)
        self.expr = expr
        self.scope = scope or ScalarScope()

    def apply_batch(self, part: ColumnarPartition) -> ColumnarPartition:
        template = part.template
        if template == "*" or template[0] != "tuple" or len(template[1]) != 2:
            raise ColumnarFallback("map_values needs (key, value) records")
        key = part.subpart((0,))
        column = self.expr.batch(part.subpart((1,)), self.scope)
        if not _is_column(column):
            column = _broadcast(column, part.length)
        return ColumnarPartition(
            ("tuple", (key.template, "*")), list(key.columns) + [column], part.length
        )

    def apply_record(self, value: Any) -> Any:
        return self.expr.record(value, self.scope)


class VectorizedBind(VectorizedFunction):
    """The generator-binding ``map``: destructure each element into a row dict.

    ``pattern`` is ``("var", name)``, ``("wildcard",)`` or
    ``("tuple", (sub, ...))`` -- a pickled-down mirror of the comprehension
    pattern syntax.  The batch kernel is purely structural: it re-roots the
    template as a row dict without touching a single value.
    """

    def __init__(self, pattern: tuple[Any, ...], oracle: Any = None):
        super().__init__(oracle)
        self.pattern = pattern

    def apply_batch(self, part: ColumnarPartition) -> ColumnarPartition:
        names: list[str] = []
        templates: list[Any] = []
        columns: list[Any] = []

        def walk(spec: tuple[Any, ...], template: Any, start: int) -> None:
            kind = spec[0]
            if kind == "wildcard":
                return
            if kind == "var":
                names.append(spec[1])
                templates.append(template)
                columns.extend(part.columns[start : start + _leaf_count(template)])
                return
            if template == "*" or template[0] != "tuple" or len(template[1]) != len(spec[1]):
                raise ColumnarFallback("pattern/record shape mismatch")
            offset = start
            for sub_spec, sub_template in zip(spec[1], template[1], strict=False):
                walk(sub_spec, sub_template, offset)
                offset += _leaf_count(sub_template)

        walk(self.pattern, part.template, 0)
        if len(set(names)) != len(names):
            raise ColumnarFallback("duplicate pattern variable")
        return ColumnarPartition(("dict", tuple(names), tuple(templates)), columns, part.length)

    def apply_record(self, element: Any) -> dict[str, Any]:
        row: dict[str, Any] = {}

        def bind(spec: tuple[Any, ...], value: Any) -> None:
            kind = spec[0]
            if kind == "var":
                row[spec[1]] = value
            elif kind == "tuple":
                if not isinstance(value, (tuple, list)) or len(value) != len(spec[1]):
                    raise ExecutionError(f"cannot bind pattern to value {value!r}")
                for sub, element_value in zip(spec[1], value, strict=False):
                    bind(sub, element_value)

        bind(self.pattern, element)
        return row


class VectorizedLet(VectorizedFunction):
    """The let-binding ``map``: ``row -> {**row, name: expr(row)}``.

    Only single-variable bindings of fresh names over dict rows vectorize;
    the new value is one scalar column appended to the row template, so the
    kernel extends the surrounding segment instead of splitting it.
    """

    def __init__(self, name: str, expr: Expr, scope: ScalarScope | None = None, oracle: Any = None):
        super().__init__(oracle)
        self.name = name
        self.expr = expr
        self.scope = scope or ScalarScope()

    def apply_batch(self, part: ColumnarPartition) -> ColumnarPartition:
        template = part.template
        if template == "*" or template[0] != "dict":
            raise ColumnarFallback("let kernels require dict-shaped rows")
        names, subs = template[1], template[2]
        if self.name in names:
            # Rebinding overwrites in place on the record path; keep that
            # rare case there instead of re-ordering template fields.
            raise ColumnarFallback(f"let rebinds existing field {self.name!r}")
        column = self.expr.batch(part, self.scope)
        if not _is_column(column):
            column = _broadcast(column, part.length)
        return ColumnarPartition(
            ("dict", names + (self.name,), subs + ("*",)),
            list(part.columns) + [column],
            part.length,
        )

    def apply_record(self, row: Any) -> dict[str, Any]:
        return {**row, self.name: self.expr.record(row, self.scope)}


class VectorizedFlatMap(VectorizedFunction):
    """A ``flat_map`` with a statically-known (spec-driven) expansion.

    Two spec shapes cover the constant-fan-out expansions the compiler
    emits:

    * ``("tuple", (out_0, ..., out_{k-1}))`` -- every record emits ``k``
      records, the ``j``-th built from output spec ``out_j`` (a
      :class:`Col` / :class:`Expr` / :class:`OutTuple`, exactly as in
      :class:`VectorizedMap`).  All output specs must produce the same
      template.
    * ``("extend", names, (ext_0, ..., ext_{k-1}))`` -- rows are dicts; every
      row is emitted ``k`` times, copy ``j`` extended with ``names`` bound to
      the expressions of ``ext_j``.  This is the shape of a generator over a
      constant local bag (``expand_local``) and of a broadcast nested-loop
      join side: repeat the row, append the bag element's bindings.

    Expansions are interleaved in record order -- record ``i``'s ``k``
    outputs are adjacent, ordered by ``j`` -- matching the record-path list
    comprehension bit for bit.
    """

    def __init__(self, spec: tuple[Any, ...], scope: ScalarScope | None = None, oracle: Any = None):
        super().__init__(oracle)
        self.spec = spec
        self.scope = scope or ScalarScope()

    @property
    def fan_out(self) -> int:
        return len(self.spec[-1])

    def apply_batch(self, part: ColumnarPartition) -> ColumnarPartition:
        if self.spec[0] == "tuple":
            return self._batch_tuple(part)
        return self._batch_extend(part)

    def _batch_tuple(self, part: ColumnarPartition) -> ColumnarPartition:
        outs = self.spec[1]
        built = [_build_output(out, part, self.scope) for out in outs]
        templates = {template for template, _ in built}
        if len(templates) != 1:
            raise ColumnarFallback("flat_map outputs have differing templates")
        template = templates.pop()
        leaf_columns = [
            _interleave([columns[leaf] for _, columns in built], part.length, len(outs))
            for leaf in range(_leaf_count(template))
        ]
        return ColumnarPartition(template, leaf_columns, part.length * len(outs))

    def _batch_extend(self, part: ColumnarPartition) -> ColumnarPartition:
        template = part.template
        if template == "*" or template[0] != "dict":
            raise ColumnarFallback("extend kernels require dict-shaped rows")
        names, exts = self.spec[1], self.spec[2]
        row_names, row_subs = template[1], template[2]
        if set(names) & set(row_names):
            # Rebinding overwrites in place on the record path; keep that
            # rare case there instead of re-ordering template fields.
            raise ColumnarFallback("flat_map rebinds an existing field")
        fan_out = len(exts)
        repeated = [
            np.repeat(column, fan_out)
            if np is not None and isinstance(column, np.ndarray)
            else [value for value in _column_list(column) for _ in range(fan_out)]
            for column in part.columns
        ]
        new_columns: list[Any] = []
        for position in range(len(names)):
            copies = []
            for ext in exts:
                column = ext[position].batch(part, self.scope)
                if not _is_column(column):
                    column = _broadcast(column, part.length)
                copies.append(column)
            new_columns.append(_interleave(copies, part.length, fan_out))
        return ColumnarPartition(
            ("dict", row_names + tuple(names), row_subs + ("*",) * len(names)),
            repeated + new_columns,
            part.length * fan_out,
        )

    def apply_record(self, record: Any) -> list[Any]:
        if self.spec[0] == "tuple":
            return [_record_output(out, record, self.scope) for out in self.spec[1]]
        names, exts = self.spec[1], self.spec[2]
        return [
            {**record, **{name: expr.record(record, self.scope) for name, expr in zip(names, ext, strict=False)}}
            for ext in exts
        ]


class VectorizedCombine:
    """A key-value combiner carrying its monoid operator symbol.

    Monoid combine functions are plain lambdas with no identity the batch
    kernels could recognise; wrapping them tags the operator while keeping
    ``__call__`` a transparent delegate, so the record path (map-side
    combiners, reduce-side buckets, interpreter oracle comparisons) is
    untouched.
    """

    def __init__(self, op: str, fn: Callable[[Any, Any], Any]):
        self.op = op
        self.fn = fn

    def __call__(self, left: Any, right: Any) -> Any:
        return self.fn(left, right)

    def __repr__(self) -> str:
        return f"VectorizedCombine({self.op!r})"


# ---------------------------------------------------------------------------
# Grouped-fold (combiner) kernels
# ---------------------------------------------------------------------------


def combiner_vectorizable(combiner: tuple[Any, ...]) -> bool:
    """Whether a combiner spec has a batch kernel: a ``("reduce", fn)`` /
    ``("seq", zero, seq_op)`` carrying a foldable :class:`VectorizedCombine`,
    or the adaptive layer's map-side ``("group",)`` collector."""
    kind = combiner[0]
    if kind == "reduce":
        fn = combiner[1]
        return isinstance(fn, VectorizedCombine) and fn.op in VECTOR_COMBINE_OPS
    if kind == "seq":
        _, zero, seq_op = combiner
        return (
            isinstance(seq_op, VectorizedCombine)
            and seq_op.op in VECTOR_COMBINE_OPS
            and type(zero) in (int, float)
        )
    return kind == "group"


_FOLD_UFUNC_NAMES = {"+": "add", "*": "multiply", "min": "minimum", "max": "maximum"}


def _guard_fold(op: str, values: Any, zero: Any = None) -> None:
    """Refuse folds where a ufunc could diverge from a Python left-fold."""
    if values.dtype.kind == "i":
        if op == "*":
            # Products overflow int64 after a handful of elements; there is
            # no cheap mid-fold bound check, so integer products never batch.
            raise ColumnarFallback("integer product fold")
        if values.size and (values.min() <= -_INT_OP_BOUND or values.max() >= _INT_OP_BOUND):
            raise ColumnarFallback("integer magnitude too large for exact vector fold")
    elif op in ("min", "max"):
        # np.minimum/maximum always propagate NaN and order signed zeros;
        # Python's min/max return whichever operand the comparison picks.
        if np.isnan(values).any():
            raise ColumnarFallback("NaN under min/max fold")
        if ((values == 0.0) & np.signbit(values)).any():
            raise ColumnarFallback("negative zero under min/max fold")
    if zero is not None and isinstance(zero, float):
        if zero != zero or (zero == 0.0 and math.copysign(1.0, zero) < 0.0):
            raise ColumnarFallback("NaN/negative-zero seed")


def combine_batch(combiner: tuple[Any, ...], records: list[Any]) -> list[Any]:
    """Vectorized map-side combine: group by key, fold values with a ufunc.

    Grouping runs through a Python dict over the *reassembled* native keys,
    so key identity (``1 == 1.0``, NaN never equalling itself, first-seen
    output order) is exactly the record path's.  Only the fold itself is
    vectorized: ``np.ufunc.at`` is unbuffered and applies the updates in
    record order, making per-key accumulation the same left-fold the dict
    combiner performs.  Raises :class:`ColumnarFallback` whenever exactness
    cannot be guaranteed.
    """
    if np is None:
        raise ColumnarFallback("no numpy backend")
    part = ColumnarPartition.from_records(records)
    if part is None:
        raise ColumnarFallback("records are not columnar")
    kind = combiner[0]
    if kind == "group":
        return _grouped_collect(part)
    template = part.template
    if template == "*" or template[0] != "tuple" or len(template[1]) != 2 or template[1][1] != "*":
        raise ColumnarFallback("combiner needs (key, scalar value) records")
    values = part.columns[-1]
    if values.dtype.kind not in ("i", "f"):
        raise ColumnarFallback("non-numeric value column")

    if kind == "reduce":
        op = combiner[1].op
        zero = None
    else:
        _, zero, seq_op = combiner
        op = seq_op.op
    _guard_fold(op, values, zero)

    keys = part.subpart((0,)).to_records()
    group_of: dict[Any, int] = {}
    ordered_keys: list[Any] = []
    first_position: list[int] = []
    group_ids = np.empty(part.length, dtype=np.int64)
    try:
        for position, key in enumerate(keys):
            group = group_of.get(key)
            if group is None:
                group = group_of[key] = len(ordered_keys)
                ordered_keys.append(key)
                first_position.append(position)
            group_ids[position] = group
    except TypeError as error:  # unhashable key
        raise ColumnarFallback("unhashable key") from error

    ufunc = getattr(np, _FOLD_UFUNC_NAMES[op])
    if kind == "reduce":
        first = np.array(first_position, dtype=np.int64)
        accumulator = values[first]
        rest = np.ones(part.length, dtype=np.bool_)
        rest[first] = False
        with np.errstate(all="ignore"):
            ufunc.at(accumulator, group_ids[rest], values[rest])
    else:
        dtype = np.float64 if (isinstance(zero, float) or values.dtype.kind == "f") else np.int64
        if dtype == np.int64:
            _guard_int(zero)
        accumulator = np.full(len(ordered_keys), zero, dtype=dtype)
        with np.errstate(all="ignore"):
            ufunc.at(accumulator, group_ids, values)
    return list(zip(ordered_keys, accumulator.tolist(), strict=False))


def _grouped_collect(part: ColumnarPartition) -> list[Any]:
    """The ``("group",)`` kernel: collect each key's values in record order.

    Key grouping is fully vectorized for scalar integer keys (the only case
    where ``np.unique`` equality provably coincides with Python dict
    hashing): ``inverse`` ranks are remapped to *first-seen* order and a
    stable argsort gathers each group's values in record order, so the
    result is exactly the record path's ``setdefault(key, []).append(value)``
    dict, item for item.
    """
    template = part.template
    if template == "*" or template[0] != "tuple" or len(template[1]) != 2:
        raise ColumnarFallback("group combiner needs (key, value) records")
    if template[1][0] != "*":
        raise ColumnarFallback("grouped collect needs scalar keys")
    keys_column = part.columns[0]
    if not isinstance(keys_column, np.ndarray) or keys_column.dtype.kind != "i":
        raise ColumnarFallback("grouped collect needs an integer key column")
    unique, first_index, inverse = np.unique(
        keys_column, return_index=True, return_inverse=True
    )
    order = np.argsort(first_index, kind="stable")
    rank = np.empty(len(unique), dtype=np.int64)
    rank[order] = np.arange(len(unique), dtype=np.int64)
    group_ids = rank[inverse.reshape(-1)]
    ordered_keys = unique[order].tolist()
    permutation = np.argsort(group_ids, kind="stable")
    counts = np.bincount(group_ids, minlength=len(unique))
    value_part = part.subpart((1,))
    if value_part.template == "*":
        ordered_values = value_part.columns[0][permutation].tolist()
    else:
        values = value_part.to_records()
        ordered_values = [values[position] for position in permutation.tolist()]
    groups: list[list[Any]] = []
    start = 0
    for count in counts.tolist():
        groups.append(ordered_values[start : start + count])
        start += count
    return list(zip(ordered_keys, groups, strict=False))
