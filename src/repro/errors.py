"""Exception hierarchy shared by every subsystem of the DIABLO reproduction.

The compiler pipeline reports problems through these exceptions so that callers
(and tests) can distinguish *where* a program was rejected:

* :class:`LexerError` / :class:`ParseError` -- the program is not syntactically
  a loop-language program (Figure 1 of the paper).
* :class:`RestrictionError` -- the program parses but violates the
  parallelization restrictions of Definition 3.1 (Section 3.2).
* :class:`TranslationError` -- an internal failure while applying the Figure 2
  rules (these indicate a bug, not a user error).
* :class:`CompilationError` -- the comprehension-to-DISC-algebra compiler could
  not produce a plan.
* :class:`ExecutionError` -- a runtime failure while evaluating a plan or a
  loop program.
"""

from __future__ import annotations

from dataclasses import dataclass


class DiabloError(Exception):
    """Base class for every error raised by the reproduction."""


@dataclass(frozen=True)
class SourceLocation:
    """A position inside a loop-language source text.

    Attributes:
        line: 1-based line number.
        column: 1-based column number.
    """

    line: int = 0
    column: int = 0

    def __str__(self) -> str:
        if self.line <= 0:
            return "<unknown>"
        return f"line {self.line}, column {self.column}"


class LexerError(DiabloError):
    """Raised when the tokenizer meets a character it cannot interpret."""

    def __init__(self, message: str, location: SourceLocation | None = None):
        self.location = location or SourceLocation()
        super().__init__(f"{message} at {self.location}")


class ParseError(DiabloError):
    """Raised when the parser cannot build an AST from the token stream."""

    def __init__(self, message: str, location: SourceLocation | None = None):
        self.location = location or SourceLocation()
        super().__init__(f"{message} at {self.location}")


class RestrictionError(DiabloError):
    """Raised when a program violates the Definition 3.1 restrictions.

    The ``hints`` list carries actionable suggestions, e.g. the paper's advice
    to promote a scalar temporary to an array indexed by the loop variables.
    """

    def __init__(self, message: str, hints: list[str] | None = None):
        self.hints = list(hints or [])
        full = message
        if self.hints:
            full += "\n" + "\n".join(f"  hint: {h}" for h in self.hints)
        super().__init__(full)


class MonoidLawError(DiabloError):
    """Raised when a registered monoid fails property-based law probing.

    The monoid-law verifier (:mod:`repro.analysis.monoid_laws`) probes
    associativity, the identity laws and (when claimed) commutativity over
    sample elements at registration time; a counter-example is a user error
    that would otherwise surface as silently wrong distributed results.
    """

    def __init__(self, message: str, violations: list | None = None):
        self.violations = list(violations or [])
        super().__init__(message)


class TranslationError(DiabloError):
    """Raised when the Figure 2 translation rules fail unexpectedly."""


class CompilationError(DiabloError):
    """Raised when a comprehension cannot be compiled to a DISC plan."""


class StaticCheckError(CompilationError):
    """Raised in strict mode when static diagnostics block compilation.

    ``diagnostics`` holds the :class:`repro.analysis.diagnostics.Diagnostic`
    findings (warnings promoted to errors) that caused the rejection.
    """

    def __init__(self, message: str, diagnostics: list | None = None):
        self.diagnostics = list(diagnostics or [])
        super().__init__(message)


class ExecutionError(DiabloError):
    """Raised when evaluating a plan or interpreting a loop program fails."""


class WorkerLostError(ExecutionError):
    """Raised by the cluster backend when a worker process dies mid-job.

    A worker counts as lost when its control socket closes unexpectedly,
    a request times out, or it stops answering heartbeats.  The cluster is
    fail-fast (no lineage, no task retry), so losing a worker fails the
    computation promptly instead of hanging on its resident state.
    """


class InterpreterError(ExecutionError):
    """Raised by the sequential loop-language interpreter."""
