"""Hand-written KMeans clustering step (Figure 3.K).

Spark original: broadcast the current centroids to every worker, map each
point to its closest centroid paired with an ``Avg`` accumulator, reduceByKey
to merge the accumulators, and collect the new centroids.  Only a small,
constant amount of data is shuffled -- this is exactly the plan the paper
contrasts with the join-based plan DIABLO generates.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Any

from repro.runtime.context import DistributedContext


def _distance(point: tuple[float, float], centroid: tuple[float, float]) -> float:
    return math.sqrt((point[0] - centroid[0]) ** 2 + (point[1] - centroid[1]) ** 2)


def _closest(point: tuple[float, float], centroids: dict[int, tuple[float, float]]) -> int:
    best_index = 0
    best_distance = float("inf")
    for index, centroid in centroids.items():
        distance = _distance(point, centroid)
        if distance < best_distance:
            best_distance = distance
            best_index = index
    return best_index


def distributed(
    context: DistributedContext, inputs: dict[str, Any], num_steps: int = 1
) -> dict[str, Any]:
    """Broadcast centroids, assign points, reduce per-centroid sums."""
    points = context.parallelize(inputs["P"])
    centroids = dict(inputs["C"])
    for _ in range(num_steps):
        broadcast = context.broadcast(centroids)
        assigned = points.map(
            lambda point: (_closest(point, broadcast.value), (point[0], point[1], 1))
        )
        sums = assigned.reduce_by_key(lambda a, b: (a[0] + b[0], a[1] + b[1], a[2] + b[2]))
        updates = sums.map_values(lambda total: (total[0] / total[2], total[1] / total[2]))
        new_centroids = dict(centroids)
        new_centroids.update(updates.collect_as_map())
        centroids = new_centroids
    return {"C": centroids}


def sequential(inputs: dict[str, Any], num_steps: int = 1) -> dict[str, Any]:
    """Plain-Python reference implementation."""
    centroids = dict(inputs["C"])
    points = inputs["P"]
    for _ in range(num_steps):
        sums: dict[int, list[float]] = defaultdict(lambda: [0.0, 0.0, 0.0])
        for point in points:
            index = _closest(point, centroids)
            accumulator = sums[index]
            accumulator[0] += point[0]
            accumulator[1] += point[1]
            accumulator[2] += 1.0
        updated = dict(centroids)
        for index, (x_total, y_total, count) in sums.items():
            updated[index] = (x_total / count, y_total / count)
        centroids = updated
    return {"C": centroids}
