"""Hand-written PageRank (Figure 3.J).

Spark original: group the edges by source into an adjacency list, join the
current ranks with the adjacency list, flatMap the contributions, reduceByKey,
then apply the damping factor.  The DIABLO program of Appendix B produces a
rank for *every* vertex (vertices with no incoming edges keep the damping
term), so the baseline unions those in at the end to return a comparable rank
vector.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any

from repro.runtime.context import DistributedContext

DAMPING = 0.85


def distributed(context: DistributedContext, inputs: dict[str, Any]) -> dict[str, Any]:
    """Adjacency-list PageRank with join + reduceByKey steps."""
    num_vertices = inputs["N"]
    num_steps = inputs.get("num_steps", 1)
    edges = context.parallelize_pairs(inputs["E"]).map(lambda record: record[0])
    links = edges.group_by_key().cache()
    degrees = links.map_values(len)
    ranks = links.map_values(lambda _targets: 1.0 / num_vertices)

    for _ in range(num_steps):
        contributions = links.join(ranks).flat_map(
            lambda record: [
                (target, record[1][1] / len(record[1][0])) for target in record[1][0]
            ]
        )
        updated = contributions.reduce_by_key(lambda a, b: a + b).map_values(
            lambda total: (1 - DAMPING) / num_vertices + DAMPING * total
        )
        # Vertices with no incoming edges keep the damping term only; carry
        # every vertex forward so the next iteration sees a complete vector.
        base = context.parallelize_raw(
            [(vertex, (1 - DAMPING) / num_vertices) for vertex in range(1, num_vertices + 1)]
        )
        ranks = base.merge(updated)

    return {"P": ranks.collect_as_map(), "C": degrees.collect_as_map()}


def sequential(inputs: dict[str, Any]) -> dict[str, Any]:
    """Plain-Python reference implementation."""
    num_vertices = inputs["N"]
    num_steps = inputs.get("num_steps", 1)
    out_links: dict[int, list[int]] = defaultdict(list)
    for (source, target), present in inputs["E"].items():
        if present:
            out_links[source].append(target)
    ranks = {vertex: 1.0 / num_vertices for vertex in range(1, num_vertices + 1)}
    for _ in range(num_steps):
        updated = {vertex: (1 - DAMPING) / num_vertices for vertex in range(1, num_vertices + 1)}
        for source, targets in out_links.items():
            share = ranks[source] / len(targets)
            for target in targets:
                updated[target] += DAMPING * share
        ranks = updated
    degrees = {source: len(targets) for source, targets in out_links.items()}
    return {"P": ranks, "C": degrees}
