"""Hand-written Equal (Figure 3.B).

Spark original::

    val x = V.first()
    V.map(_ == x).reduce(_ && _)

The DIABLO program compares against an explicit input value ``x``; the
baseline does the same so the two are directly comparable.
"""

from __future__ import annotations

from typing import Any

from repro.runtime.context import DistributedContext


def distributed(context: DistributedContext, inputs: dict[str, Any]) -> dict[str, Any]:
    """Map to booleans and reduce with logical and."""
    words = context.parallelize(inputs["words"])
    target = inputs["x"]
    all_equal = words.map(lambda word: word == target).fold(True, lambda a, b: a and b)
    return {"eq": all_equal}


def sequential(inputs: dict[str, Any]) -> dict[str, Any]:
    """Plain-Python reference implementation."""
    target = inputs["x"]
    return {"eq": all(word == target for word in inputs["words"])}
