"""Hand-written Conditional Sum (Figure 3.A).

Spark original: ``V.filter(_ < 100).reduce(_+_)``.
"""

from __future__ import annotations

from typing import Any

from repro.runtime.context import DistributedContext

THRESHOLD = 100.0


def distributed(context: DistributedContext, inputs: dict[str, Any]) -> dict[str, Any]:
    """Filter below the threshold and reduce with addition."""
    values = context.parallelize(inputs["V"])
    total = values.filter(lambda value: value < THRESHOLD).fold(0.0, lambda a, b: a + b)
    return {"sum": total}


def sequential(inputs: dict[str, Any]) -> dict[str, Any]:
    """Plain-Python reference implementation."""
    return {"sum": sum(value for value in inputs["V"] if value < THRESHOLD)}
