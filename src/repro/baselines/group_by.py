"""Hand-written Group By (Figure 3.G).

Spark original: ``V.map(v => (v.K, v.A)).reduceByKey(_ + _)``.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any

from repro.runtime.context import DistributedContext


def distributed(context: DistributedContext, inputs: dict[str, Any]) -> dict[str, Any]:
    """Key by K and sum A per key."""
    records = context.parallelize(inputs["V"])
    sums = records.map(lambda record: (record["K"], record["A"])).reduce_by_key(lambda a, b: a + b)
    return {"C": sums.collect_as_map()}


def sequential(inputs: dict[str, Any]) -> dict[str, Any]:
    """Plain-Python reference implementation."""
    sums: dict[Any, float] = defaultdict(float)
    for record in inputs["V"]:
        sums[record["K"]] += record["A"]
    return {"C": dict(sums)}
