"""Hand-written String Match (Figure 3.C).

Spark original::

    words.map(w => (w == key1) || (w == key2) || (w == key3)).reduce(_ || _)
"""

from __future__ import annotations

from typing import Any

from repro.runtime.context import DistributedContext


def distributed(context: DistributedContext, inputs: dict[str, Any]) -> dict[str, Any]:
    """Map each word to a match flag and reduce with logical or."""
    words = context.parallelize(inputs["words"])
    keys = (inputs["key1"], inputs["key2"], inputs["key3"])
    matched = words.map(lambda word: word in keys).fold(False, lambda a, b: a or b)
    return {"c": matched}


def sequential(inputs: dict[str, Any]) -> dict[str, Any]:
    """Plain-Python reference implementation."""
    keys = (inputs["key1"], inputs["key2"], inputs["key3"])
    return {"c": any(word in keys for word in inputs["words"])}
