"""Hand-written Word Count (Figure 3.D).

Spark original: ``words.map((_, 1)).reduceByKey(_ + _)``.
"""

from __future__ import annotations

from collections import Counter
from typing import Any

from repro.runtime.context import DistributedContext


def distributed(context: DistributedContext, inputs: dict[str, Any]) -> dict[str, Any]:
    """Classic map + reduceByKey word count."""
    words = context.parallelize(inputs["words"])
    counts = words.map(lambda word: (word, 1)).reduce_by_key(lambda a, b: a + b)
    return {"C": counts.collect_as_map()}


def sequential(inputs: dict[str, Any]) -> dict[str, Any]:
    """Plain-Python reference implementation."""
    return {"C": dict(Counter(inputs["words"]))}
