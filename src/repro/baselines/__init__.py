"""Hand-written baseline programs (the "hand-written" series of Figure 3).

Each module implements one workload twice:

* ``distributed(context, inputs)`` -- the expert-written plan against the
  runtime Dataset API, transcribed from the Spark programs in Appendix B of
  the paper (broadcast KMeans, join+reduceByKey matrix multiply, and so on);
* ``sequential(inputs)`` -- a plain-Python reference implementation used as an
  independent correctness oracle and by the Table 2 comparison.

Both take the same input dictionaries produced by
:func:`repro.workloads.workload_for_program` and return the same output
variables as the corresponding DIABLO program, so tests and benchmarks can
compare the three execution paths directly.
"""

from repro.baselines import (
    conditional_sum,
    equal,
    group_by,
    histogram,
    kmeans,
    linear_regression,
    matrix_addition,
    matrix_factorization,
    matrix_multiplication,
    pagerank,
    string_match,
    word_count,
)

#: Baseline modules keyed by benchmark program name.
BASELINES = {
    "conditional_sum": conditional_sum,
    "equal": equal,
    "string_match": string_match,
    "word_count": word_count,
    "histogram": histogram,
    "linear_regression": linear_regression,
    "group_by": group_by,
    "matrix_addition": matrix_addition,
    "matrix_multiplication": matrix_multiplication,
    "pagerank": pagerank,
    "kmeans": kmeans,
    "matrix_factorization": matrix_factorization,
}


def get_baseline(name: str):
    """The baseline module for a benchmark program name."""
    return BASELINES[name]


__all__ = ["BASELINES", "get_baseline"] + sorted(BASELINES)
