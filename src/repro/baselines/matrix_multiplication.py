"""Hand-written Matrix Multiplication (Figure 3.I).

Spark original::

    M.map { case ((i, j), m) => (j, (i, m)) }
     .join(N.map { case ((i, j), n) => (i, (j, n)) })
     .map { case (k, ((i, m), (j, n))) => ((i, j), m * n) }
     .reduceByKey(_ + _)
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any

from repro.runtime.context import DistributedContext


def distributed(context: DistributedContext, inputs: dict[str, Any]) -> dict[str, Any]:
    """Join on the shared dimension, multiply, and reduce by output coordinate."""
    left = context.parallelize_pairs(inputs["M"]).map(
        lambda record: (record[0][1], (record[0][0], record[1]))
    )
    right = context.parallelize_pairs(inputs["N"]).map(
        lambda record: (record[0][0], (record[0][1], record[1]))
    )
    joined = left.join(right)
    products = joined.map(
        lambda record: ((record[1][0][0], record[1][1][0]), record[1][0][1] * record[1][1][1])
    )
    result = products.reduce_by_key(lambda a, b: a + b)
    return {"R": result.collect_as_map()}


def sequential(inputs: dict[str, Any]) -> dict[str, Any]:
    """Plain-Python reference implementation over the sparse representation."""
    by_column: dict[int, list[tuple[int, float]]] = defaultdict(list)
    for (i, k), value in inputs["M"].items():
        by_column[k].append((i, value))
    result: dict[tuple[int, int], float] = defaultdict(float)
    for (k, j), right_value in inputs["N"].items():
        for i, left_value in by_column.get(k, []):
            result[(i, j)] += left_value * right_value
    return {"R": dict(result)}
