"""Hand-written Histogram (Figure 3.E).

Spark original (per channel): ``P.map(_.red).countByValue()``.
"""

from __future__ import annotations

from collections import Counter
from typing import Any

from repro.runtime.context import DistributedContext


def distributed(context: DistributedContext, inputs: dict[str, Any]) -> dict[str, Any]:
    """One countByValue per color channel."""
    pixels = context.parallelize(inputs["P"])
    red = pixels.map(lambda pixel: pixel["red"]).count_by_value()
    green = pixels.map(lambda pixel: pixel["green"]).count_by_value()
    blue = pixels.map(lambda pixel: pixel["blue"]).count_by_value()
    return {"R": red, "G": green, "B": blue}


def sequential(inputs: dict[str, Any]) -> dict[str, Any]:
    """Plain-Python reference implementation."""
    pixels = inputs["P"]
    return {
        "R": dict(Counter(pixel["red"] for pixel in pixels)),
        "G": dict(Counter(pixel["green"] for pixel in pixels)),
        "B": dict(Counter(pixel["blue"] for pixel in pixels)),
    }
