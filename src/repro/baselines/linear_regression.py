"""Hand-written simple Linear Regression (Figure 3.F).

Spark original: map/reduce passes computing the coordinate means, the centered
second moments and the slope / intercept of the least-squares line.
"""

from __future__ import annotations

from typing import Any

from repro.runtime.context import DistributedContext


def distributed(context: DistributedContext, inputs: dict[str, Any]) -> dict[str, Any]:
    """Two aggregation passes over the point dataset."""
    points = context.parallelize(inputs["P"])
    count = inputs["n"]
    x_bar = points.map(lambda p: p[0]).fold(0.0, lambda a, b: a + b) / count
    y_bar = points.map(lambda p: p[1]).fold(0.0, lambda a, b: a + b) / count
    xx_bar = points.map(lambda p: (p[0] - x_bar) * (p[0] - x_bar)).fold(0.0, lambda a, b: a + b)
    xy_bar = points.map(lambda p: (p[0] - x_bar) * (p[1] - y_bar)).fold(0.0, lambda a, b: a + b)
    slope = xy_bar / xx_bar
    intercept = y_bar - slope * x_bar
    return {"slope": slope, "intercept": intercept}


def sequential(inputs: dict[str, Any]) -> dict[str, Any]:
    """Plain-Python reference implementation."""
    points = inputs["P"]
    count = inputs["n"]
    x_bar = sum(p[0] for p in points) / count
    y_bar = sum(p[1] for p in points) / count
    xx_bar = sum((p[0] - x_bar) ** 2 for p in points)
    xy_bar = sum((p[0] - x_bar) * (p[1] - y_bar) for p in points)
    slope = xy_bar / xx_bar
    return {"slope": slope, "intercept": y_bar - slope * x_bar}
