"""Hand-written Matrix Addition (Figure 3.H).

Spark original: ``M.join(N).mapValues { case (m, n) => m + n }``.
"""

from __future__ import annotations

from typing import Any

from repro.runtime.context import DistributedContext


def distributed(context: DistributedContext, inputs: dict[str, Any]) -> dict[str, Any]:
    """Join the two coordinate datasets and add the values."""
    left = context.parallelize_pairs(inputs["M"])
    right = context.parallelize_pairs(inputs["N"])
    summed = left.join(right).map_values(lambda pair: pair[0] + pair[1])
    return {"R": summed.collect_as_map()}


def sequential(inputs: dict[str, Any]) -> dict[str, Any]:
    """Plain-Python reference implementation (entries present in both)."""
    left = inputs["M"]
    right = inputs["N"]
    return {"R": {key: value + right[key] for key, value in left.items() if key in right}}
