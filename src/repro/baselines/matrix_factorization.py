"""Hand-written Matrix Factorization gradient-descent step (Figure 3.L).

Spark original (Appendix B): element-wise operations expressed as joins and
matrix products expressed as join + reduceByKey::

    E = R - P x Q
    P = P + a * (2 * E x Qᵀ - b * P)
    Q = Q + a * (2 * (Eᵀ x P)ᵀ - b * Q)

The error matrix ``E`` only has entries where ``R`` does (the element-wise
operations are inner joins), exactly like the DIABLO program, which evaluates
the update only on the provided ratings.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any

from repro.arrays.sparse import SparseMatrix
from repro.runtime.context import DistributedContext


def distributed(context: DistributedContext, inputs: dict[str, Any]) -> dict[str, Any]:
    """One gradient-descent step with join-based matrix algebra."""
    learning_rate = inputs["a"]
    regularization = inputs["b"]
    ratings = SparseMatrix.from_dict(context, inputs["R"])
    factors_p = SparseMatrix.from_dict(context, inputs["Pp"])
    factors_q = SparseMatrix.from_dict(context, inputs["Qp"])

    predicted = factors_p.multiply(factors_q)
    # E = R - P x Q on the support of R (inner join).
    error = SparseMatrix(
        ratings.data.join(predicted.data).map_values(lambda pair: pair[0] - pair[1])
    )

    gradient_p = error.multiply(factors_q.transpose())
    gradient_q = error.transpose().multiply(factors_p).transpose()

    def apply_update(factors: SparseMatrix, gradient: SparseMatrix) -> SparseMatrix:
        # new = old + a * (2 * gradient - b * old); entries without a gradient
        # contribution only get the regularization shrinkage.
        shrunk = factors.map_values(lambda value: value * (1 - learning_rate * regularization))
        step = gradient.map_values(lambda value: 2 * learning_rate * value)
        return shrunk.merge_with(step, lambda a_value, b_value: a_value + b_value)

    new_p = apply_update(factors_p, gradient_p)
    new_q = apply_update(factors_q, gradient_q)
    return {"P": new_p.to_dict(), "Q": new_q.to_dict(), "E": error.to_dict()}


def sequential(inputs: dict[str, Any]) -> dict[str, Any]:
    """Plain-Python reference implementation of the same step."""
    learning_rate = inputs["a"]
    regularization = inputs["b"]
    ratings = inputs["R"]
    factors_p = dict(inputs["Pp"])
    factors_q = dict(inputs["Qp"])
    rank = inputs["l"]

    error: dict[tuple[int, int], float] = {}
    for (i, j), rating in ratings.items():
        predicted = sum(
            factors_p.get((i, k), 0.0) * factors_q.get((k, j), 0.0) for k in range(rank)
        )
        error[(i, j)] = rating - predicted

    gradient_p: dict[tuple[int, int], float] = defaultdict(float)
    gradient_q: dict[tuple[int, int], float] = defaultdict(float)
    for (i, j), err in error.items():
        for k in range(rank):
            gradient_p[(i, k)] += err * factors_q.get((k, j), 0.0)
            gradient_q[(k, j)] += err * factors_p.get((i, k), 0.0)

    new_p = {
        key: value * (1 - learning_rate * regularization) + 2 * learning_rate * gradient_p.get(key, 0.0)
        for key, value in factors_p.items()
    }
    new_q = {
        key: value * (1 - learning_rate * regularization) + 2 * learning_rate * gradient_q.get(key, 0.0)
        for key, value in factors_q.items()
    }
    return {"P": new_p, "Q": new_q, "E": error}
