"""Random data generators matching the paper's experimental setup (Section 6).

Every generator takes a seed so that benchmark inputs are reproducible, and a
size parameter that the benchmark harness sweeps (the paper sweeps dataset
bytes; here we sweep element counts, which is the same axis at laptop scale).

``workload_for_program`` maps each benchmark program to the inputs the paper
describes for it:

* Conditional Sum / Sum / Count / Average -- random doubles;
* Equal / String Match / Word Count / Equal Frequency -- random 4-character
  strings drawn from a 1000-string vocabulary;
* Histogram -- random RGB pixels;
* Linear Regression -- points ``(x + dx, x - dx)``;
* Group By -- (long, double) pairs with about ten duplicates per key;
* Matrix Addition / Multiplication / Factorization -- random square matrices;
* PageRank -- RMAT graphs with ten edges per vertex;
* KMeans -- points drawn from a 10x10 grid of unit squares with centroids at
  the square centers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any

from repro.workloads.rmat import adjacency_matrix, rmat_graph

#: Vocabulary size used for the string workloads (the paper uses 1000
#: distinct 4-character strings).
STRING_VOCABULARY = 1000


@dataclass(frozen=True)
class WorkloadSizes:
    """Default size sweeps per experiment, scaled down from the paper."""

    small: int = 1_000
    medium: int = 5_000
    large: int = 20_000

    def sweep(self) -> list[int]:
        return [self.small, self.medium, self.large]


def _rng(seed: int) -> random.Random:
    return random.Random(seed)


def random_doubles(count: int, low: float = 0.0, high: float = 200.0, seed: int = 11) -> list[float]:
    """Uniform random doubles in ``[low, high)``."""
    generator = _rng(seed)
    return [generator.uniform(low, high) for _ in range(count)]


def random_strings(count: int, vocabulary: int = STRING_VOCABULARY, seed: int = 13) -> list[str]:
    """Random 4-character strings with ``vocabulary`` distinct values."""
    generator = _rng(seed)
    alphabet = "abcdefghijklmnopqrstuvwxyz"
    words = []
    seen: set[str] = set()
    while len(words) < vocabulary:
        word = "".join(generator.choice(alphabet) for _ in range(4))
        if word not in seen:
            seen.add(word)
            words.append(word)
    return [words[generator.randrange(vocabulary)] for _ in range(count)]


def random_pixels(count: int, seed: int = 17) -> list[dict[str, int]]:
    """Random RGB pixels as records with ``red`` / ``green`` / ``blue`` fields."""
    generator = _rng(seed)
    return [
        {
            "red": generator.randrange(256),
            "green": generator.randrange(256),
            "blue": generator.randrange(256),
        }
        for _ in range(count)
    ]


def linear_points(count: int, seed: int = 19) -> list[tuple[float, float]]:
    """The paper's linear-regression points ``(x + dx, x - dx)``."""
    generator = _rng(seed)
    points = []
    for _ in range(count):
        x = generator.uniform(0.0, 1000.0)
        dx = generator.uniform(0.0, 10.0)
        points.append((x + dx, x - dx))
    return points


def grouped_pairs(count: int, duplicates_per_key: int = 10, seed: int = 23) -> list[dict[str, Any]]:
    """(key, value) records with roughly ``duplicates_per_key`` values per key."""
    generator = _rng(seed)
    num_keys = max(1, count // duplicates_per_key)
    return [
        {"K": generator.randrange(num_keys), "A": generator.uniform(0.0, 10.0)}
        for _ in range(count)
    ]


def zipf_keys(count: int, num_keys: int, exponent: float = 1.2, seed: int = 43) -> list[int]:
    """``count`` integer keys drawn from a Zipf distribution over ``num_keys``.

    Key ``k`` (0-based rank) has probability proportional to
    ``1 / (k + 1) ** exponent``, so key 0 is the hottest.  Used by the skewed
    benchmark variants to stress the adaptive (salting / map-side grouping)
    execution paths, which uniform workloads never trigger.
    """
    generator = _rng(seed)
    weights = [1.0 / (rank + 1) ** exponent for rank in range(max(1, num_keys))]
    return generator.choices(range(max(1, num_keys)), weights=weights, k=count)


def skewed_pairs(
    count: int, num_keys: int | None = None, exponent: float = 1.2, seed: int = 43
) -> list[dict[str, Any]]:
    """Zipf-skewed (key, value) records in the ``group_by`` workload shape.

    Same ``{"K": ..., "A": ...}`` record layout as :func:`grouped_pairs`, but
    the keys follow a Zipf distribution instead of being uniform, so a handful
    of keys own most of the records.
    """
    generator = _rng(seed)
    if num_keys is None:
        num_keys = max(1, count // 10)
    keys = zipf_keys(count, num_keys, exponent=exponent, seed=seed + 1)
    return [{"K": key, "A": generator.uniform(0.0, 10.0)} for key in keys]


def skewed_words(
    count: int, vocabulary: int = STRING_VOCABULARY, exponent: float = 1.2, seed: int = 47
) -> list[str]:
    """Zipf-skewed word stream for the word-count workloads.

    Real text is Zipfian, so this is the natural skewed variant of
    :func:`random_strings`: the same vocabulary, but ranked frequencies.
    """
    words = sorted(set(random_strings(vocabulary * 4, vocabulary=vocabulary, seed=seed)))
    ranks = zipf_keys(count, len(words), exponent=exponent, seed=seed + 1)
    return [words[rank] for rank in ranks]


def random_matrix(
    rows: int, columns: int, seed: int = 29, low: float = 0.0, high: float = 10.0
) -> dict[tuple[int, int], float]:
    """A fully populated random matrix stored sparsely (all entries provided,
    random order and values -- matching the paper's matrix workloads)."""
    generator = _rng(seed)
    return {(i, j): generator.uniform(low, high) for i in range(rows) for j in range(columns)}


def sparse_matrix(
    rows: int, columns: int, density: float = 0.1, seed: int = 31, low: float = 1.0, high: float = 5.0
) -> dict[tuple[int, int], float]:
    """A sparse random matrix with the given fraction of entries present."""
    generator = _rng(seed)
    matrix: dict[tuple[int, int], float] = {}
    for i in range(rows):
        for j in range(columns):
            if generator.random() < density:
                matrix[(i, j)] = generator.uniform(low, high)
    if not matrix:
        matrix[(0, 0)] = generator.uniform(low, high)
    return matrix


def kmeans_grid_points(count: int, grid: int = 10, seed: int = 37) -> list[tuple[float, float]]:
    """Points uniformly distributed in a ``grid x grid`` arrangement of unit squares.

    Square ``(i, j)`` spans ``[i*2+1, i*2+2] x [j*2+1, j*2+2]``; the true
    centroids are the square centers (Section 6).
    """
    generator = _rng(seed)
    points = []
    squares = [(i, j) for i in range(grid) for j in range(grid)]
    for index in range(count):
        if index < len(squares):
            # Cover every square at least once so no cluster is empty; this
            # keeps the one-step KMeans update well defined for every centroid.
            i, j = squares[index]
        else:
            i = generator.randrange(grid)
            j = generator.randrange(grid)
        x = generator.uniform(i * 2 + 1, i * 2 + 2)
        y = generator.uniform(j * 2 + 1, j * 2 + 2)
        points.append((x, y))
    return points


def kmeans_initial_centroids(grid: int = 10) -> dict[int, tuple[float, float]]:
    """The paper's initial centroids ``(i*2 + 1.2, j*2 + 1.2)``."""
    centroids: dict[int, tuple[float, float]] = {}
    index = 0
    for i in range(grid):
        for j in range(grid):
            centroids[index] = (i * 2 + 1.2, j * 2 + 1.2)
            index += 1
    return centroids


def kmeans_true_centroids(grid: int = 10) -> list[tuple[float, float]]:
    """The square centers ``(i*2 + 1.5, j*2 + 1.5)``."""
    return [(i * 2 + 1.5, j * 2 + 1.5) for i in range(grid) for j in range(grid)]


def random_factors(rows: int, rank: int, seed: int = 41) -> dict[tuple[int, int], float]:
    """Random dense factor matrices for matrix factorization (values in [0, 1))."""
    generator = _rng(seed)
    return {(i, k): generator.random() for i in range(rows) for k in range(rank)}


# ---------------------------------------------------------------------------
# Per-program workloads
# ---------------------------------------------------------------------------


def workload_for_program(name: str, size: int, seed: int = 7) -> dict[str, Any]:
    """Build the input dictionary for benchmark program ``name`` at ``size``.

    ``size`` means "number of input elements" for the flat workloads, the
    matrix dimension for the matrix workloads, and the number of vertices for
    PageRank.
    """
    if name in ("conditional_sum", "sum", "count", "conditional_count", "average"):
        return {"V": random_doubles(size, seed=seed)}
    if name == "equal":
        value = random_strings(1, seed=seed)[0]
        return {"words": [value] * size, "x": value}
    if name == "string_match":
        words = random_strings(size, seed=seed)
        return {"words": words, "key1": "key1", "key2": "key2", "key3": words[0] if words else "key3"}
    if name in ("word_count", "equal_frequency"):
        return {
            "words": random_strings(size, vocabulary=min(STRING_VOCABULARY, max(2, size // 10)), seed=seed)
        }
    if name == "histogram":
        return {"P": random_pixels(size, seed=seed)}
    if name == "linear_regression":
        points = linear_points(size, seed=seed)
        return {"P": points, "n": len(points)}
    if name == "group_by":
        return {"V": grouped_pairs(size, seed=seed)}
    if name == "matrix_addition":
        dimension = max(2, size)
        return {
            "M": random_matrix(dimension, dimension, seed=seed),
            "N": random_matrix(dimension, dimension, seed=seed + 1),
            "n": dimension,
            "mm": dimension,
        }
    if name == "matrix_multiplication":
        dimension = max(2, size)
        return {
            "M": random_matrix(dimension, dimension, seed=seed),
            "N": random_matrix(dimension, dimension, seed=seed + 1),
            "n": dimension,
            "mm": dimension,
        }
    if name == "pagerank":
        vertices = max(4, size)
        edges = rmat_graph(vertices, edges_per_vertex=10, seed=seed)
        return {"E": adjacency_matrix(edges), "N": vertices, "num_steps": 1}
    if name == "kmeans":
        points = kmeans_grid_points(max(10, size), seed=seed)
        centroids = kmeans_initial_centroids()
        return {
            "P": points,
            "C": centroids,
            "N": len(points),
            "K": len(centroids),
        }
    if name == "matrix_factorization":
        dimension = max(2, size)
        rank = 2
        return {
            "R": sparse_matrix(dimension, dimension, density=0.1, seed=seed),
            "Pp": random_factors(dimension, rank, seed=seed + 1),
            "Qp": {(k, j): v for (j, k), v in random_factors(dimension, rank, seed=seed + 2).items()},
            "n": dimension,
            "m": dimension,
            "l": rank,
            "a": 0.002,
            "b": 0.02,
        }
    if name == "pca":
        rows = max(4, size)
        dimensions = 4
        matrix = random_matrix(rows, dimensions, seed=seed)
        return {"X": matrix, "n": rows, "d": dimensions}
    raise KeyError(f"no workload defined for program {name!r}")


def skewed_workload_for_program(
    name: str, size: int, exponent: float = 1.2, seed: int = 7
) -> dict[str, Any]:
    """Zipf-skewed variant of :func:`workload_for_program`.

    Only defined for the key-grouping programs where skew changes the
    execution profile; other programs fall back to the uniform workload.
    """
    if name == "group_by":
        return {"V": skewed_pairs(size, exponent=exponent, seed=seed)}
    if name in ("word_count", "equal_frequency"):
        vocabulary = min(STRING_VOCABULARY, max(2, size // 10))
        return {"words": skewed_words(size, vocabulary=vocabulary, exponent=exponent, seed=seed)}
    return workload_for_program(name, size, seed=seed)
