"""The RMAT (Recursive MATrix) graph generator.

The paper's PageRank experiments use synthetic graphs produced by the RMAT
generator of Chakrabarti, Zhan and Faloutsos (SDM 2004) with Kronecker
parameters ``a=0.30, b=0.25, c=0.25, d=0.20`` and ten edges per vertex.  RMAT
places each edge by recursively descending into one of the four quadrants of
the adjacency matrix with those probabilities, which yields the skewed
power-law-like degree distributions typical of web and social graphs.
"""

from __future__ import annotations

import random

#: The Kronecker quadrant probabilities used in the paper (Section 6).
DEFAULT_PROBABILITIES = (0.30, 0.25, 0.25, 0.20)


def rmat_graph(
    num_vertices: int,
    edges_per_vertex: int = 10,
    probabilities: tuple[float, float, float, float] = DEFAULT_PROBABILITIES,
    seed: int = 97,
    one_based: bool = True,
    avoid_self_loops: bool = True,
) -> list[tuple[int, int]]:
    """Generate an RMAT edge list.

    Args:
        num_vertices: number of vertices; vertex ids are ``1..n`` when
            ``one_based`` (the PageRank program of Appendix B iterates
            ``for i = 1, N``), otherwise ``0..n-1``.
        edges_per_vertex: average out-degree (the paper uses 10).
        probabilities: quadrant probabilities (a, b, c, d); must sum to 1.
        seed: RNG seed, so benchmark inputs are reproducible.
        one_based: whether vertex ids start at 1.
        avoid_self_loops: re-draw edges whose endpoints coincide.

    Returns:
        A list of distinct ``(source, destination)`` edges.
    """
    a, b, c, d = probabilities
    total = a + b + c + d
    if abs(total - 1.0) > 1e-9:
        raise ValueError(f"quadrant probabilities must sum to 1, got {total}")
    # Round the number of vertices up to a power of two for the recursion,
    # then reject edges that fall outside the requested range.
    levels = max(1, (num_vertices - 1).bit_length())
    size = 1 << levels
    generator = random.Random(seed)
    target_edges = num_vertices * edges_per_vertex
    edges: set[tuple[int, int]] = set()
    attempts = 0
    max_attempts = target_edges * 50
    while len(edges) < target_edges and attempts < max_attempts:
        attempts += 1
        source, destination = _place_edge(generator, levels, a, b, c)
        if source >= num_vertices or destination >= num_vertices:
            continue
        if avoid_self_loops and source == destination:
            continue
        if one_based:
            edges.add((source + 1, destination + 1))
        else:
            edges.add((source, destination))
    return sorted(edges)


def _place_edge(generator: random.Random, levels: int, a: float, b: float, c: float) -> tuple[int, int]:
    """Recursively pick the quadrant for one edge, ``levels`` times."""
    row = 0
    column = 0
    for level in range(levels):
        offset = 1 << (levels - level - 1)
        draw = generator.random()
        if draw < a:
            pass  # top-left quadrant
        elif draw < a + b:
            column += offset  # top-right
        elif draw < a + b + c:
            row += offset  # bottom-left
        else:
            row += offset
            column += offset  # bottom-right
    return row, column


def adjacency_matrix(edges: list[tuple[int, int]]) -> dict[tuple[int, int], bool]:
    """The sparse boolean adjacency matrix ``E[i, j] = true`` used by PageRank."""
    return {(source, destination): True for source, destination in edges}


def out_degrees(edges: list[tuple[int, int]]) -> dict[int, int]:
    """Out-degree of every vertex that has at least one outgoing edge."""
    degrees: dict[int, int] = {}
    for source, _destination in edges:
        degrees[source] = degrees.get(source, 0) + 1
    return degrees
