"""Synthetic workload generators for the benchmark suite.

* :mod:`repro.workloads.generators` -- seeded random data matching the paper's
  descriptions (random doubles, 4-character strings, RGB pixels, 2-D points,
  key-value pairs, dense/sparse matrices, grid-clustered points).
* :mod:`repro.workloads.rmat` -- the RMAT recursive-matrix graph generator
  used for the PageRank experiments.
"""

from repro.workloads.generators import (
    WorkloadSizes,
    grouped_pairs,
    kmeans_grid_points,
    linear_points,
    random_doubles,
    random_matrix,
    random_pixels,
    random_strings,
    skewed_pairs,
    skewed_words,
    skewed_workload_for_program,
    sparse_matrix,
    workload_for_program,
    zipf_keys,
)
from repro.workloads.rmat import rmat_graph

__all__ = [
    "WorkloadSizes",
    "random_doubles",
    "random_strings",
    "random_pixels",
    "linear_points",
    "grouped_pairs",
    "zipf_keys",
    "skewed_pairs",
    "skewed_words",
    "skewed_workload_for_program",
    "random_matrix",
    "sparse_matrix",
    "kmeans_grid_points",
    "rmat_graph",
    "workload_for_program",
]
