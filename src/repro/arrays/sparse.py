"""Sparse vectors and matrices as key-value datasets (Section 3.4).

In the paper a sparse vector of type ``vector[T]`` is a bag of type
``{(long, T)}`` and a sparse matrix of type ``matrix[T]`` is a bag of type
``{((long, long), T)}``.  These wrappers give that representation a small,
convenient API on top of the runtime :class:`~repro.runtime.dataset.Dataset`:
element access, the merge operations ⊳ / ⊳⊕, arithmetic helpers used by the
hand-written baselines, and conversions to and from dense Python structures.

Missing entries behave as zero, matching the convention used throughout the
paper's examples (and by the translator's incremental updates).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.errors import ExecutionError
from repro.runtime.context import DistributedContext
from repro.runtime.dataset import Dataset


class SparseVector:
    """A sparse vector stored as a Dataset of ``(index, value)`` pairs."""

    def __init__(self, data: Dataset, length: int | None = None):
        self.data = data
        self._length = length

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_dict(
        cls, context: DistributedContext, entries: dict[int, Any], length: int | None = None
    ) -> "SparseVector":
        """Build a vector from an ``{index: value}`` mapping."""
        return cls(context.parallelize_pairs(entries), length)

    @classmethod
    def from_dense(cls, context: DistributedContext, values: Iterable[Any]) -> "SparseVector":
        """Build a vector from a dense sequence (zeros are kept)."""
        values = list(values)
        return cls(context.parallelize_raw(list(enumerate(values))), len(values))

    @classmethod
    def zeros(cls, context: DistributedContext, length: int) -> "SparseVector":
        """An explicitly zero-filled vector of the given length."""
        return cls(context.parallelize_raw([(i, 0.0) for i in range(length)]), length)

    # -- inspection -------------------------------------------------------------

    def __len__(self) -> int:
        if self._length is not None:
            return self._length
        keys = [key for key, _ in self.data.collect()]
        return (max(keys) + 1) if keys else 0

    def nonzero_count(self) -> int:
        """Number of stored entries."""
        return self.data.count()

    def to_dict(self) -> dict[int, Any]:
        """All stored entries as a plain dict."""
        return self.data.collect_as_map()

    def to_dense(self, length: int | None = None) -> list[Any]:
        """A dense list of the vector's values (missing entries become 0)."""
        entries = self.to_dict()
        size = length if length is not None else len(self)
        return [entries.get(i, 0.0) for i in range(size)]

    def get(self, index: int, default: Any = 0.0) -> Any:
        """The value at ``index`` (``default`` when absent)."""
        return self.to_dict().get(index, default)

    # -- operations --------------------------------------------------------------

    def merge(self, other: "SparseVector") -> "SparseVector":
        """The ⊳ merge: entries of ``other`` replace entries of ``self``."""
        return SparseVector(self.data.merge(other.data), self._length)

    def merge_with(self, other: "SparseVector", combine: Callable[[Any, Any], Any]) -> "SparseVector":
        """The ⊳⊕ merge: combine entries present on both sides with ``combine``."""
        return SparseVector(self.data.merge_with(other.data, combine), self._length)

    def map_values(self, function: Callable[[Any], Any]) -> "SparseVector":
        """Apply ``function`` to every stored value."""
        return SparseVector(self.data.map_values(function), self._length)

    def add(self, other: "SparseVector") -> "SparseVector":
        """Element-wise sum (missing entries are zero)."""
        return self.merge_with(other, lambda a, b: a + b)

    def dot(self, other: "SparseVector") -> Any:
        """Inner product of two sparse vectors."""
        joined = self.data.join(other.data)
        products = joined.map(lambda record: record[1][0] * record[1][1])
        return products.fold(0.0, lambda a, b: a + b)

    def sum(self) -> Any:
        """Sum of all stored values."""
        return self.data.values().fold(0.0, lambda a, b: a + b)


class SparseMatrix:
    """A sparse matrix stored as a Dataset of ``((i, j), value)`` pairs."""

    def __init__(self, data: Dataset, shape: tuple[int, int] | None = None):
        self.data = data
        self._shape = shape

    # -- construction --------------------------------------------------------------

    @classmethod
    def from_dict(
        cls,
        context: DistributedContext,
        entries: dict[tuple[int, int], Any],
        shape: tuple[int, int] | None = None,
    ) -> "SparseMatrix":
        """Build a matrix from an ``{(i, j): value}`` mapping."""
        return cls(context.parallelize_pairs(entries), shape)

    @classmethod
    def from_dense(cls, context: DistributedContext, rows: list[list[Any]]) -> "SparseMatrix":
        """Build a matrix from nested lists (all entries kept, zeros included)."""
        entries = [((i, j), value) for i, row in enumerate(rows) for j, value in enumerate(row)]
        shape = (len(rows), len(rows[0]) if rows else 0)
        return cls(context.parallelize_raw(entries), shape)

    # -- inspection -------------------------------------------------------------------

    @property
    def shape(self) -> tuple[int, int]:
        if self._shape is not None:
            return self._shape
        entries = self.data.collect()
        if not entries:
            return (0, 0)
        rows = max(key[0] for key, _ in entries) + 1
        columns = max(key[1] for key, _ in entries) + 1
        return (rows, columns)

    def nonzero_count(self) -> int:
        return self.data.count()

    def to_dict(self) -> dict[tuple[int, int], Any]:
        return self.data.collect_as_map()

    def to_dense(self, shape: tuple[int, int] | None = None) -> list[list[Any]]:
        """Nested lists with missing entries filled with 0."""
        entries = self.to_dict()
        rows, columns = shape if shape is not None else self.shape
        return [[entries.get((i, j), 0.0) for j in range(columns)] for i in range(rows)]

    def get(self, i: int, j: int, default: Any = 0.0) -> Any:
        return self.to_dict().get((i, j), default)

    # -- operations ----------------------------------------------------------------------

    def merge(self, other: "SparseMatrix") -> "SparseMatrix":
        """The ⊳ merge: entries of ``other`` replace entries of ``self``."""
        return SparseMatrix(self.data.merge(other.data), self._shape)

    def merge_with(self, other: "SparseMatrix", combine: Callable[[Any, Any], Any]) -> "SparseMatrix":
        """The ⊳⊕ merge."""
        return SparseMatrix(self.data.merge_with(other.data, combine), self._shape)

    def map_values(self, function: Callable[[Any], Any]) -> "SparseMatrix":
        return SparseMatrix(self.data.map_values(function), self._shape)

    def transpose(self) -> "SparseMatrix":
        """Swap row and column indexes."""
        transposed = self.data.map(lambda record: ((record[0][1], record[0][0]), record[1]))
        shape = None if self._shape is None else (self._shape[1], self._shape[0])
        return SparseMatrix(transposed, shape)

    def add(self, other: "SparseMatrix") -> "SparseMatrix":
        """Element-wise sum (the hand-written Matrix Addition baseline uses a join)."""
        return self.merge_with(other, lambda a, b: a + b)

    def multiply(self, other: "SparseMatrix") -> "SparseMatrix":
        """Matrix product via the paper's hand-written plan: join on the shared
        dimension, multiply, reduceByKey on the output coordinates."""
        left = self.data.map(lambda record: (record[0][1], (record[0][0], record[1])))
        right = other.data.map(lambda record: (record[0][0], (record[0][1], record[1])))
        joined = left.join(right)
        products = joined.map(
            lambda record: ((record[1][0][0], record[1][1][0]), record[1][0][1] * record[1][1][1])
        )
        result = products.reduce_by_key(lambda a, b: a + b)
        shape = None
        if self._shape is not None and other._shape is not None:
            shape = (self._shape[0], other._shape[1])
        return SparseMatrix(result, shape)

    def row_sums(self) -> SparseVector:
        """Vector of per-row sums."""
        sums = self.data.map(lambda record: (record[0][0], record[1])).reduce_by_key(lambda a, b: a + b)
        rows = None if self._shape is None else self._shape[0]
        return SparseVector(sums, rows)

    def scale(self, factor: float) -> "SparseMatrix":
        return self.map_values(lambda value: value * factor)

    def frobenius_error(self, other: "SparseMatrix") -> float:
        """Square root of the sum of squared entry differences (missing = 0)."""
        import math

        merged = self.data.full_outer_join(other.data)

        def squared(record: Any) -> float:
            _key, (left, right) = record
            a = left if left is not None else 0.0
            b = right if right is not None else 0.0
            return (a - b) * (a - b)

        return math.sqrt(merged.map(squared).fold(0.0, lambda a, b: a + b))


def require_context(dataset: Dataset) -> DistributedContext:
    """The context a dataset belongs to (helper for baseline code)."""
    context = dataset.context
    if context is None:
        raise ExecutionError("dataset has no context")
    return context
