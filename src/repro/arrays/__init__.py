"""Sparse and packed array representations (Sections 3.4 and 5).

* :mod:`repro.arrays.sparse` -- sparse vectors and matrices as key-value
  datasets, with the array-merging operations ⊳ and ⊳⊕ and conversions to and
  from dense (NumPy-style nested list) form.
* :mod:`repro.arrays.tiles` -- tiled (packed) matrices: fixed-size dense tiles
  keyed by tile coordinates, with the ``pack`` / ``unpack`` conversions of
  Section 5 and a shuffle-free tile merge (the ⊳′ of the paper).
"""

from repro.arrays.sparse import SparseMatrix, SparseVector
from repro.arrays.tiles import TiledMatrix, pack_matrix, unpack_tiles

__all__ = [
    "SparseVector",
    "SparseMatrix",
    "TiledMatrix",
    "pack_matrix",
    "unpack_tiles",
]
