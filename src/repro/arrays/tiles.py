"""Tiled (packed) matrices and the pack / unpack comprehensions of Section 5.

A tiled matrix stores its elements in fixed-size dense tiles: the dataset
holds ``((I, J), tile)`` pairs where ``(I, J)`` is the tile coordinate and
``tile`` is a dense row-major list of ``tile_rows * tile_columns`` elements.
Tiles are the unit of distributed processing.

The paper's point in Section 5 is that the ``unpack`` (tiled -> sparse) and
``pack`` (sparse -> tiled) conversions are themselves comprehensions, so they
fuse with the comprehensions produced by the translator and a program can
operate directly on the packed representation.  Here the same structure is
expressed as dataset operations:

* :func:`unpack_tiles` is the flatMap that scans each tile and emits sparse
  ``((i, j), value)`` entries;
* :func:`pack_matrix` is the group-by that collects entries into their tiles;
* :meth:`TiledMatrix.merge_tiles` is the shuffle-free ⊳′ merge: because both
  sides are partitioned by tile coordinate, the merge is a zipPartitions
  rather than a coGroup;
* :meth:`TiledMatrix.multiply` is block matrix multiplication over tiles,
  which exercises the packed representation end to end (the ablation
  benchmark compares it against sparse multiplication).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import ExecutionError
from repro.runtime.context import DistributedContext
from repro.runtime.dataset import Dataset
from repro.runtime.partitioner import HashPartitioner
from repro.arrays.sparse import SparseMatrix

#: Default tile side used by the benchmarks (paper tiles are "fixed capacity").
DEFAULT_TILE_SIZE = 32


class TiledMatrix:
    """A matrix packed into dense tiles of ``tile_size x tile_size`` elements."""

    def __init__(
        self,
        data: Dataset,
        shape: tuple[int, int],
        tile_size: int = DEFAULT_TILE_SIZE,
    ):
        self.data = data
        self.shape = shape
        self.tile_size = tile_size

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_sparse(
        cls,
        matrix: SparseMatrix,
        shape: tuple[int, int] | None = None,
        tile_size: int = DEFAULT_TILE_SIZE,
    ) -> "TiledMatrix":
        """Pack a sparse matrix into tiles (the ``pack`` comprehension)."""
        actual_shape = shape if shape is not None else matrix.shape
        return pack_matrix(matrix, actual_shape, tile_size)

    @classmethod
    def from_dict(
        cls,
        context: DistributedContext,
        entries: dict[tuple[int, int], float],
        shape: tuple[int, int],
        tile_size: int = DEFAULT_TILE_SIZE,
    ) -> "TiledMatrix":
        return pack_matrix(SparseMatrix.from_dict(context, entries, shape), shape, tile_size)

    # -- conversions --------------------------------------------------------------

    def to_sparse(self) -> SparseMatrix:
        """Unpack back to the sparse representation (the ``unpack`` comprehension)."""
        return unpack_tiles(self)

    def to_dict(self) -> dict[tuple[int, int], float]:
        return self.to_sparse().to_dict()

    def tile_count(self) -> int:
        """Number of stored tiles."""
        return self.data.count()

    # -- operations -----------------------------------------------------------------

    def map_values(self, function: Callable[[float], float]) -> "TiledMatrix":
        """Apply ``function`` to every element of every tile (no shuffle)."""
        mapped = self.data.map_values(lambda tile: [function(value) for value in tile])
        return TiledMatrix(mapped, self.shape, self.tile_size)

    def merge_tiles(self, other: "TiledMatrix", combine: Callable[[float, float], float]) -> "TiledMatrix":
        """The ⊳′ merge of Section 5: element-wise combine of co-partitioned tiles.

        Both matrices are first partitioned by tile coordinate with the same
        partitioner; the merge itself is then a zipPartitions and moves no
        data.
        """
        if self.tile_size != other.tile_size:
            raise ExecutionError("cannot merge tiled matrices with different tile sizes")
        partitioner = HashPartitioner(self.data.context.num_partitions)
        left = self.data.partition_by(partitioner)
        right = other.data.partition_by(partitioner)

        def merge_partition(left_tiles: list[Any], right_tiles: list[Any]) -> list[Any]:
            merged: dict[Any, list[float]] = {key: list(tile) for key, tile in left_tiles}
            for key, tile in right_tiles:
                if key in merged:
                    merged[key] = [combine(a, b) for a, b in zip(merged[key], tile, strict=False)]
                else:
                    merged[key] = list(tile)
            return list(merged.items())

        zipped = left.zip_partitions(right, merge_partition)
        return TiledMatrix(zipped, self.shape, self.tile_size)

    def add(self, other: "TiledMatrix") -> "TiledMatrix":
        """Element-wise sum using the shuffle-free tile merge."""
        return self.merge_tiles(other, lambda a, b: a + b)

    def multiply(self, other: "TiledMatrix") -> "TiledMatrix":
        """Block matrix multiplication over tiles.

        Tiles are joined on the shared tile dimension, multiplied densely and
        reduced by output tile coordinate -- the packed analogue of the sparse
        multiplication plan.
        """
        if self.tile_size != other.tile_size:
            raise ExecutionError("cannot multiply tiled matrices with different tile sizes")
        size = self.tile_size
        left = self.data.map(lambda record: (record[0][1], (record[0][0], record[1])))
        right = other.data.map(lambda record: (record[0][0], (record[0][1], record[1])))
        joined = left.join(right)

        def multiply_tiles(record: Any) -> Any:
            _shared, ((row_tile, left_tile), (column_tile, right_tile)) = record
            product = [0.0] * (size * size)
            for i in range(size):
                row_offset = i * size
                for k in range(size):
                    left_value = left_tile[row_offset + k]
                    if left_value == 0.0:
                        continue
                    column_offset = k * size
                    for j in range(size):
                        product[row_offset + j] += left_value * right_tile[column_offset + j]
            return ((row_tile, column_tile), product)

        products = joined.map(multiply_tiles)
        summed = products.reduce_by_key(lambda a, b: [x + y for x, y in zip(a, b, strict=False)])
        shape = (self.shape[0], other.shape[1])
        return TiledMatrix(summed, shape, size)


def pack_matrix(
    matrix: SparseMatrix, shape: tuple[int, int], tile_size: int = DEFAULT_TILE_SIZE
) -> TiledMatrix:
    """Pack sparse entries into dense tiles (the ``pack`` function of Section 5).

    Implemented as a group-by on the tile coordinate ``(i // tile_size,
    j // tile_size)`` followed by ``form``-ing each group into a dense tile.
    """
    size = tile_size

    def to_tile_entry(record: Any) -> Any:
        (i, j), value = record
        tile_key = (i // size, j // size)
        offset = (i % size) * size + (j % size)
        return (tile_key, (offset, value))

    def form(entries: Any) -> list[float]:
        tile = [0.0] * (size * size)
        for offset, value in entries:
            tile[offset] = value
        return tile

    grouped = matrix.data.map(to_tile_entry).group_by_key()
    tiles = grouped.map_values(form)
    return TiledMatrix(tiles, shape, size)


def unpack_tiles(tiled: TiledMatrix) -> SparseMatrix:
    """Unpack tiles into sparse entries (the ``unpack`` function of Section 5).

    Implemented as the flatMap ``{((I*n + k//n, J*n + k%n), v) | ((I,J), L) <- N,
    (k, v) <- scan(L)}`` with zero entries skipped.
    """
    size = tiled.tile_size
    rows, columns = tiled.shape

    def scan(record: Any) -> list[Any]:
        (tile_row, tile_column), tile = record
        entries = []
        for offset, value in enumerate(tile):
            if value == 0.0:
                continue
            i = tile_row * size + offset // size
            j = tile_column * size + offset % size
            if i < rows and j < columns:
                entries.append(((i, j), value))
        return entries

    return SparseMatrix(tiled.data.flat_map(scan), tiled.shape)
