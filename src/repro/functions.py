"""Scalar function registry shared by the interpreter and the DISC executor.

The loop language has no user-defined functions; calls such as ``sqrt(x)``,
``distance(p, c)`` or record constructors such as ``ArgMin(j, d)`` refer to
functions registered here.  The same registry instance is consulted by the
sequential interpreter (the correctness oracle) and by the distributed plan
executor, so both evaluation paths see identical semantics.
"""

from __future__ import annotations

import math
from typing import Any, Callable

from repro.comprehension.monoids import ArgMin, Avg


def _distance(p: Any, c: Any) -> float:
    """Euclidean distance between two 2-D points given as pairs."""
    px, py = _point(p)
    cx, cy = _point(c)
    return math.sqrt((px - cx) * (px - cx) + (py - cy) * (py - cy))


def _point(value: Any) -> tuple[float, float]:
    if isinstance(value, dict):
        return value["_1"], value["_2"]
    return value[0], value[1]


def builtin_functions() -> dict[str, Callable[..., Any]]:
    """Functions that every compiler / interpreter instance knows about."""
    return {
        "sqrt": math.sqrt,
        "abs": abs,
        "exp": math.exp,
        "log": math.log,
        "pow": math.pow,
        "floor": math.floor,
        "ceil": math.ceil,
        "min": min,
        "max": max,
        "distance": _distance,
        # Record constructors used by the KMeans programs of Appendix B.
        "ArgMin": lambda index, distance: ArgMin(int(index), float(distance)),
        "Avg": lambda value, count: Avg(_point(value), int(count)),
        # Empty-collection initializers used in declarations.
        "vector": lambda *args: {},
        "matrix": lambda *args: {},
        "map": lambda *args: {},
        "bag": lambda *args: [],
        "array": lambda *args: {},
    }


class FunctionRegistry:
    """A mutable mapping from function names to Python callables."""

    def __init__(self, extra: dict[str, Callable[..., Any]] | None = None):
        self._functions: dict[str, Callable[..., Any]] = builtin_functions()
        if extra:
            self._functions.update(extra)

    def register(self, name: str, function: Callable[..., Any]) -> None:
        """Register (or replace) a function under ``name``."""
        self._functions[name] = function

    def get(self, name: str) -> Callable[..., Any]:
        """Look up a function; raises ``KeyError`` for unknown names."""
        return self._functions[name]

    def __contains__(self, name: str) -> bool:
        return name in self._functions

    def names(self) -> list[str]:
        """All registered function names."""
        return sorted(self._functions)

    def copy(self) -> "FunctionRegistry":
        """A shallow copy that can be extended without affecting the original."""
        clone = FunctionRegistry()
        clone._functions = dict(self._functions)
        return clone


# A process-wide default registry used when callers do not supply their own.
DEFAULT_FUNCTIONS = FunctionRegistry()
