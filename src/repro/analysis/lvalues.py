"""Readers, writers and aggregators of loop-language statements (Section 3.2).

For any statement ``s`` the paper defines three sets of L-values
(destinations):

* the **aggregators** ``A[s]`` -- L-values incremented in ``s`` (``d ⊕= e``);
* the **writers** ``W[s]`` -- L-values written (but not incremented) in ``s``;
* the **readers** ``R[s]`` -- L-values read in ``s``.

For example, for ``V[W[i]] += n * C[i] * C[i+1]`` (with ``i`` a loop index):
``A = {V[W[i]]}``, ``R = {W[i], n, C[i], C[i+1]}``, ``W = ∅``.

Readers are the *maximal* L-value sub-expressions: ``C[i]`` is one reader, its
parts ``C`` and ``i`` are not counted separately, and loop index variables are
never readers on their own.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.loop_lang import ast


@dataclass
class StatementAccess:
    """The access sets of one atomic statement, together with its position.

    Attributes:
        statement: the atomic statement (assignment, incremental update or
            declaration).
        context: the loop index variables of all enclosing for-loops.
        order: textual order of the statement within the analyzed region
            (used for the "s1 precedes s2" tests of Definition 3.1).
        readers / writers / aggregators: the three L-value sets.
    """

    statement: ast.Stmt
    context: frozenset[str]
    order: int
    readers: list[ast.Expr] = field(default_factory=list)
    writers: list[ast.Expr] = field(default_factory=list)
    aggregators: list[ast.Expr] = field(default_factory=list)


def readers(stmt: ast.Stmt, loop_indexes: frozenset[str] = frozenset()) -> list[ast.Expr]:
    """The L-values read by an atomic statement."""
    collected: list[ast.Expr] = []
    if isinstance(stmt, (ast.Assign, ast.IncrementalUpdate)):
        collected.extend(_lvalues_read(stmt.value, loop_indexes))
        # Reading the destination's indexes also reads the L-values inside them.
        collected.extend(_lvalues_in_destination_indexes(stmt.destination, loop_indexes))
    elif isinstance(stmt, ast.VarDecl):
        collected.extend(_lvalues_read(stmt.init, loop_indexes))
    return collected


def writers(stmt: ast.Stmt, loop_indexes: frozenset[str] = frozenset()) -> list[ast.Expr]:
    """The L-values written (not incremented) by an atomic statement."""
    if isinstance(stmt, ast.Assign):
        return [stmt.destination]
    if isinstance(stmt, ast.VarDecl):
        return [ast.Var(stmt.name)]
    return []


def aggregators(stmt: ast.Stmt, loop_indexes: frozenset[str] = frozenset()) -> list[ast.Expr]:
    """The L-values incremented by an atomic statement."""
    if isinstance(stmt, ast.IncrementalUpdate):
        return [stmt.destination]
    return []


def _lvalues_read(expr: ast.Expr, loop_indexes: frozenset[str]) -> list[ast.Expr]:
    """Maximal L-value sub-expressions of ``expr`` (excluding bare loop indexes)."""
    collected: list[ast.Expr] = []
    _collect_lvalues(expr, loop_indexes, collected)
    return collected


def _collect_lvalues(expr: ast.Expr, loop_indexes: frozenset[str], out: list[ast.Expr]) -> None:
    if isinstance(expr, ast.Var):
        if expr.name not in loop_indexes:
            out.append(expr)
        return
    if isinstance(expr, (ast.Project, ast.Index)) and ast.is_destination(expr):
        out.append(expr)
        # The index expressions themselves may read further L-values
        # (e.g. W[i] inside V[W[i]]).
        if isinstance(expr, ast.Index):
            for index in expr.indices:
                _collect_lvalues(index, loop_indexes, out)
        return
    if isinstance(expr, ast.Const):
        return
    for child in expr.children():
        _collect_lvalues(child, loop_indexes, out)


def _lvalues_in_destination_indexes(dest: ast.Expr, loop_indexes: frozenset[str]) -> list[ast.Expr]:
    """L-values read while computing the indexes of a destination."""
    collected: list[ast.Expr] = []
    node = dest
    while True:
        if isinstance(node, ast.Index):
            for index in node.indices:
                _collect_lvalues(index, loop_indexes, collected)
            node = node.array
        elif isinstance(node, ast.Project):
            node = node.base
        else:
            break
    return collected


def lvalue_root_name(lvalue: ast.Expr) -> str:
    """The root variable name of an L-value (``V`` for ``V[i].A``)."""
    return ast.destination_root(lvalue).name


def lvalue_overlap(d1: ast.Expr, d2: ast.Expr) -> bool:
    """The ``overlap`` relation of Section 3.2.

    Two L-values overlap when they are the same variable, projections of
    overlapping L-values onto the same attribute, or array accesses over the
    same array name.
    """
    if isinstance(d1, ast.Var) and isinstance(d2, ast.Var):
        return d1.name == d2.name
    if isinstance(d1, ast.Project) and isinstance(d2, ast.Project):
        return d1.attribute == d2.attribute and lvalue_overlap(d1.base, d2.base)
    if isinstance(d1, ast.Index) and isinstance(d2, ast.Index):
        return lvalue_root_name(d1) == lvalue_root_name(d2)
    return False


def lvalue_indexes(lvalue: ast.Expr, loop_indexes: frozenset[str]) -> frozenset[str]:
    """``indexes(d)``: the loop index variables used anywhere inside ``d``."""
    used: set[str] = set()
    for node in ast.walk_expressions(lvalue):
        if isinstance(node, ast.Var) and node.name in loop_indexes:
            used.add(node.name)
    return frozenset(used)


def same_lvalue(d1: ast.Expr, d2: ast.Expr) -> bool:
    """Syntactic equality of L-values (the ``d1 = d2`` tests of Definition 3.1)."""
    return d1 == d2


def collect_accesses(stmt: ast.Stmt, loop_indexes: frozenset[str] = frozenset()) -> list[StatementAccess]:
    """Collect :class:`StatementAccess` records for every atomic statement in ``stmt``.

    ``loop_indexes`` must contain the loop index variables of the loops
    *enclosing* ``stmt`` (the traversal adds indexes of nested loops as it
    descends).  Statements are numbered in textual order.
    """
    accesses: list[StatementAccess] = []
    counter = [0]

    def visit(node: ast.Stmt, context: frozenset[str]) -> None:
        if isinstance(node, (ast.Assign, ast.IncrementalUpdate, ast.VarDecl)):
            access = StatementAccess(
                statement=node,
                context=context,
                order=counter[0],
                readers=readers(node, context),
                writers=writers(node, context),
                aggregators=aggregators(node, context),
            )
            counter[0] += 1
            accesses.append(access)
        elif isinstance(node, ast.ForRange) or isinstance(node, ast.ForIn):
            visit(node.body, context | {node.variable})
        elif isinstance(node, ast.While):
            visit(node.body, context)
        elif isinstance(node, ast.If):
            visit(node.then_branch, context)
            if node.else_branch is not None:
                visit(node.else_branch, context)
        elif isinstance(node, ast.Block):
            for inner in node.statements:
                visit(inner, context)
        else:
            raise TypeError(f"unknown statement node: {node!r}")

    visit(stmt, loop_indexes)
    return accesses
