"""The shared diagnostic framework of the static-analysis subsystem.

Every static pass of the pipeline -- the Python frontend, the Definition 3.1
restriction checker, the comprehension type checker, the monoid-law verifier
and the plan linter -- reports its findings as :class:`Diagnostic` values
with a **stable code** (``D101``, ``D201``, ...), a severity, an optional
source location carried from the frontend, and an actionable hint.  The
codes form a public contract: tools (CI gates, editors, ``repro-lint``) key
on them, so a code is never renumbered or reused once released.

Code ranges, one block per pass (the registry below is the single source of
truth for code -> default severity / summary):

=======  ====================================================================
``D0xx`` frontend rejections (unsupported Python constructs, unreadable
         sources, parse failures)
``D1xx`` structural restrictions of Section 3.1 / 3.2 (declarations inside
         for-loops, nested while-loops, non-commutative update operators,
         reused loop indexes)
``D2xx`` the Definition 3.1 dependence restrictions (non-affine
         destinations, overlapping accesses)
``D3xx`` comprehension type/shape errors (join key type disagreement,
         monoid element type mismatch, pattern arity errors)
``D4xx`` monoid-law violations found by property probing (associativity,
         identity, commutativity)
``D5xx`` plan lint findings (cartesian products, non-co-partitionable
         joins, size-sensitive broadcast decisions, columnar fallbacks)
=======  ====================================================================

:class:`DiagnosticReport` aggregates the findings of a whole
``diablo.check()`` run and renders them for humans; ``strict`` mode promotes
warnings to errors before deciding whether compilation may proceed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Any, Iterator

from repro.errors import SourceLocation


class Severity(enum.IntEnum):
    """How bad a finding is; ordering is by increasing badness."""

    INFO = 1
    WARNING = 2
    ERROR = 3

    def __str__(self) -> str:
        return self.name.lower()


#: The stable code registry: code -> (default severity, one-line summary).
#: Append-only; codes are never renumbered or reused.
CODES: dict[str, tuple[Severity, str]] = {
    # -- D0xx: frontend ------------------------------------------------------
    "D001": (Severity.ERROR, "unsupported Python construct"),
    "D002": (Severity.ERROR, "loop-language parse error"),
    "D003": (Severity.ERROR, "unreadable function source"),
    # -- D1xx: structural restrictions (Sections 3.1/3.2) --------------------
    "D101": (Severity.ERROR, "variable declaration inside a for-loop"),
    "D102": (Severity.ERROR, "while-loop nested inside a for-loop"),
    "D103": (Severity.ERROR, "incremental update operator is not a commutative monoid"),
    "D104": (Severity.ERROR, "loop index variable reused by a nested loop"),
    # -- D2xx: Definition 3.1 dependence restrictions ------------------------
    "D201": (Severity.ERROR, "non-affine destination (Restriction 1)"),
    "D202": (Severity.ERROR, "overlapping accesses between statements (Restriction 2)"),
    # -- D3xx: comprehension types -------------------------------------------
    "D301": (Severity.ERROR, "equi-join key types disagree"),
    "D302": (Severity.ERROR, "monoid element type does not match the aggregated values"),
    "D303": (Severity.ERROR, "pattern arity does not match the generated elements"),
    "D304": (Severity.ERROR, "merged arrays have different key types"),
    # -- D4xx: monoid laws ----------------------------------------------------
    "D401": (Severity.ERROR, "monoid combine is not associative"),
    "D402": (Severity.ERROR, "monoid zero is not an identity"),
    "D403": (Severity.ERROR, "monoid claims commutativity but combine is not commutative"),
    "D404": (Severity.INFO, "monoid laws could not be probed"),
    # -- D5xx: plan lint ------------------------------------------------------
    "D501": (Severity.WARNING, "cartesian / broadcast nested-loop product"),
    "D502": (Severity.WARNING, "join cannot reuse partition placement"),
    "D503": (Severity.WARNING, "broadcast decision is size-sensitive near the threshold"),
    "D504": (Severity.WARNING, "columnar execution falls back to the record path"),
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a static-analysis pass.

    Attributes:
        code: the stable registry code (``D101``, ...).
        severity: :class:`Severity` of this occurrence (usually the code's
            registry default; strict mode may promote it).
        message: the human-readable description of this occurrence.
        hint: an actionable work-around, when one is known.
        location: the source position the finding points at, when the
            pipeline could carry one from the frontend.
        statement: the loop-language statement (or a string rendering of
            whatever object) the finding is about; excluded from equality so
            reports can be compared structurally in tests.
        source: the pass that produced the finding (``"restrictions"``,
            ``"typecheck"``, ``"monoid-laws"``, ``"plan-lint"``, ...).
    """

    code: str
    severity: Severity
    message: str
    hint: str | None = None
    location: SourceLocation | None = None
    statement: Any = field(default=None, compare=False)
    source: str = ""

    def __str__(self) -> str:
        text = self.message
        if self.location is not None and self.location.line > 0:
            text += f" (line {self.location.line})"
        if self.statement is not None:
            text += f" (in statement: {self.statement})"
        if self.hint:
            text += f"\n  hint: {self.hint}"
        return text

    def render(self) -> str:
        """The one-finding pretty form used by reports and ``repro-lint``."""
        where = ""
        if self.location is not None and self.location.line > 0:
            where = f"line {self.location.line}: "
        lines = [f"{self.code} {self.severity}: {where}{self.message}"]
        if self.statement is not None:
            lines.append(f"    in: {self.statement}")
        if self.hint:
            lines.append(f"    hint: {self.hint}")
        return "\n".join(lines)

    def promote(self) -> "Diagnostic":
        """This finding with warnings raised to errors (strict mode)."""
        if self.severity is Severity.WARNING:
            return replace(self, severity=Severity.ERROR)
        return self


def make_diagnostic(
    code: str,
    message: str,
    *,
    hint: str | None = None,
    location: SourceLocation | None = None,
    statement: Any = None,
    source: str = "",
    severity: Severity | None = None,
) -> Diagnostic:
    """Build a :class:`Diagnostic`, defaulting the severity from the registry."""
    if code not in CODES:
        raise ValueError(f"unknown diagnostic code {code!r}; register it in diagnostics.CODES")
    default_severity, _ = CODES[code]
    return Diagnostic(
        code=code,
        severity=severity if severity is not None else default_severity,
        message=message,
        hint=hint,
        location=location,
        statement=statement,
        source=source,
    )


def location_of(statement: Any) -> SourceLocation | None:
    """The source location attached to a loop-AST statement, if a real one."""
    location = getattr(statement, "location", None)
    if isinstance(location, SourceLocation) and location.line > 0:
        return location
    return None


@dataclass
class DiagnosticReport:
    """Every finding of one ``diablo.check()`` / ``repro-lint`` run.

    Iterable (yields diagnostics in pass order) and truthy exactly when it
    holds at least one finding.
    """

    diagnostics: list[Diagnostic] = field(default_factory=list)
    subject: str = ""

    def extend(self, findings: Iterator[Diagnostic] | list[Diagnostic]) -> None:
        self.diagnostics.extend(findings)

    def append(self, finding: Diagnostic) -> None:
        self.diagnostics.append(finding)

    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    def codes(self) -> list[str]:
        """The distinct codes reported, sorted."""
        return sorted({d.code for d in self.diagnostics})

    def promote_warnings(self) -> "DiagnosticReport":
        """A copy with every warning raised to an error (strict mode)."""
        return DiagnosticReport(
            [d.promote() for d in self.diagnostics], subject=self.subject
        )

    def render(self) -> str:
        """The multi-line human-readable report."""
        header = f"check of {self.subject}: " if self.subject else ""
        if not self.diagnostics:
            return f"{header}no findings"
        ordered = sorted(
            self.diagnostics, key=lambda d: (-int(d.severity), d.code)
        )
        counts = (
            f"{len(self.errors())} error(s), {len(self.warnings())} warning(s), "
            f"{len(self.diagnostics) - len(self.errors()) - len(self.warnings())} note(s)"
        )
        body = "\n".join(d.render() for d in ordered)
        return f"{header}{counts}\n{body}"

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __bool__(self) -> bool:
        return bool(self.diagnostics)
