"""The Definition 3.1 parallelization restrictions.

A for-loop statement ``s`` is *affine* (and therefore parallelizable by the
Figure 2 rules) when:

1. for any non-incremental update ``d := e`` in ``s``, ``affine(d, s)`` -- the
   destination is stored at a different location on every iteration;
2. there are no dependencies between any two statements ``s1`` and ``s2`` in
   ``s``: no L-values ``d1 ∈ (A[s1] ∪ W[s1])`` and ``d2 ∈ R[s2]`` with
   ``overlap(d1, d2)``, except
   (a) ``d1 ∈ W[s1]``, ``d1 = d2`` and ``s1`` precedes ``s2``;
   (b) ``d1 ∈ A[s1]``, ``d1 = d2``, ``s1`` precedes ``s2``, ``affine(d2, s2)``
       and ``context(s1) ∩ context(s2) = indexes(d1)``.

The checker reports every violation it finds as a
:class:`~repro.analysis.diagnostics.Diagnostic` with a stable code (``D1xx``
structural, ``D2xx`` dependence) and the paper's suggested work-arounds as
hints (e.g. promote a scalar temporary to an array indexed by the surrounding
loop variables).  Additional structural checks reflect the syntax
restrictions of Section 3.1: no variable declarations inside for-loops,
incremental updates must use a commutative monoid, and (a limitation of this
reproduction, documented in DESIGN.md) no while-loops nested inside
for-loops.
"""

from __future__ import annotations

from repro.analysis.affine import is_affine_destination
from repro.analysis.diagnostics import Diagnostic, location_of, make_diagnostic
from repro.analysis.lvalues import (
    StatementAccess,
    collect_accesses,
    lvalue_indexes,
    lvalue_overlap,
)
from repro.comprehension.monoids import DEFAULT_MONOIDS, MonoidRegistry
from repro.errors import RestrictionError
from repro.loop_lang import ast

#: Historical alias: violations are plain diagnostics since the unified
#: static-analysis subsystem landed; ``message`` / ``statement`` / ``hint``
#: and the ``str()`` rendering are unchanged.
RestrictionViolation = Diagnostic


def _violation(code: str, message: str, statement: ast.Stmt | None, hint: str) -> Diagnostic:
    return make_diagnostic(
        code,
        message,
        hint=hint,
        location=location_of(statement),
        statement=statement,
        source="restrictions",
    )


class RestrictionChecker:
    """Checks loop-language programs against the Definition 3.1 restrictions."""

    def __init__(self, monoids: MonoidRegistry | None = None) -> None:
        self.monoids = monoids or DEFAULT_MONOIDS

    # -- public API -----------------------------------------------------------

    def check_program(self, program: ast.Program) -> list[Diagnostic]:
        """Check every maximal for-loop in ``program``; return all violations."""
        violations: list[Diagnostic] = []
        for stmt in program.statements:
            violations.extend(self._check_region(stmt))
        return violations

    def check_statement(self, stmt: ast.Stmt) -> list[Diagnostic]:
        """Check a single top-level statement."""
        return self._check_region(stmt)

    def require(self, program: ast.Program) -> None:
        """Raise :class:`RestrictionError` if ``program`` has any violation."""
        violations = self.check_program(program)
        if violations:
            messages = "\n".join(str(v) for v in violations)
            hints = [v.hint for v in violations if v.hint]
            raise RestrictionError(
                f"program violates the parallelization restrictions:\n{messages}", hints
            )

    # -- traversal -------------------------------------------------------------

    def _check_region(self, stmt: ast.Stmt) -> list[Diagnostic]:
        """Find maximal for-loops under ``stmt`` (descending through sequential
        constructs) and check each of them."""
        if isinstance(stmt, (ast.ForRange, ast.ForIn)):
            return self._check_for_loop(stmt)
        if isinstance(stmt, ast.While):
            return self._check_region(stmt.body)
        if isinstance(stmt, ast.If):
            violations = self._check_region(stmt.then_branch)
            if stmt.else_branch is not None:
                violations += self._check_region(stmt.else_branch)
            return violations
        if isinstance(stmt, ast.Block):
            violations = []
            for inner in stmt.statements:
                violations.extend(self._check_region(inner))
            return violations
        # Plain assignments / declarations outside loops are always fine.
        return []

    # -- the per-loop checks -----------------------------------------------------

    def _check_for_loop(self, loop: ast.Stmt) -> list[Diagnostic]:
        violations: list[Diagnostic] = []
        violations.extend(self._structural_checks(loop))
        accesses = collect_accesses(loop)
        loop_indexes = frozenset(ast.loop_index_variables(loop))
        violations.extend(self._restriction_one(accesses, loop_indexes))
        violations.extend(self._restriction_two(accesses, loop_indexes))
        return violations

    def _structural_checks(self, loop: ast.Stmt) -> list[Diagnostic]:
        violations: list[Diagnostic] = []
        seen_indexes: set[str] = set()
        for node in ast.walk_statements(loop):
            if isinstance(node, ast.VarDecl) and node is not loop:
                violations.append(
                    _violation(
                        "D101",
                        "variable declarations cannot appear inside for-loops (Section 3.1)",
                        node,
                        hint="declare the variable before the loop, or promote it to an array "
                        "indexed by the loop variables",
                    )
                )
            if isinstance(node, ast.While):
                violations.append(
                    _violation(
                        "D102",
                        "a while-loop nested inside a for-loop makes the for-loop sequential; "
                        "this reproduction does not parallelize such loops",
                        node,
                        hint="hoist the while-loop outside the for-loop",
                    )
                )
            if isinstance(node, ast.IncrementalUpdate):
                if not self.monoids.is_commutative(node.op):
                    violations.append(
                        _violation(
                            "D103",
                            f"incremental update operator {node.op!r} is not a registered "
                            "commutative monoid (Section 3.5)",
                            node,
                            hint="register a commutative monoid for the operator or rewrite the "
                            "update",
                        )
                    )
            if isinstance(node, (ast.ForRange, ast.ForIn)):
                if node.variable in seen_indexes:
                    violations.append(
                        _violation(
                            "D104",
                            f"loop index variable {node.variable!r} is reused by a nested loop; "
                            "every for-loop must have a distinct index variable (Section 3.2)",
                            node,
                            hint="rename the inner loop variable",
                        )
                    )
                seen_indexes.add(node.variable)
        return violations

    def _restriction_one(
        self, accesses: list[StatementAccess], loop_indexes: frozenset[str]
    ) -> list[Diagnostic]:
        violations: list[Diagnostic] = []
        for access in accesses:
            stmt = access.statement
            if isinstance(stmt, ast.Assign):
                if not is_affine_destination(stmt.destination, access.context):
                    violations.append(
                        _violation(
                            "D201",
                            f"destination {stmt.destination} of a non-incremental update is not "
                            f"affine in the loop indexes {sorted(access.context)} (Restriction 1)",
                            stmt,
                            hint="promote the destination to an array indexed by all surrounding "
                            "loop variables (Section 3.2 shows this rewrite for matrix "
                            "factorization)",
                        )
                    )
        return violations

    def _restriction_two(
        self, accesses: list[StatementAccess], loop_indexes: frozenset[str]
    ) -> list[Diagnostic]:
        violations: list[Diagnostic] = []
        for first in accesses:
            for second in accesses:
                violations.extend(self._check_pair(first, second, loop_indexes))
        return violations

    def _check_pair(
        self, first: StatementAccess, second: StatementAccess, loop_indexes: frozenset[str]
    ) -> list[Diagnostic]:
        violations: list[Diagnostic] = []
        for d1, kind in [(d, "writer") for d in first.writers] + [
            (d, "aggregator") for d in first.aggregators
        ]:
            for d2 in second.readers:
                if not lvalue_overlap(d1, d2):
                    continue
                if self._excepted(first, second, d1, d2, kind, loop_indexes):
                    continue
                violations.append(
                    _violation(
                        "D202",
                        f"{kind} {d1} of one statement overlaps reader {d2} of another "
                        "statement in the same loop (Restriction 2)",
                        second.statement,
                        hint="split the loop, read from a copy of the array, or rewrite the "
                        "update as an incremental update with a commutative operator",
                    )
                )
        return violations

    def _excepted(
        self,
        first: StatementAccess,
        second: StatementAccess,
        d1: ast.Expr,
        d2: ast.Expr,
        kind: str,
        loop_indexes: frozenset[str],
    ) -> bool:
        precedes = first.order < second.order
        same = d1 == d2
        if kind == "writer":
            # Exception (a).
            return same and precedes
        # Exception (b) for aggregators.
        if not (same and precedes):
            return False
        if not is_affine_destination(d2, second.context):
            return False
        intersection = frozenset(first.context & second.context)
        return intersection == lvalue_indexes(d1, loop_indexes)


def check_program(program: ast.Program, monoids: MonoidRegistry | None = None) -> list[Diagnostic]:
    """Convenience wrapper: check a whole program."""
    return RestrictionChecker(monoids).check_program(program)


def check_statement(stmt: ast.Stmt, monoids: MonoidRegistry | None = None) -> list[Diagnostic]:
    """Convenience wrapper: check a single statement."""
    return RestrictionChecker(monoids).check_statement(stmt)
