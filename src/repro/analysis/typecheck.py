"""Type/shape inference over translated comprehension terms.

After the Figure 2 translation every assignment's right-hand side is a monoid
comprehension term over the program's variables; this pass walks those terms
with the declared input/``var`` types flowing in and reports shape and type
disagreements that would otherwise surface mid-execution (or, worse, produce
empty joins silently):

* ``D301`` -- the two sides of an equality condition (the planner's join
  keys) have incompatible scalar types, e.g. a string key matched against a
  numeric index: the equi-join can never find partners;
* ``D302`` -- the element type reduced by an aggregation / incremental merge
  disagrees with the monoid's element type (``&&`` over doubles, ``+`` over
  strings vs. numbers);
* ``D303`` -- a generator pattern destructures elements with the wrong
  arity, e.g. a pair pattern over a bag of triples;
* ``D304`` -- the two sides of an array merge (``X ⊳ Y`` / ``X ⊳⊕ Y``) are
  keyed by different types, so the per-key alignment is vacuous.

The pass is deliberately **conservative**: unknown types propagate silently
and only *confident* disagreements are reported -- a diagnostic here is a
real defect, never noise.  Type information comes from declared parameter
annotations and ``var`` declarations (``vector[t]`` keys by ``long``,
``matrix[t]`` by ``(long, long)``, ``map[k, v]`` by ``k``); programs with no
declarations simply get no D3xx findings.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.diagnostics import Diagnostic, location_of, make_diagnostic
from repro.comprehension import ir
from repro.comprehension.monoids import DEFAULT_MONOIDS, MonoidRegistry
from repro.errors import SourceLocation
from repro.loop_lang import ast
from repro.translate.target import TargetAssign, TargetProgram


@dataclass(frozen=True)
class BagType:
    """Internal shape: a bag of ``element`` values (None = unknown element)."""

    element: ast.Type | None

    def __str__(self) -> str:
        return f"bag[{self.element if self.element is not None else '?'}]"


#: A type lattice value: a loop-language type, a BagType, or None (unknown).
InferredType = "ast.Type | BagType | None"

_NUMERIC = {"int", "long", "double"}


def _family(typ: "ast.Type | BagType | None") -> object | None:
    """Collapse a type to a comparability family; None = unknown/opaque."""
    if typ is None:
        return None
    if isinstance(typ, BagType):
        return "bag"
    if isinstance(typ, ast.BasicType):
        if typ.name in _NUMERIC:
            return "numeric"
        if typ.name == "bool":
            return "bool"
        if typ.name == "string":
            return "string"
        return None
    if isinstance(typ, ast.TupleType):
        return ("tuple", len(typ.elements))
    return None


def _compatible(left: "ast.Type | BagType | None", right: "ast.Type | BagType | None") -> bool:
    """True unless the two types *confidently* disagree."""
    lf, rf = _family(left), _family(right)
    if lf is None or rf is None:
        return True
    if lf == rf:
        if isinstance(lf, tuple) and lf[0] == "tuple":
            assert isinstance(left, ast.TupleType) and isinstance(right, ast.TupleType)
            return all(_compatible(a, b) for a, b in zip(left.elements, right.elements, strict=False))
        return True
    # ints double as booleans throughout the language; don't flag the mix.
    if {lf, rf} == {"numeric", "bool"}:
        return True
    return False


def monoid_element_type(monoids: MonoidRegistry, op: str) -> ast.Type | None:
    """The element type a monoid combines, derived from its identity value."""
    if op not in monoids:
        return None
    zero = monoids.get(op).identity()
    if isinstance(zero, bool):
        return ast.BOOL
    if isinstance(zero, (int, float)):
        return ast.DOUBLE
    if isinstance(zero, str):
        return ast.STRING
    return None


def _pair_type(key: "ast.Type | None", value: "ast.Type | None") -> ast.TupleType:
    return ast.TupleType((key if key is not None else _UNKNOWN, value if value is not None else _UNKNOWN))


#: Placeholder inside tuple types for unknown components (opaque family).
_UNKNOWN = ast.BasicType("?")


def variable_types(target: TargetProgram) -> dict[str, "ast.Type | BagType | None"]:
    """The initial environment: every program variable's inferred shape."""
    env: dict[str, ast.Type | BagType | None] = {}
    for name, info in target.variables.items():
        declared = info.declared_type
        if info.kind == "scalar":
            env[name] = declared if isinstance(declared, ast.BasicType) else declared
            continue
        element: ast.Type | None = None
        if isinstance(declared, ast.ParametricType):
            constructor = declared.constructor
            if constructor == "vector" and declared.parameters:
                element = _pair_type(ast.LONG, declared.parameters[0])
            elif constructor == "matrix" and declared.parameters:
                element = _pair_type(ast.TupleType((ast.LONG, ast.LONG)), declared.parameters[0])
            elif constructor == "map" and len(declared.parameters) == 2:
                element = _pair_type(declared.parameters[0], declared.parameters[1])
            elif constructor in ("bag", "array") and declared.parameters:
                element = declared.parameters[0]
        elif info.kind == "array":
            element = _pair_type(None, None)
        env[name] = BagType(element)
    return env


class TypeChecker:
    """Infers comprehension term shapes and collects D3xx diagnostics."""

    def __init__(self, monoids: MonoidRegistry | None = None) -> None:
        self.monoids = monoids or DEFAULT_MONOIDS
        self.diagnostics: list[Diagnostic] = []
        self._location: SourceLocation | None = None
        self._statement: object = None

    # -- entry points ---------------------------------------------------------

    def check_target(self, target: TargetProgram) -> list[Diagnostic]:
        """Check every assignment of a translated program."""
        env = variable_types(target)
        for assignment in target.assignments():
            self.check_assignment(assignment, env)
        return self.diagnostics

    def check_assignment(
        self, assignment: TargetAssign, env: dict[str, "ast.Type | BagType | None"]
    ) -> None:
        self._location = location_of(assignment.origin)
        self._statement = assignment.origin if assignment.origin is not None else str(assignment)
        self.infer(assignment.term, dict(env))

    # -- reporting ------------------------------------------------------------

    def _report(self, code: str, message: str, hint: str | None = None) -> None:
        self.diagnostics.append(
            make_diagnostic(
                code,
                message,
                hint=hint,
                location=self._location,
                statement=self._statement,
                source="typecheck",
            )
        )

    # -- inference ------------------------------------------------------------

    def infer(
        self, term: ir.Term, env: dict[str, "ast.Type | BagType | None"]
    ) -> "ast.Type | BagType | None":
        if isinstance(term, ir.CVar):
            return env.get(term.name)
        if isinstance(term, ir.CConst):
            value = term.value
            if isinstance(value, bool):
                return ast.BOOL
            if isinstance(value, int):
                return ast.LONG
            if isinstance(value, float):
                return ast.DOUBLE
            if isinstance(value, str):
                return ast.STRING
            return None
        if isinstance(term, ir.CTuple):
            elements = tuple(self.infer(e, env) for e in term.elements)
            return ast.TupleType(tuple(e if e is not None else _UNKNOWN for e in elements))
        if isinstance(term, ir.CRecord):
            for _, value in term.fields:
                self.infer(value, env)
            return None
        if isinstance(term, ir.CProject):
            base = self.infer(term.base, env)
            if isinstance(base, ast.TupleType) and term.attribute.startswith("_"):
                try:
                    index = int(term.attribute[1:]) - 1
                except ValueError:
                    return None
                if 0 <= index < len(base.elements):
                    element = base.elements[index]
                    return None if element == _UNKNOWN else element
            return None
        if isinstance(term, ir.CBinOp):
            return self._infer_binop(term, env)
        if isinstance(term, ir.CUnaryOp):
            self.infer(term.operand, env)
            return ast.BOOL if term.op == "!" else None
        if isinstance(term, ir.CCall):
            for argument in term.arguments:
                self.infer(argument, env)
            return None
        if isinstance(term, ir.Aggregate):
            return self._infer_aggregate(term, env)
        if isinstance(term, (ir.Merge, ir.MergeWith)):
            return self._infer_merge(term, env)
        if isinstance(term, ir.RangeTerm):
            self.infer(term.lower, env)
            self.infer(term.upper, env)
            return BagType(ast.LONG)
        if isinstance(term, ir.InRange):
            for child in term.children():
                self.infer(child, env)
            return ast.BOOL
        if isinstance(term, ir.Comprehension):
            return self._infer_comprehension(term, env)
        if isinstance(term, ir.EmptyBag):
            return BagType(None)
        return None

    def _infer_binop(
        self, term: ir.CBinOp, env: dict[str, "ast.Type | BagType | None"]
    ) -> "ast.Type | BagType | None":
        left = self.infer(term.left, env)
        right = self.infer(term.right, env)
        if term.op in ("==", "!="):
            if not _compatible(left, right):
                self._report(
                    "D301",
                    f"equality {term} compares incompatible types {left} and {right}; "
                    "as a join/filter key this never matches",
                    hint="align the key types (e.g. index maps by the declared key type, "
                    "vectors/matrices by long indexes)",
                )
            return ast.BOOL
        if term.op in ("<", "<=", ">", ">="):
            return ast.BOOL
        if term.op in ("&&", "||"):
            return ast.BOOL
        if term.op in ("+", "-", "*", "/", "%", "**"):
            lf, rf = _family(left), _family(right)
            if lf == "string" and rf == "string" and term.op == "+":
                return ast.STRING
            if lf == "numeric" and rf == "numeric":
                if isinstance(left, ast.BasicType) and isinstance(right, ast.BasicType):
                    if "double" in (left.name, right.name) or term.op == "/":
                        return ast.DOUBLE
                    return ast.LONG
            return None
        # User-registered operators (^, ^^, ...) combine opaque records.
        return None

    def _infer_aggregate(
        self, term: ir.Aggregate, env: dict[str, "ast.Type | BagType | None"]
    ) -> "ast.Type | BagType | None":
        operand = self.infer(term.operand, env)
        element = operand.element if isinstance(operand, BagType) else operand
        expected = monoid_element_type(self.monoids, term.op)
        if expected is not None and element is not None and not _compatible(expected, element):
            self._report(
                "D302",
                f"aggregation {term.op}/ reduces {element} values but the {term.op!r} monoid "
                f"combines {expected} values",
                hint="use a monoid whose element type matches the aggregated expression",
            )
        if expected is not None and _family(expected) == "bool":
            return ast.BOOL
        return element if element is not None else expected

    def _infer_merge(
        self, term: "ir.Merge | ir.MergeWith", env: dict[str, "ast.Type | BagType | None"]
    ) -> "ast.Type | BagType | None":
        left = self.infer(term.left, env)
        right = self.infer(term.right, env)
        left_pair = left.element if isinstance(left, BagType) else None
        right_pair = right.element if isinstance(right, BagType) else None
        left_key = left_pair.elements[0] if isinstance(left_pair, ast.TupleType) and len(left_pair.elements) == 2 else None
        right_key = right_pair.elements[0] if isinstance(right_pair, ast.TupleType) and len(right_pair.elements) == 2 else None
        if left_key is not None and right_key is not None and not _compatible(left_key, right_key):
            self._report(
                "D304",
                f"merge {term} aligns arrays keyed by {left_key} and {right_key}; "
                "no key can appear on both sides",
                hint="merge arrays of the same index type (the destination and the update "
                "delta must agree)",
            )
        if isinstance(term, ir.MergeWith):
            expected = monoid_element_type(self.monoids, term.op)
            for pair, side in ((left_pair, "left"), (right_pair, "right")):
                value = (
                    pair.elements[1]
                    if isinstance(pair, ast.TupleType) and len(pair.elements) == 2
                    else None
                )
                if (
                    expected is not None
                    and value is not None
                    and value != _UNKNOWN
                    and not _compatible(expected, value)
                ):
                    self._report(
                        "D302",
                        f"merge {term} combines {side}-side {value} values with the "
                        f"{term.op!r} monoid, which expects {expected} values",
                        hint="the incremental-update operator must match the array's "
                        "element type",
                    )
        return left if isinstance(left, BagType) else right

    def _infer_comprehension(
        self, comp: ir.Comprehension, outer: dict[str, "ast.Type | BagType | None"]
    ) -> BagType:
        env = dict(outer)
        bound_here: list[str] = []
        for qualifier in comp.qualifiers:
            if isinstance(qualifier, ir.Generator):
                domain = self.infer(qualifier.domain, env)
                element = domain.element if isinstance(domain, BagType) else None
                self._bind_pattern(qualifier.pattern, element, env, qualifier)
                bound_here.extend(qualifier.pattern.variables())
            elif isinstance(qualifier, ir.LetBinding):
                value = self.infer(qualifier.term, env)
                self._bind_pattern(qualifier.pattern, value, env, qualifier, arity_check=False)
                bound_here.extend(qualifier.pattern.variables())
            elif isinstance(qualifier, ir.Condition):
                self.infer(qualifier.term, env)
            elif isinstance(qualifier, ir.GroupBy):
                key_type = self.infer(qualifier.key_term(), env)
                key_names = set(qualifier.pattern.variables())
                # Previously bound variables (other than the keys) lift to bags.
                for name in bound_here:
                    if name not in key_names:
                        env[name] = BagType(
                            env.get(name) if not isinstance(env.get(name), BagType) else None
                        )
                self._bind_pattern(qualifier.pattern, key_type, env, qualifier, arity_check=False)
                bound_here.extend(key_names)
        head = self.infer(comp.head, env)
        return BagType(head if not isinstance(head, BagType) else None)

    def _bind_pattern(
        self,
        pattern: ir.Pattern,
        value: "ast.Type | BagType | None",
        env: dict[str, "ast.Type | BagType | None"],
        qualifier: ir.Qualifier,
        arity_check: bool = True,
    ) -> None:
        if isinstance(pattern, ir.PVar):
            env[pattern.name] = None if value == _UNKNOWN else value
            return
        if isinstance(pattern, ir.PWildcard):
            return
        if isinstance(pattern, ir.PTuple):
            if isinstance(value, ast.TupleType):
                if len(value.elements) != len(pattern.elements):
                    if arity_check:
                        self._report(
                            "D303",
                            f"pattern {pattern} has {len(pattern.elements)} element(s) but "
                            f"the generated values are {value} "
                            f"({len(value.elements)} element(s)) in {qualifier}",
                            hint="destructure exactly the element shape the domain produces",
                        )
                    for name in pattern.variables():
                        env[name] = None
                    return
                for sub, sub_type in zip(pattern.elements, value.elements, strict=False):
                    self._bind_pattern(sub, sub_type, env, qualifier, arity_check)
                return
            if arity_check and isinstance(value, ast.BasicType) and value != _UNKNOWN:
                self._report(
                    "D303",
                    f"pattern {pattern} destructures a tuple but the domain produces "
                    f"{value} scalars in {qualifier}",
                    hint="bind a single variable instead of a tuple pattern",
                )
            for name in pattern.variables():
                env[name] = None


def check_types(
    target: TargetProgram, monoids: MonoidRegistry | None = None
) -> list[Diagnostic]:
    """Type-check a translated program; returns the (possibly empty) findings."""
    return TypeChecker(monoids).check_target(target)
