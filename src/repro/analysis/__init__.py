"""Static analysis: dependence restrictions and whole-pipeline diagnostics.

* :mod:`repro.analysis.diagnostics` -- the shared :class:`Diagnostic`
  framework (stable ``Dxxx`` codes, severities, source spans, reports).
* :mod:`repro.analysis.lvalues` -- readers / writers / aggregators of a
  statement, L-value overlap, loop contexts and destination indexes.
* :mod:`repro.analysis.affine` -- affine expressions and affine destinations.
* :mod:`repro.analysis.restrictions` -- the Definition 3.1 checker that
  decides whether a for-loop is parallelizable and produces actionable
  diagnostics when it is not.
* :mod:`repro.analysis.typecheck` -- type/shape inference over translated
  comprehension terms (join key disagreement, monoid element mismatches,
  pattern arity).
* :mod:`repro.analysis.monoid_laws` -- registration-time property probing of
  user monoids (associativity, identity, claimed commutativity).
* :mod:`repro.analysis.plan_lint` -- shuffle hazards in the translated terms
  and in lowered plan trees (products, non-co-partitioned joins, columnar
  fallbacks).

``diablo.check()`` (:func:`repro.api.check.check`) runs all of them in pass
order and aggregates the findings into one report.
"""

from repro.analysis.diagnostics import (
    CODES,
    Diagnostic,
    DiagnosticReport,
    Severity,
    location_of,
    make_diagnostic,
)
from repro.analysis.monoid_laws import require_lawful, verify_monoid
from repro.analysis.plan_lint import lint_plan, lint_target
from repro.analysis.typecheck import check_types
from repro.analysis.lvalues import (
    StatementAccess,
    aggregators,
    lvalue_overlap,
    lvalue_root_name,
    readers,
    writers,
)
from repro.analysis.affine import is_affine_expression, is_affine_destination
from repro.analysis.restrictions import (
    RestrictionChecker,
    RestrictionViolation,
    check_program,
    check_statement,
)

__all__ = [
    "CODES",
    "Diagnostic",
    "DiagnosticReport",
    "Severity",
    "location_of",
    "make_diagnostic",
    "verify_monoid",
    "require_lawful",
    "lint_plan",
    "lint_target",
    "check_types",
    "StatementAccess",
    "aggregators",
    "readers",
    "writers",
    "lvalue_overlap",
    "lvalue_root_name",
    "is_affine_expression",
    "is_affine_destination",
    "RestrictionChecker",
    "RestrictionViolation",
    "check_program",
    "check_statement",
]
