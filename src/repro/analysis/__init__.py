"""Dependence analysis and parallelization restrictions (Section 3.2).

* :mod:`repro.analysis.lvalues` -- readers / writers / aggregators of a
  statement, L-value overlap, loop contexts and destination indexes.
* :mod:`repro.analysis.affine` -- affine expressions and affine destinations.
* :mod:`repro.analysis.restrictions` -- the Definition 3.1 checker that
  decides whether a for-loop is parallelizable and produces actionable
  diagnostics when it is not.
"""

from repro.analysis.lvalues import (
    StatementAccess,
    aggregators,
    lvalue_overlap,
    lvalue_root_name,
    readers,
    writers,
)
from repro.analysis.affine import is_affine_expression, is_affine_destination
from repro.analysis.restrictions import (
    RestrictionChecker,
    RestrictionViolation,
    check_program,
    check_statement,
)

__all__ = [
    "StatementAccess",
    "aggregators",
    "readers",
    "writers",
    "lvalue_overlap",
    "lvalue_root_name",
    "is_affine_expression",
    "is_affine_destination",
    "RestrictionChecker",
    "RestrictionViolation",
    "check_program",
    "check_statement",
]
