"""Plan-level lint: shuffle hazards visible before (and after) planning.

Two complementary entry points:

* :func:`lint_target` walks the translated comprehension terms **statically**
  (no data, no planner) and mirrors the evaluator's join-detection logic to
  predict the plan shape.  It flags products -- dataset generators the
  evaluator will pair without an equi-join key (``D501``) -- and, when the
  configuration *explicitly* sets ``columnar=True`` (not the self-selecting
  ``"auto"`` default), comprehensions whose expressions fall outside the
  vectorizable kernel set and silently run row-at-a-time (``D504``).
* :func:`lint_plan` walks an actual lowered :class:`~repro.algebra.plan.PlanNode`
  tree and reads the planner's own annotations: hash joins where *neither*
  side could reuse an existing placement -- so both sides shuffle -- are
  reported with the planner's notes as the "why" (``D502``), and every
  product node gets a note tying its broadcast-vs-cartesian outcome to
  ``broadcast_join_threshold`` (``D503``).

Everything here is a **warning** (or info), never an error: a product can be
the right plan -- KMeans deliberately pairs every point with every centroid --
so the lint reports the cost, and strict mode decides whether cost is fatal.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.algebra import plan as plan_mod
from repro.analysis.diagnostics import Diagnostic, location_of, make_diagnostic
from repro.comprehension import ir
from repro.errors import SourceLocation
from repro.translate.target import TargetAssign, TargetProgram


def _dataset_names(target: TargetProgram) -> set[str]:
    """Variables the evaluator scans as distributed datasets."""
    return {
        name
        for name, info in target.variables.items()
        if info.kind in ("array", "collection")
    }


def _has_join_condition(
    qualifiers: list[ir.Qualifier], position: int, bound: set[str], new_variables: set[str]
) -> bool:
    """Mirror of the evaluator's equi-join key detection (see evaluator.py)."""
    for later in qualifiers[position + 1 :]:
        if isinstance(later, ir.GroupBy):
            return False
        if not isinstance(later, ir.Condition):
            continue
        for term in ir.conjuncts(later.term):
            if not (isinstance(term, ir.CBinOp) and term.op == "=="):
                continue
            left_vars = ir.free_variables(term.left)
            right_vars = ir.free_variables(term.right)
            for one, other in ((left_vars, right_vars), (right_vars, left_vars)):
                if one & bound and other & new_variables and not (one & new_variables):
                    return True
    return False


class _TargetLinter:
    def __init__(self, target: TargetProgram, config: Any = None) -> None:
        self.datasets = _dataset_names(target)
        self.config = config
        self.diagnostics: list[Diagnostic] = []
        self._location: SourceLocation | None = None
        self._statement: object = None

    def _report(self, code: str, message: str, hint: str | None = None) -> None:
        self.diagnostics.append(
            make_diagnostic(
                code,
                message,
                hint=hint,
                location=self._location,
                statement=self._statement,
                source="plan-lint",
            )
        )

    def lint_assignment(self, assignment: TargetAssign) -> None:
        self._location = location_of(assignment.origin)
        self._statement = assignment.origin if assignment.origin is not None else str(assignment)
        self._walk(assignment.term)

    def _walk(self, term: ir.Term) -> None:
        if isinstance(term, ir.Comprehension):
            self._lint_comprehension(term)
            return
        for child in term.children():
            self._walk(child)

    def _lint_comprehension(self, comp: ir.Comprehension) -> None:
        qualifiers = list(comp.qualifiers)
        bound: set[str] = set()
        dataset_generators = 0
        for position, qualifier in enumerate(qualifiers):
            if isinstance(qualifier, ir.Generator):
                domain = qualifier.domain
                self._walk(domain)
                is_dataset = isinstance(domain, ir.RangeTerm) or (
                    isinstance(domain, ir.CVar) and domain.name in self.datasets
                )
                new_variables = set(qualifier.pattern.variables())
                if is_dataset and dataset_generators > 0:
                    if not _has_join_condition(qualifiers, position, bound, new_variables):
                        label = str(domain)
                        self._report(
                            "D501",
                            f"no equi-join key links generator {qualifier} to the "
                            f"earlier generators; the evaluator pairs every row with "
                            f"every element of {label} (broadcast nested-loop join, "
                            f"cartesian above the broadcast threshold)",
                            hint="add a condition equating an expression over the new "
                            "generator's variables with one over the earlier ones, or "
                            "keep the small side under broadcast_join_threshold",
                        )
                if is_dataset:
                    dataset_generators += 1
                bound.update(new_variables)
            elif isinstance(qualifier, ir.LetBinding):
                self._walk(qualifier.term)
                bound.update(qualifier.pattern.variables())
            elif isinstance(qualifier, ir.Condition):
                self._walk(qualifier.term)
            elif isinstance(qualifier, ir.GroupBy):
                bound.update(qualifier.pattern.variables())
        # Only explicit columnar=True warrants fallback warnings: the user
        # asked for batch execution and these stages won't deliver it.  The
        # default "auto" mode self-selects fully lowerable chains and runs
        # everything else record-at-a-time with no conversion tax, so there
        # is nothing to warn about.
        if getattr(self.config, "columnar", False) is True:
            self._lint_columnar(comp, bound)
        self._walk(comp.head)

    def _lint_columnar(self, comp: ir.Comprehension, row_names: set[str]) -> None:
        """Report conditions the columnar engine cannot vectorize (D504)."""
        from repro.algebra import vectorize

        names = frozenset(row_names)
        for qualifier in comp.qualifiers:
            if not isinstance(qualifier, ir.Condition):
                continue
            for term in ir.conjuncts(qualifier.term):
                if vectorize.lower_term(term, names) is None:
                    self._report(
                        "D504",
                        f"columnar execution is enabled but the filter {term} is "
                        "outside the vectorizable kernel set; this stage falls back "
                        "to row-at-a-time execution",
                        hint="rewrite the predicate with supported arithmetic / "
                        "comparison operators, or expect no columnar speedup here",
                    )


def lint_target(target: TargetProgram, config: Any = None) -> list[Diagnostic]:
    """Statically lint every assignment of a translated program."""
    linter = _TargetLinter(target, config)
    for assignment in target.assignments():
        linter.lint_assignment(assignment)
    return linter.diagnostics


# ---------------------------------------------------------------------------
# Runtime plan trees
# ---------------------------------------------------------------------------


def _walk_plan(node: plan_mod.PlanNode) -> Iterable[plan_mod.PlanNode]:
    yield node
    for child in node.children:
        yield from _walk_plan(child)


def lint_plan(root: plan_mod.PlanNode, config: Any = None) -> list[Diagnostic]:
    """Lint a lowered plan tree using the planner's own annotations."""
    threshold = getattr(config, "broadcast_join_threshold", None)
    near = f" (broadcast_join_threshold = {threshold} rows)" if threshold is not None else ""
    diagnostics: list[Diagnostic] = []
    for node in _walk_plan(root):
        if isinstance(node, plan_mod.ProductNode):
            diagnostics.append(
                make_diagnostic(
                    "D501",
                    f"{node.label}: no join key; every left row pairs with every "
                    f"row of the product side",
                    hint="a small side broadcasts; a large one degrades to a cartesian "
                    "product",
                    source="plan-lint",
                )
            )
            diagnostics.append(
                make_diagnostic(
                    "D503",
                    f"{node.label} broadcasts only while the product side stays "
                    f"at or under the broadcast threshold{near}; above it the plan "
                    "becomes a cartesian product",
                    source="plan-lint",
                )
            )
        elif isinstance(node, plan_mod.HashJoinNode):
            if not node.left_prepartitioned and not node.right_prepartitioned:
                why = (
                    "; planner notes: " + "; ".join(node.notes)
                    if node.notes
                    else "; neither side's existing placement matches the join key"
                )
                diagnostics.append(
                    make_diagnostic(
                        "D502",
                        f"{node.label}: the planner could not co-partition this "
                        f"join, so both sides shuffle{why}",
                        hint="stable placements come from reusing the same key "
                        "expression across statements (see the planner's "
                        "'already placed' notes on co-partitioned joins)",
                        source="plan-lint",
                    )
                )
        for note in node.notes:
            if "cartesian" in note:
                diagnostics.append(
                    make_diagnostic(
                        "D501",
                        f"{node.label}: {note}",
                        hint="both sides exceeded broadcast_join_threshold at force "
                        "time; the runtime fell back to a full cartesian product",
                        source="plan-lint",
                    )
                )
    return diagnostics
