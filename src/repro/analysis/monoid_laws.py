"""Property-based verification of registered monoid laws (Section 3.5).

The paper's correctness argument for incremental updates ``d ⊕= e`` rests on
⊕ being a **commutative monoid**: translation groups the update values by
destination index and reduces every group with ⊕ on whatever partition, in
whatever order, the shuffle delivers them.  A combine function that is not
associative -- or that claims commutativity it does not have -- therefore
produces *silently wrong* distributed results, never an exception.

This pass checks the laws at registration time with bounded deterministic
probing over sample elements:

* **associativity** -- ``(a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)`` over every triple of
  samples (``D401``);
* **identity**      -- ``zero ⊕ a == a`` and ``a ⊕ zero == a`` for every
  sample (``D402``);
* **commutativity** -- ``a ⊕ b == b ⊕ a`` over every pair, checked only when
  the monoid *claims* ``commutative=True`` (``D403``); the claim feeds the
  restriction checker's D103 decision and the runtime's skew-salting safety,
  so a false claim is an error while an honest ``commutative=False`` is not.

Samples come from the monoid's own ``samples`` registry metadata when
provided (custom element types such as KMeans' ``ArgMin``/``Avg`` records
need domain values), otherwise they are derived from the type of the
identity element.  When no samples can be derived the laws are reported as
unprobeable (``D404``, informational) rather than guessed at.

Probing is bounded: with the default sample budget the associativity sweep
is at most ``5**3`` combines, cheap enough to run on every ``register()``.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.analysis.diagnostics import Diagnostic, make_diagnostic
from repro.errors import MonoidLawError

#: Hard cap on the samples used for probing (the sweep is cubic in this).
MAX_SAMPLES = 5

#: Deterministic default samples per identity-element type.  Values are
#: chosen to expose order sensitivity (mixed signs / magnitudes, strings of
#: different lengths) without overflowing any reasonable combine.
_DEFAULT_SAMPLES: dict[type, tuple[Any, ...]] = {
    bool: (False, True),
    int: (0, 1, 2, 7, -3),
    float: (0.0, 1.0, 2.5, -3.25, 8.0),
    str: ("", "a", "bc", "def"),
}


def default_samples(monoid: Any) -> tuple[Any, ...]:
    """Probe samples for ``monoid``: its metadata, else derived from its zero.

    Returns an empty tuple when nothing can be derived (opaque identity
    types); the caller then reports the laws as unprobeable instead of
    probing with junk values.
    """
    declared = tuple(getattr(monoid, "samples", ()) or ())
    if declared:
        return declared[:MAX_SAMPLES]
    zero = monoid.identity()
    if isinstance(zero, bool):
        return _DEFAULT_SAMPLES[bool]
    if isinstance(zero, int):
        return _DEFAULT_SAMPLES[int]
    if isinstance(zero, float):
        derived = _DEFAULT_SAMPLES[float]
        # Keep the identity itself probeable even when it is inf/-inf.
        return tuple(list(derived[:4]) + [zero])[:MAX_SAMPLES]
    if isinstance(zero, str):
        return _DEFAULT_SAMPLES[str]
    if isinstance(zero, tuple) and zero and all(isinstance(c, (int, float)) for c in zero):
        width = len(zero)
        return (
            zero,
            tuple(float(i + 1) for i in range(width)),
            tuple(float(2 * i) - 1.0 for i in range(width)),
        )
    return ()


def _equal(left: Any, right: Any) -> bool:
    """Structural equality tolerant of float rounding."""
    if isinstance(left, float) and isinstance(right, float):
        if left == right:
            return True
        scale = max(abs(left), abs(right), 1.0)
        return abs(left - right) <= 1e-9 * scale
    if isinstance(left, tuple) and isinstance(right, tuple) and len(left) == len(right):
        return all(_equal(a, b) for a, b in zip(left, right, strict=False))
    try:
        return bool(left == right)
    except Exception:
        return False


def verify_monoid(monoid: Any, samples: Sequence[Any] | None = None) -> list[Diagnostic]:
    """Probe ``monoid`` for associativity, identity and claimed commutativity.

    Returns diagnostics (``D401``/``D402``/``D403`` errors, or a single
    ``D404`` note when the element domain cannot be sampled).  A monoid whose
    combine raises on the samples is also reported as unprobeable -- a raise
    means the samples are outside the combine's domain, not that a law fails.
    """
    probe = tuple(samples) if samples is not None else default_samples(monoid)
    probe = probe[:MAX_SAMPLES]
    symbol = getattr(monoid, "symbol", "?")
    if not probe:
        return [
            make_diagnostic(
                "D404",
                f"monoid {symbol!r} has an opaque element type; its laws were not probed",
                hint="pass samples=(...) at construction so registration can verify the laws",
                source="monoid-laws",
            )
        ]
    combine = monoid.combine
    findings: list[Diagnostic] = []
    try:
        zero = monoid.identity()
        for a in probe:
            if not _equal(combine(zero, a), a) or not _equal(combine(a, monoid.identity()), a):
                findings.append(
                    make_diagnostic(
                        "D402",
                        f"monoid {symbol!r}: zero is not an identity "
                        f"(zero ⊕ {a!r} or {a!r} ⊕ zero differs from {a!r})",
                        hint="missing array entries are treated as the identity, so a broken "
                        "identity corrupts sparse updates",
                        source="monoid-laws",
                    )
                )
                break
        for a in probe:
            for b in probe:
                for c in probe:
                    if not _equal(combine(combine(a, b), c), combine(a, combine(b, c))):
                        findings.append(
                            make_diagnostic(
                                "D401",
                                f"monoid {symbol!r}: combine is not associative on "
                                f"({a!r}, {b!r}, {c!r})",
                                hint="distributed reduction combines partial results in an "
                                "arbitrary tree order; a non-associative combine gives "
                                "partition-count-dependent results",
                                source="monoid-laws",
                            )
                        )
                        return findings
        if getattr(monoid, "commutative", False):
            for index, a in enumerate(probe):
                for b in probe[index + 1 :]:
                    if not _equal(combine(a, b), combine(b, a)):
                        findings.append(
                            make_diagnostic(
                                "D403",
                                f"monoid {symbol!r} claims commutativity but "
                                f"{a!r} ⊕ {b!r} != {b!r} ⊕ {a!r}",
                                hint="declare commutative=False (the operator then cannot be "
                                "used in incremental updates) or fix the combine; the claim "
                                "also gates skew salting at runtime",
                                source="monoid-laws",
                            )
                        )
                        return findings
    except Exception as error:
        return [
            make_diagnostic(
                "D404",
                f"monoid {symbol!r}: law probing raised {type(error).__name__}: {error}; "
                "the default samples are outside the combine's domain",
                hint="pass samples=(...) of the real element type at construction",
                source="monoid-laws",
            )
        ]
    return findings


def require_lawful(monoid: Any, samples: Sequence[Any] | None = None) -> None:
    """Raise :class:`MonoidLawError` when probing finds a law violation.

    Unprobeable monoids (``D404``) pass -- rejecting every monoid with an
    opaque element type would make custom record monoids unusable without
    samples metadata.
    """
    findings = [d for d in verify_monoid(monoid, samples) if d.code != "D404"]
    if findings:
        details = "\n".join(d.render() for d in findings)
        symbol = getattr(monoid, "symbol", "?")
        raise MonoidLawError(
            f"monoid {symbol!r} violates the monoid laws:\n{details}", findings
        )
