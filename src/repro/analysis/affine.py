"""Affine expressions and affine destinations (Section 3.2).

An *affine expression* has the form ``c0 + c1*i1 + ... + ck*ik`` where the
``i``s are loop index variables and the ``c``s are constants.  Loop-invariant
variables (such as matrix dimensions ``n``, ``m``) are treated as symbolic
constants, exactly as the programs in the paper use them (``for i = 0, n-1``).

A destination ``d`` is affine in statement ``s`` -- ``affine(d, s)`` -- when

* ``d`` is a plain variable and no for-loop encloses ``s`` (a scalar written
  inside a loop is stored at the *same* location on every iteration, which is
  what the restriction is designed to reject);
* ``d`` is a projection ``d'.A`` with ``affine(d', s)``; or
* ``d`` is an array indexing ``v[e1, ..., en]`` where every index ``ei`` is an
  affine expression and the loop indexes used in ``d`` cover *all* loop
  indexes in ``context(s)``.
"""

from __future__ import annotations

from repro.analysis.lvalues import lvalue_indexes
from repro.loop_lang import ast


def is_affine_expression(expr: ast.Expr, loop_indexes: frozenset[str]) -> bool:
    """True when ``expr`` is affine in the given loop index variables."""
    return _affine(expr, loop_indexes, allow_index=True)


def _affine(expr: ast.Expr, loop_indexes: frozenset[str], allow_index: bool) -> bool:
    if isinstance(expr, ast.Const):
        return isinstance(expr.value, (int, float)) and not isinstance(expr.value, bool)
    if isinstance(expr, ast.Var):
        # Either a loop index (coefficient 1 term) or a symbolic constant.
        if expr.name in loop_indexes:
            return allow_index
        return True
    if isinstance(expr, ast.UnaryOp) and expr.op == "-":
        return _affine(expr.operand, loop_indexes, allow_index)
    if isinstance(expr, ast.BinOp):
        if expr.op in ("+", "-"):
            return _affine(expr.left, loop_indexes, allow_index) and _affine(
                expr.right, loop_indexes, allow_index
            )
        if expr.op == "*":
            left_has = _mentions_index(expr.left, loop_indexes)
            right_has = _mentions_index(expr.right, loop_indexes)
            if left_has and right_has:
                return False
            if left_has:
                return _affine(expr.left, loop_indexes, allow_index) and _constant_only(
                    expr.right, loop_indexes
                )
            if right_has:
                return _affine(expr.right, loop_indexes, allow_index) and _constant_only(
                    expr.left, loop_indexes
                )
            return _constant_only(expr.left, loop_indexes) and _constant_only(expr.right, loop_indexes)
        if expr.op in ("/", "%"):
            # Divisions by constants keep locations distinct only in special
            # cases; be conservative.
            return False
    return False


def _mentions_index(expr: ast.Expr, loop_indexes: frozenset[str]) -> bool:
    return any(
        isinstance(node, ast.Var) and node.name in loop_indexes for node in ast.walk_expressions(expr)
    )


def _constant_only(expr: ast.Expr, loop_indexes: frozenset[str]) -> bool:
    """True when ``expr`` contains no loop indexes and no array accesses."""
    for node in ast.walk_expressions(expr):
        if isinstance(node, ast.Var) and node.name in loop_indexes:
            return False
        if isinstance(node, ast.Index):
            return False
    return True


def is_affine_destination(dest: ast.Expr, context: frozenset[str]) -> bool:
    """``affine(d, s)`` for a destination ``d`` of a statement with loop context
    ``context`` (the loop indexes of the enclosing for-loops)."""
    if isinstance(dest, ast.Var):
        return not context
    if isinstance(dest, ast.Project):
        return is_affine_destination(dest.base, context)
    if isinstance(dest, ast.Index):
        for index in dest.indices:
            if not is_affine_expression(index, context):
                return False
        used = lvalue_indexes(dest, context)
        return context <= used
    return False
