"""``repro-lint``: run the static-diagnostics pipeline over program files.

Each path argument is a Python file (or a directory of them, searched
recursively).  Every module-level function in a file that *parses as a loop
program* is checked with :func:`repro.api.check.check`; functions using
Python features outside the loop language (decorators aside, e.g. test
helpers) are reported as ``D001`` findings unless ``--loose`` skips them.

Exit status:

* ``0`` -- no error-severity findings (warnings alone do not fail unless
  ``--strict`` promotes them);
* ``1`` -- at least one error;
* ``2`` -- usage problems (no such path, no checkable functions).

``--expect D102,D201`` inverts the contract for known-bad fixtures: the run
succeeds (exit 0) exactly when every expected code is reported, and fails
otherwise -- CI uses this to pin the diagnostics the seeded-bad programs
must keep producing.
"""

from __future__ import annotations

import argparse
import ast as python_ast
import sys
import textwrap
from pathlib import Path
from typing import Iterable

from repro.analysis.diagnostics import DiagnosticReport

#: Decorator spellings that mark a function as a diablo program.
_JIT_MARKERS = ("jit",)


def _iter_files(paths: Iterable[str]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.is_file():
            files.append(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {raw}")
    return files


def _is_jit_decorated(node: python_ast.FunctionDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, python_ast.Call) else decorator
        name = target.attr if isinstance(target, python_ast.Attribute) else getattr(target, "id", "")
        if name in _JIT_MARKERS:
            return True
    return False


def _function_sources(path: Path, jit_only: bool) -> list[tuple[str, str]]:
    """(name, source) for each checkable module-level function in ``path``.

    The extracted source is padded with blank lines so that every line keeps
    its original file line number -- diagnostics then point at the file the
    user opened, not at a re-serialized snippet.
    """
    text = path.read_text()
    try:
        module = python_ast.parse(text)
    except SyntaxError as error:
        raise ValueError(f"{path}: not valid Python: {error}") from error
    out: list[tuple[str, str]] = []
    for node in module.body:
        if not isinstance(node, python_ast.FunctionDef):
            continue
        if jit_only and not _is_jit_decorated(node):
            continue
        # node.lineno is the ``def`` line, past any decorators -- the segment
        # must parse as a bare function.
        segment_lines = text.splitlines()[node.lineno - 1 : node.end_lineno]
        source = "\n" * (node.lineno - 1) + textwrap.dedent("\n".join(segment_lines))
        out.append((node.name, source))
    return out


def _check_function(name: str, source: str, strict: bool) -> DiagnosticReport:
    from repro.api.check import check_python_source

    report = check_python_source(source, strict=strict)
    report.subject = name
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Static diagnostics (types, restrictions, monoid laws, plan lint) "
        "for diablo loop programs.",
    )
    parser.add_argument("paths", nargs="+", help="Python files or directories to lint")
    parser.add_argument(
        "--strict", action="store_true", help="promote warnings to errors (exit 1)"
    )
    parser.add_argument(
        "--all-functions",
        action="store_true",
        help="check every module-level function, not only @diablo.jit ones",
    )
    parser.add_argument(
        "--expect",
        default="",
        metavar="CODES",
        help="comma-separated diagnostic codes; exit 0 exactly when all are reported "
        "(known-bad fixture mode)",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true", help="print nothing but the exit status"
    )
    arguments = parser.parse_args(argv)

    try:
        files = _iter_files(arguments.paths)
    except FileNotFoundError as error:
        print(f"repro-lint: {error}", file=sys.stderr)
        return 2

    reports: list[tuple[Path, DiagnosticReport]] = []
    checked = 0
    for path in files:
        try:
            functions = _function_sources(path, jit_only=not arguments.all_functions)
        except ValueError as error:
            print(f"repro-lint: {error}", file=sys.stderr)
            return 2
        for name, source in functions:
            checked += 1
            report = _check_function(name, source, arguments.strict)
            if report:
                reports.append((path, report))
                if not arguments.quiet:
                    print(f"{path}: {report.render()}")

    if checked == 0:
        print(
            "repro-lint: no checkable functions found "
            "(use --all-functions to lint undecorated ones)",
            file=sys.stderr,
        )
        return 2

    seen_codes = {code for _, report in reports for code in report.codes()}
    if arguments.expect:
        expected = {code.strip() for code in arguments.expect.split(",") if code.strip()}
        missing = expected - seen_codes
        if missing:
            print(
                f"repro-lint: expected diagnostics not reported: {', '.join(sorted(missing))} "
                f"(reported: {', '.join(sorted(seen_codes)) or 'none'})",
                file=sys.stderr,
            )
            return 1
        if not arguments.quiet:
            print(f"repro-lint: all expected codes reported ({', '.join(sorted(expected))})")
        return 0

    failed = any(report.has_errors for _, report in reports)
    if not arguments.quiet and not reports:
        print(f"repro-lint: {checked} function(s) clean")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
