"""Typed parameter annotations for jit-compiled functions.

The paper's loop language declares array variables explicitly
(``var R: matrix[double]``); plain Python functions carry the same
information in parameter annotations.  This module defines the markers the
:func:`repro.api.jit` decorator understands::

    @diablo.jit
    def pagerank(E: Matrix, N: int, num_steps: int):
        ...

and the conversion from an annotation to the
:class:`~repro.translate.target.VariableInfo` that flows into translation as
a *declared* type -- replacing kind inference for that input.  Recognized
annotations:

* ``float`` / ``int`` / ``bool`` / ``str`` -- scalar inputs;
* ``Vector`` / ``Matrix`` / ``Map`` (optionally parameterized, e.g.
  ``Vector[float]`` or ``Map[str, float]``) -- sparse array inputs;
* ``Bag``, ``Dataset``, ``list``, ``tuple`` -- un-indexed collection inputs;
* ``dict`` -- a key-value map input.

Unknown annotations (e.g. ``typing`` constructs) are ignored and the
variable's kind is inferred from its uses, exactly as before.

The markers are also callable (returning an empty dict) so annotated
declarations inside a jit function body -- ``R: Matrix = Matrix()`` -- are
valid Python as written, even though the body is only ever parsed, never
executed.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Any

from repro.loop_lang import ast as loop_ast
from repro.loop_lang.python_frontend import COLLECTION_ANNOTATION_TYPES, FrontendError
from repro.runtime.dataset import Dataset
from repro.translate.target import VariableInfo

_SCALAR_TYPES: dict[type, loop_ast.Type] = {
    float: loop_ast.DOUBLE,
    int: loop_ast.INT,
    bool: loop_ast.BOOL,
    str: loop_ast.STRING,
}


def _element_type(annotation: Any) -> loop_ast.Type:
    if isinstance(annotation, loop_ast.Type):
        return annotation
    scalar = _SCALAR_TYPES.get(annotation)
    if scalar is None:
        raise FrontendError(
            f"unsupported array element annotation: {annotation!r} "
            "(use float, int, bool or str)"
        )
    return scalar


@dataclass(frozen=True)
class ArrayAnnotation:
    """A subscriptable annotation marker for sparse-array parameters."""

    constructor: str
    parameters: tuple[loop_ast.Type, ...]

    def __getitem__(self, item: Any) -> "ArrayAnnotation":
        items = item if isinstance(item, tuple) else (item,)
        return ArrayAnnotation(self.constructor, tuple(_element_type(i) for i in items))

    def __call__(self) -> dict:
        # Lets ``R: Matrix = Matrix()`` declarations execute as plain Python.
        return {}

    def loop_type(self) -> loop_ast.ParametricType:
        """The loop-language type this annotation declares."""
        return loop_ast.ParametricType(self.constructor, self.parameters)

    def __repr__(self) -> str:
        return str(self.loop_type())


@dataclass(frozen=True)
class BagAnnotation:
    """Annotation marker for un-indexed collection parameters."""

    element: loop_ast.Type

    def __getitem__(self, item: Any) -> "BagAnnotation":
        return BagAnnotation(_element_type(item))

    def __call__(self) -> list:
        return []

    def loop_type(self) -> loop_ast.ParametricType:
        return loop_ast.bag_of(self.element)

    def __repr__(self) -> str:
        return str(self.loop_type())


# Default element types come from the frontend's canonical table, so a
# parameter annotation (``M: Matrix``) and a body declaration
# (``R: Matrix = Matrix()``) always declare the same loop type.

#: A sparse vector input: a dict keyed by index, a list (indexed by position)
#: or a Dataset of ``(index, value)`` pairs.
Vector = ArrayAnnotation("vector", COLLECTION_ANNOTATION_TYPES["vector"].parameters)
#: A sparse matrix input: a dict keyed by ``(i, j)`` or a Dataset of pairs.
Matrix = ArrayAnnotation("matrix", COLLECTION_ANNOTATION_TYPES["matrix"].parameters)
#: A key-value map input.
Map = ArrayAnnotation("map", COLLECTION_ANNOTATION_TYPES["map"].parameters)
#: An un-indexed input collection, traversed with ``for x in V``.
Bag = BagAnnotation(COLLECTION_ANNOTATION_TYPES["bag"].parameters[0])

#: Names resolvable inside string annotations (``from __future__ import
#: annotations`` turns every annotation into a string).
ANNOTATION_NAMESPACE: dict[str, Any] = {
    "float": float,
    "int": int,
    "bool": bool,
    "str": str,
    "list": list,
    "tuple": tuple,
    "dict": dict,
    "Vector": Vector,
    "Matrix": Matrix,
    "Map": Map,
    "Bag": Bag,
    "Dataset": Dataset,
}


def annotation_info(name: str, annotation: Any) -> VariableInfo | None:
    """The declared :class:`VariableInfo` for a parameter annotation.

    Returns None when the parameter is unannotated or the annotation is not
    one the loop language understands (the variable's kind is then inferred
    from its uses).
    """
    if annotation is inspect.Parameter.empty or annotation is None:
        return None
    if isinstance(annotation, str):
        try:
            annotation = eval(annotation, {"__builtins__": {}}, ANNOTATION_NAMESPACE)  # noqa: S307
        except Exception:
            return None
    if isinstance(annotation, ArrayAnnotation):
        return VariableInfo(name, "array", annotation.loop_type(), is_input=True)
    if isinstance(annotation, BagAnnotation):
        return VariableInfo(name, "collection", annotation.loop_type(), is_input=True)
    if isinstance(annotation, type):
        if issubclass(annotation, Dataset):
            return VariableInfo(name, "collection", None, is_input=True)
        scalar = _SCALAR_TYPES.get(annotation)
        if scalar is not None:
            return VariableInfo(name, "scalar", scalar, is_input=True)
        if annotation in (list, tuple):
            return VariableInfo(name, "collection", None, is_input=True)
        if annotation is dict:
            return VariableInfo(name, "array", Map.loop_type(), is_input=True)
    return None
