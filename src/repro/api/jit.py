"""The ``@diablo.jit`` decorator: compiled loop functions with plain-Python calls.

This is the paper's pitch made literal: a programmer writes an ordinary
imperative Python function, and the system silently turns it into a
distributed data-parallel program::

    import repro.api as diablo
    from repro.api import Matrix

    @diablo.jit
    def matrix_sum(M: Matrix, n: int):
        total: float = 0.0
        for i in range(n):
            for j in range(n):
                total += M[i, j]
        return total

    total = matrix_sum(entries, 32)       # compiled on first call, cached after

Compared to the classic ``Diablo.compile(source).run(**inputs)`` facade, a
jit function

* is **directly callable** -- positional and keyword arguments are bound by
  the Python signature (defaults included);
* honours **parameter annotations** (``float``, ``Vector``, ``Matrix``,
  ``Dataset``, ...) as declared input types flowing into translation instead
  of being inferred from uses;
* supports **value returns** -- ``return x`` / ``return total, C`` at the
  function tail map the result environment back to the returned names
  (scalars unwrapped to plain values, arrays as Datasets);
* **compiles once** -- translations land in a shared
  :class:`~repro.translate.cache.CompilationCache` keyed by source, declared
  types and compiler options, so iterative drivers (k-means sweeps, PageRank
  convergence loops) stop paying translation per call.  Inspect with
  ``diablo.cache_info()`` / reset with ``diablo.cache_clear()``;
* resolves its configuration **at call time** from
  :func:`repro.api.config.current_config`, so
  ``with diablo.options(executor_mode="processes"): ...`` re-targets calls
  without touching the function.

Jit functions own the :class:`DistributedContext` objects they execute on
(one per distinct runtime configuration) and release their worker pools via
``close()`` or by being used as a context manager.
"""

from __future__ import annotations

import functools
import inspect
import threading
from collections import OrderedDict
from typing import Any, Callable, Iterable, Mapping

from repro.algebra.runner import ProgramRunner
from repro.api.config import DiabloConfig, current_config
from repro.api.types import annotation_info
from repro.comprehension.monoids import Monoid, MonoidRegistry
from repro.functions import FunctionRegistry
from repro.loop_lang import ast
from repro.loop_lang.python_frontend import parse_python_function
from repro.runtime.context import DistributedContext
from repro.translate.cache import CacheInfo, CompilationCache
from repro.translate.target import TargetProgram, VariableInfo
from repro.translate.translator import DiabloCompiler, TranslationResult

#: The process-wide compilation cache shared by every jit function, so
#: repeated calls -- and re-decorations of the same source -- translate once.
GLOBAL_COMPILATION_CACHE = CompilationCache(maxsize=256)

#: Distinct runtime configurations a jit function keeps live contexts for.
#: A sweep over many configurations evicts (and shuts down) the least
#: recently used context instead of accumulating worker pools.
MAX_LIVE_CONTEXTS = 4


def cache_info() -> CacheInfo:
    """Counters of the shared jit compilation cache (misses == translations)."""
    return GLOBAL_COMPILATION_CACHE.info()


def cache_clear() -> None:
    """Drop every cached jit translation and reset the counters."""
    GLOBAL_COMPILATION_CACHE.clear()


class JitFunction:
    """A Python function compiled through the DIABLO pipeline on first call.

    Produced by the :func:`jit` decorator; call it like the original
    function.  Useful attributes:

    * ``program`` -- the converted loop-language AST;
    * ``input_types`` -- the declared :class:`VariableInfo` per annotated
      parameter;
    * ``compile()`` / ``target()`` / ``explain()`` -- force compilation and
      inspect the generated target code;
    * ``runtime()`` -- the :class:`DistributedContext` calls execute on under
      the current configuration (for metrics inspection);
    * ``close()`` -- shut down every context this function created (also
      available via ``with jit_function: ...``).
    """

    def __init__(
        self,
        function: Callable,
        *,
        functions: Mapping[str, Callable[..., Any]] | None = None,
        monoids: Iterable[Monoid] = (),
        config: DiabloConfig | None = None,
        cache: CompilationCache | None = None,
        **config_overrides: Any,
    ) -> None:
        functools.update_wrapper(self, function)
        self._function = function
        self._signature = inspect.signature(function)
        self.spec = parse_python_function(function)
        self.input_types: dict[str, VariableInfo] = {}
        for name, parameter in self._signature.parameters.items():
            info = annotation_info(name, parameter.annotation)
            if info is not None:
                self.input_types[name] = info
        # A full `config` pins the function to that configuration; bare
        # keyword overrides compose with the ambient configuration per call.
        if config is not None:
            config = config.replace(**config_overrides)
        elif config_overrides:
            # Validate the override names eagerly, at decoration time.
            current_config().replace(**config_overrides)
        self._pinned = config
        self._overrides = config_overrides
        self._functions = FunctionRegistry()
        for name, scalar_function in (functions or {}).items():
            self._functions.register(name, scalar_function)
        self._monoids = MonoidRegistry()
        for monoid in monoids:
            self._monoids.register(monoid)
        self._cache = cache if cache is not None else GLOBAL_COMPILATION_CACHE
        self._contexts: OrderedDict[tuple, DistributedContext] = OrderedDict()
        self._contexts_lock = threading.Lock()

    # -- calling ----------------------------------------------------------------

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        config = self.resolve_config()
        bound = self._signature.bind(*args, **kwargs)
        bound.apply_defaults()
        translation = self.compile(config)
        runner = ProgramRunner(self._runtime_for(config), self._functions, self._monoids)
        result = runner.run(translation.target, dict(bound.arguments))
        if self.spec.returns is None:
            return result
        return result.returned(self.spec.returns, self.spec.returns_tuple)

    # -- compilation ------------------------------------------------------------

    def compile(self, config: DiabloConfig | None = None) -> TranslationResult:
        """The (cached) translation of this function under ``config``."""
        config = config or self.resolve_config()
        compiler = DiabloCompiler(
            monoids=self._monoids, cache=self._cache, **config.compiler_options()
        )
        return compiler.compile(self.spec.program, input_types=self.input_types)

    def target(self) -> TargetProgram:
        """The generated target code under the current configuration."""
        return self.compile().target

    def explain(self) -> str:
        """A textual summary of the generated target code."""
        return str(self.target())

    @property
    def program(self) -> ast.Program:
        """The loop-language program converted from the Python function."""
        return self.spec.program

    def cache_info(self) -> CacheInfo:
        """Counters of the compilation cache this function compiles through."""
        return self._cache.info()

    def cache_clear(self) -> None:
        self._cache.clear()

    # -- configuration and runtime ----------------------------------------------

    def resolve_config(self) -> DiabloConfig:
        """The configuration a call made right now would use."""
        if self._pinned is not None:
            return self._pinned
        config = current_config()
        if self._overrides:
            config = config.replace(**self._overrides)
        return config

    def runtime(self) -> DistributedContext:
        """The context calls execute on under the current configuration."""
        return self._runtime_for(self.resolve_config())

    def _runtime_for(self, config: DiabloConfig) -> DistributedContext:
        key = config.runtime_key()
        evicted: list[DistributedContext] = []
        with self._contexts_lock:
            context = self._contexts.get(key)
            if context is None:
                context = config.make_context()
                self._contexts[key] = context
            self._contexts.move_to_end(key)
            while len(self._contexts) > MAX_LIVE_CONTEXTS:
                _, stale = self._contexts.popitem(last=False)
                evicted.append(stale)
        for stale in evicted:
            # Graceful shutdown: pending tasks of a concurrent call still on
            # this context run to completion, and the context itself stays
            # usable afterwards (pools are recreated lazily on demand).
            stale.shutdown(cancel_pending=False)
        return context

    # -- extension points --------------------------------------------------------

    def register_function(self, name: str, function: Callable[..., Any]) -> None:
        """Register a scalar function callable from the loop program."""
        self._functions.register(name, function)

    def register_monoid(self, monoid: Monoid) -> None:
        """Register a commutative monoid usable in incremental updates."""
        self._monoids.register(monoid)

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        """Shut down every worker pool this function's contexts started."""
        with self._contexts_lock:
            contexts = list(self._contexts.values())
            self._contexts.clear()
        for context in contexts:
            context.shutdown()

    def __enter__(self) -> "JitFunction":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        returns = ", ".join(self.spec.returns) if self.spec.returns else "<env>"
        return f"<jit {self.spec.name}({', '.join(self.spec.parameters)}) -> {returns}>"


def jit(function: Callable | None = None, /, **options: Any) -> Any:
    """Decorate a Python function for JIT-style compilation to DISC programs.

    Use bare or with options::

        @diablo.jit
        def f(V): ...

        @diablo.jit(num_partitions=16, functions={"distance": math.dist})
        def g(P: Vector, n: int): ...

    Options: ``functions`` (scalar-function registry entries), ``monoids``
    (custom commutative monoids), ``config`` (pin a full
    :class:`DiabloConfig`), ``cache`` (a private
    :class:`CompilationCache`), plus any :class:`DiabloConfig` field as a
    per-function override composed with the ambient configuration.
    """
    if function is None:
        return lambda wrapped: JitFunction(wrapped, **options)
    if not callable(function):
        raise TypeError("@jit must decorate a callable (did you mean @jit(option=...)?)")
    return JitFunction(function, **options)
