"""``diablo.check``: run the whole static-diagnostics pipeline, execute nothing.

The checker drives the same passes compilation uses -- frontend parse,
Definition 3.1 restriction checking, Figure 2 translation, type/shape
inference, monoid-law probing and plan lint -- but collects every finding
into a :class:`~repro.analysis.diagnostics.DiagnosticReport` instead of
raising at the first problem::

    import repro.api as diablo

    report = diablo.check(pagerank)
    if report.has_errors:
        print(report.render())

``check`` accepts the same inputs as ``@diablo.jit``: a Python function
(annotated parameters become declared input types), an already-decorated
:class:`~repro.api.jit.JitFunction`, loop-language source text or a parsed
program.  Positional ``*types`` mirror the jit annotation markers and are
matched to the function's parameters in order, overriding annotations.

``check`` never raises on *user* errors -- unparseable programs come back as
``D001``/``D002`` diagnostics with their source line.  With ``strict=True``
every warning in the report is promoted to an error, matching what
``@diablo.jit(strict=True)`` enforces at compile time.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.analysis.diagnostics import DiagnosticReport, make_diagnostic
from repro.analysis.monoid_laws import verify_monoid
from repro.analysis.plan_lint import lint_target
from repro.analysis.restrictions import RestrictionChecker
from repro.analysis.typecheck import check_types
from repro.api.config import DiabloConfig, current_config
from repro.api.types import annotation_info
from repro.comprehension.monoids import Monoid, MonoidRegistry
from repro.errors import LexerError, ParseError
from repro.loop_lang import ast
from repro.loop_lang.python_frontend import FrontendError, FunctionSpec, parse_python_function
from repro.translate.canonicalize import canonicalize_increments
from repro.translate.target import VariableInfo
from repro.translate.translator import DiabloCompiler


def _capture_parse(report: DiagnosticReport, parse_thunk: Callable[[], Any]) -> Any:
    """Run a frontend parse, converting rejections into D0xx diagnostics."""
    try:
        return parse_thunk()
    except FrontendError as error:
        line = getattr(error, "line", None)
        if line is None:
            report.append(
                make_diagnostic(
                    "D003",
                    str(error),
                    hint="pass the function's source text instead of the function "
                    "object when the source file is unavailable",
                    source="frontend",
                )
            )
        else:
            from repro.errors import SourceLocation

            report.append(
                make_diagnostic(
                    "D001",
                    str(error),
                    location=SourceLocation(line, 1),
                    source="frontend",
                )
            )
    except (LexerError, ParseError) as error:
        report.append(
            make_diagnostic(
                "D002",
                str(error),
                location=getattr(error, "location", None),
                source="frontend",
            )
        )
    return None


def _parse_subject(
    subject: Any, report: DiagnosticReport
) -> tuple[ast.Program | None, tuple[str, ...]]:
    """Resolve ``subject`` to a loop program; parse failures become diagnostics."""
    from repro.api.jit import JitFunction
    from repro.loop_lang.parser import parse_program

    if isinstance(subject, JitFunction):
        report.subject = getattr(subject, "__name__", report.subject)
        return subject.spec.program, subject.spec.parameters
    if isinstance(subject, FunctionSpec):
        report.subject = subject.name
        return subject.program, subject.parameters
    if isinstance(subject, ast.Program):
        return subject, ()
    if isinstance(subject, str):
        program = _capture_parse(report, lambda: parse_program(subject))
        return program, ()
    if callable(subject):
        report.subject = getattr(subject, "__name__", report.subject)
        spec = _capture_parse(report, lambda: parse_python_function(subject))
        if spec is None:
            return None, ()
        return spec.program, spec.parameters
    raise TypeError(
        f"diablo.check() cannot check {subject!r}; pass a function, jit function, "
        "a FunctionSpec, loop-language source text or a parsed program"
    )


def _input_types(
    subject: Any, parameters: tuple[str, ...], types: tuple[Any, ...]
) -> dict[str, VariableInfo]:
    from repro.api.jit import JitFunction

    declared: dict[str, VariableInfo] = {}
    if isinstance(subject, JitFunction):
        declared.update(subject.input_types)
    for name, annotation in zip(parameters, types, strict=False):
        info = annotation_info(name, annotation)
        if info is not None:
            declared[name] = info
    return declared


def check(
    subject: Any,
    *types: Any,
    strict: bool = False,
    config: DiabloConfig | None = None,
    monoids: Iterable[Monoid] = (),
    functions: dict[str, Callable[..., Any]] | None = None,
) -> DiagnosticReport:
    """Statically check a program end to end; returns every finding, runs nothing.

    Args:
        subject: a Python function, ``@diablo.jit`` function, loop-language
            source text, or parsed :class:`~repro.loop_lang.ast.Program`.
        *types: optional annotation markers (``Vector``, ``Matrix[float]``,
            ``float``, ...) matched positionally to the function's parameters.
        strict: promote warnings to errors, as ``strict=True`` compilation does.
        config: configuration consulted for plan lint (columnar, broadcast
            threshold); defaults to the ambient configuration.
        monoids: custom monoids the program registers; each is law-probed and
            made visible to restriction checking and type inference.
        functions: names of scalar helper functions the program calls
            (signatures only; they are never invoked).
    """
    del functions  # reserved: helpers are opaque to every static pass
    report = DiagnosticReport(subject=getattr(subject, "__name__", "<program>"))
    config = config or current_config()

    registry = MonoidRegistry()
    for monoid in monoids:
        report.extend(verify_monoid(monoid))
        registry.register(monoid, verify=False)
    from repro.api.jit import JitFunction

    if isinstance(subject, JitFunction):
        registry = subject._monoids

    program, parameters = _parse_subject(subject, report)
    if program is None:
        return report.promote_warnings() if strict else report

    program = canonicalize_increments(program, registry)
    report.extend(RestrictionChecker(registry).check_program(program))
    if not report.has_errors:
        compiler = DiabloCompiler(monoids=registry, check_restrictions=False)
        translation = compiler.compile(program, input_types=_input_types(subject, parameters, types))
        report.extend(check_types(translation.target, registry))
        report.extend(lint_target(translation.target, config))
    return report.promote_warnings() if strict else report


def check_python_source(
    source: str,
    *,
    strict: bool = False,
    config: DiabloConfig | None = None,
    monoids: Iterable[Monoid] = (),
) -> DiagnosticReport:
    """:func:`check` for Python source *text* (a function or module body).

    ``repro-lint`` uses this entry point: the text never has to import, so
    fixture programs with deliberate errors can be linted from files.
    Frontend rejections come back as ``D001``/``D002`` diagnostics with the
    line numbers of the given text.
    """
    from repro.loop_lang.python_frontend import parse_python_source

    report = DiagnosticReport(subject="<module>")
    spec = _capture_parse(report, lambda: parse_python_source(source))
    if spec is None:
        return report.promote_warnings() if strict else report
    return check(spec, strict=strict, config=config, monoids=monoids)
