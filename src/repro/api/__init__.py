"""The user-facing DIABLO API: ``@diablo.jit``, typed signatures, unified config.

Import the package under the ``diablo`` alias and decorate plain imperative
functions::

    import repro.api as diablo
    from repro.api import Matrix, Vector

    @diablo.jit
    def pagerank(E: Matrix, N: int, num_steps: int):
        P: Vector = Vector()
        ...
        return P

    ranks = pagerank(adjacency, 100, 10)          # compiled once, then cached
    print(diablo.cache_info())                    # hits grow on repeated calls

    with diablo.options(executor_mode="processes", num_partitions=16):
        ranks = pagerank(adjacency, 100, 10)      # same translation, new runtime

    with diablo.options(spill_threshold_bytes=64 << 20):
        ranks = pagerank(adjacency, 100, 10)      # out-of-core shuffles past 64 MiB

The pieces:

* :func:`jit` / :class:`JitFunction` -- the decorator (``repro.api.jit``);
* :func:`check` -- the whole-pipeline static checker (``diablo.check(fn)``
  returns a :class:`~repro.analysis.diagnostics.DiagnosticReport` without
  executing anything; ``strict=True`` in the config or decorator promotes
  its warnings to compile errors);
* :class:`DiabloConfig`, :func:`configure`, :func:`options`,
  :func:`current_config` -- unified configuration with scoped overrides;
* :func:`cache_info` / :func:`cache_clear` -- the shared compilation cache;
* ``Vector`` / ``Matrix`` / ``Map`` / ``Bag`` / ``Dataset`` -- parameter
  annotations that become declared input types.

The classic :class:`repro.Diablo` facade remains available and is now a thin
compatibility layer over these same pieces.
"""

from __future__ import annotations

from repro.api.check import check
from repro.api.config import (
    DiabloConfig,
    configure,
    current_config,
    options,
    reset_config,
)
from repro.api.jit import (
    GLOBAL_COMPILATION_CACHE,
    JitFunction,
    cache_clear,
    cache_info,
    jit,
)
from repro.api.types import (
    ANNOTATION_NAMESPACE,
    ArrayAnnotation,
    Bag,
    BagAnnotation,
    Map,
    Matrix,
    Vector,
    annotation_info,
)
from repro.runtime.dataset import Dataset
from repro.translate.cache import CacheInfo, CompilationCache

__all__ = [
    "jit",
    "JitFunction",
    "check",
    "DiabloConfig",
    "configure",
    "options",
    "current_config",
    "reset_config",
    "cache_info",
    "cache_clear",
    "CacheInfo",
    "CompilationCache",
    "GLOBAL_COMPILATION_CACHE",
    "Vector",
    "Matrix",
    "Map",
    "Bag",
    "Dataset",
    "ArrayAnnotation",
    "BagAnnotation",
    "ANNOTATION_NAMESPACE",
    "annotation_info",
]
