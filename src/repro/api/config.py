"""Unified configuration for the DIABLO user-facing API.

Historically the knobs lived in three places: the runtime
(``DistributedContext(num_partitions=..., executor=...,
broadcast_join_threshold=...)``), the compiler (``DiabloCompiler(optimize=...,
check_restrictions=...)``) and per-call-site wiring in examples and
benchmarks.  :class:`DiabloConfig` consolidates all of them in one immutable
dataclass, with two ways to change the active configuration:

* :func:`configure` sets the process-wide defaults;
* :func:`options` scopes an override to a ``with`` block (backed by a
  :class:`~contextvars.ContextVar`, so concurrent threads and async tasks
  see only their own overrides)::

      with diablo.options(executor_mode="processes", num_partitions=16):
          ranks = pagerank(E, N, 10)   # jit call under the scoped config

Jit-compiled functions resolve their configuration at call time, so the same
decorated function can serve requests under different executors without
recompiling -- the compilation cache is keyed by the compiler-relevant
options only.
"""

from __future__ import annotations

import contextlib
from contextvars import ContextVar
from dataclasses import dataclass, fields, replace
from typing import Any, Iterator

from repro.runtime.context import EXECUTOR_MODES, DistributedContext
from repro.runtime.dataset import DEFAULT_BROADCAST_JOIN_THRESHOLD


@dataclass(frozen=True)
class DiabloConfig:
    """Every user-facing knob of the compiler and the runtime, in one place.

    Attributes:
        executor_mode: ``"sequential"``, ``"threads"``, ``"processes"``
            (see :class:`~repro.runtime.context.DistributedContext`) or
            ``"cluster"`` (multi-process workers over TCP; see
            :class:`~repro.runtime.cluster.ClusterContext`).
        num_partitions: default number of partitions for datasets.
        num_threads: thread-pool size for ``executor_mode="threads"``
            (None = one thread per partition).
        num_processes: process-pool size for ``executor_mode="processes"``
            (None = ``min(num_partitions, cpu count)``).
        cluster_workers: number of local worker subprocesses a
            ``"cluster"`` context spawns when no address is given.
        cluster_address: ``host:port`` a ``"cluster"`` context binds and
            externally started ``repro-worker`` processes connect to
            (``None`` = spawn a local cluster on an ephemeral port; the
            ``DIABLO_CLUSTER_ADDRESS`` environment variable applies as a
            fallback).
        broadcast_join_threshold: joins whose build side is at most this many
            records run as broadcast hash joins.
        spill_threshold_bytes: out-of-core shuffle budget -- estimated bytes
            a shuffle map task may buffer before spilling bucket runs to
            disk.  ``None`` (default) keeps shuffles in memory (the
            ``DIABLO_SPILL_THRESHOLD_BYTES`` environment variable still
            applies as a fallback).  Affects memory use only, never results.
        spill_dir: directory for shuffle spill files (``None`` = system temp
            dir or ``DIABLO_SPILL_DIR``).
        plan_optimize: partition-aware plan optimization -- shuffle
            elimination over co-partitioned inputs, pre-partitioned map-side
            bypass and while-loop invariant caching.  Affects performance
            and structural metrics only, never results.
        columnar: columnar vectorized execution -- recognized narrow chains
            and map-side combiners run as batch kernels over unzipped
            column arrays, with per-partition fallback to the record path
            (see :mod:`repro.runtime.columnar`).  ``"auto"`` (default)
            batches only fully lowerable chains (plan-time cost model plus
            runtime fallback memoization, so partial chains never pay the
            conversion tax); ``True`` batches every vectorizable run;
            ``False`` keeps everything record-at-a-time.  The
            ``DIABLO_COLUMNAR`` environment variable applies as a fallback
            at the raw ``DistributedContext`` layer.  Affects performance
            and the ``vectorized_stages``/``columnar_fallbacks`` counters
            only, never results.
        adaptive: adaptive skew-aware execution -- shuffle inputs are
            sampled at force time; hot keys in keyed reductions are salted
            into per-task partials with an exact driver-side final fold,
            heavily duplicated group-by keys switch to map-side grouping,
            ``sort_by`` range bounds come from the frequency-weighted
            histogram, and broadcast-vs-shuffle joins re-decide from actual
            post-chain sizes.  Affects performance and the ``salted_keys``/
            ``adaptive_decisions`` counters only, never results.
        plan_cache: plan-skeleton caching across ``while`` iterations --
            loop bodies reuse the lowered plan tree from iteration 1 and
            only rebind mutated inputs, instead of re-running
            CSE/annotate/lower (measured by ``plan_cache_hits``).  Affects
            performance only, never results.
        check_restrictions: reject programs violating Definition 3.1.
        optimize: apply the Section 3.6 / Section 4 rewrites.
        strict: run the full static-diagnostics suite (type/shape inference,
            plan lint) at compile time and treat **warnings as compile
            errors** (:class:`~repro.errors.StaticCheckError`).  ``False``
            (default) reports nothing extra; ``diablo.check()`` runs the same
            passes on demand.
    """

    executor_mode: str = "sequential"
    num_partitions: int = 8
    num_threads: int | None = None
    num_processes: int | None = None
    cluster_workers: int = 2
    cluster_address: str | None = None
    broadcast_join_threshold: int = DEFAULT_BROADCAST_JOIN_THRESHOLD
    spill_threshold_bytes: int | None = None
    spill_dir: str | None = None
    plan_optimize: bool = True
    columnar: bool | str = "auto"
    adaptive: bool = True
    plan_cache: bool = True
    check_restrictions: bool = True
    optimize: bool = True
    strict: bool = False

    def __post_init__(self) -> None:
        # "cluster" is deliberately NOT in EXECUTOR_MODES: the in-process
        # runtime never sees it (DistributedContext.from_config dispatches
        # to ClusterContext first), and tests that parametrize over
        # EXECUTOR_MODES should not silently start spawning clusters.
        if self.executor_mode != "cluster" and self.executor_mode not in EXECUTOR_MODES:
            raise ValueError(
                f"unknown executor_mode {self.executor_mode!r}; choose from "
                f"{EXECUTOR_MODES + ('cluster',)}"
            )
        if self.num_partitions <= 0:
            raise ValueError("num_partitions must be positive")
        if self.cluster_workers <= 0:
            raise ValueError("cluster_workers must be positive")
        if self.spill_threshold_bytes is not None and self.spill_threshold_bytes <= 0:
            raise ValueError("spill_threshold_bytes must be positive (or None to disable)")
        if self.columnar not in (True, False, "auto"):
            raise ValueError('columnar must be True, False or "auto"')

    def replace(self, **overrides: Any) -> "DiabloConfig":
        """A copy with the given fields changed; unknown names raise TypeError."""
        known = {f.name for f in fields(self)}
        unknown = set(overrides) - known
        if unknown:
            raise TypeError(
                f"unknown DiabloConfig option(s): {', '.join(sorted(unknown))} "
                f"(known: {', '.join(sorted(known))})"
            )
        return replace(self, **overrides)

    def make_context(self) -> DistributedContext:
        """A fresh :class:`DistributedContext` honouring the runtime fields."""
        return DistributedContext.from_config(self)

    def runtime_key(self) -> tuple:
        """The fields that determine runtime behaviour (context reuse key)."""
        return (
            self.executor_mode,
            self.num_partitions,
            self.num_threads,
            self.num_processes,
            self.cluster_workers,
            self.cluster_address,
            self.broadcast_join_threshold,
            self.spill_threshold_bytes,
            self.spill_dir,
            self.plan_optimize,
            self.columnar,
            self.adaptive,
            self.plan_cache,
        )

    def compiler_options(self) -> dict[str, bool]:
        """The fields consumed by :class:`~repro.translate.translator.DiabloCompiler`."""
        return {
            "check_restrictions": self.check_restrictions,
            "optimize": self.optimize,
            "strict": self.strict,
        }


_BASE = DiabloConfig()
_SCOPED: ContextVar[DiabloConfig | None] = ContextVar("diablo_scoped_config", default=None)


def current_config() -> DiabloConfig:
    """The active configuration: the innermost :func:`options` scope, else the base."""
    scoped = _SCOPED.get()
    return scoped if scoped is not None else _BASE


def configure(**overrides: Any) -> DiabloConfig:
    """Change the process-wide default configuration and return it."""
    global _BASE
    _BASE = _BASE.replace(**overrides)
    return _BASE


def reset_config() -> DiabloConfig:
    """Restore the built-in defaults (used by tests)."""
    global _BASE
    _BASE = DiabloConfig()
    return _BASE


@contextlib.contextmanager
def options(**overrides: Any) -> Iterator[DiabloConfig]:
    """Scope configuration overrides to a ``with`` block.

    Overrides compose: nested ``options`` blocks start from the enclosing
    scope's configuration, and the previous configuration is restored on
    exit even when the block raises.
    """
    config = current_config().replace(**overrides)
    token = _SCOPED.set(config)
    try:
        yield config
    finally:
        _SCOPED.reset(token)
