"""Comprehension normalization (Section 3.3, Rule 2 and friends).

Normalization turns the raw comprehensions produced by the Figure 2
translation rules into a flat form that the optimizer and the DISC algebra
compiler can work with:

* **Unnesting (Rule 2).**  A generator whose domain is itself a comprehension
  ``p ← { e2 | q3 }`` is replaced by the inner qualifiers followed by
  ``let p = e2`` (after alpha-renaming the inner binders so they cannot
  capture outer variables).  The rule applies when the inner comprehension has
  no group-by, or when it is the first qualifier.
* **Singleton generators.**  ``p ← { e }`` becomes ``let p = e``.
* **Condition splitting.**  ``e1 && e2`` conditions become two conditions;
  ``true`` conditions are dropped; a ``false`` condition turns the whole
  comprehension into the empty bag.
* **Let inlining.**  ``let x = y`` (alias) and ``let x = c`` (constant) are
  substituted into the remaining qualifiers, unless the variable is used after
  a later group-by (those uses see the *lifted* bag and must keep the binding).
* **Trivial conditions.**  ``x == x`` is dropped.
* **Dead lets.**  Let-bindings whose variables are never used are removed.

``normalize`` is idempotent: running it twice yields the same term.
"""

from __future__ import annotations

from repro.comprehension import ir

#: Upper bound on rewriting passes; normalization converges long before this.
_MAX_PASSES = 50


def normalize(term: ir.Term, fresh: ir.NameGenerator | None = None) -> ir.Term:
    """Normalize a comprehension term (recursively through sub-terms)."""
    fresh = fresh or ir.NameGenerator()
    return _normalize_term(term, fresh)


def _normalize_term(term: ir.Term, fresh: ir.NameGenerator) -> ir.Term:
    if isinstance(term, ir.Comprehension):
        return _normalize_comprehension(term, fresh)
    if isinstance(term, ir.CVar) or isinstance(term, ir.CConst) or isinstance(term, ir.EmptyBag):
        return term
    if isinstance(term, ir.CTuple):
        return ir.CTuple(tuple(_normalize_term(e, fresh) for e in term.elements))
    if isinstance(term, ir.CRecord):
        return ir.CRecord(tuple((n, _normalize_term(e, fresh)) for n, e in term.fields))
    if isinstance(term, ir.CProject):
        return ir.CProject(_normalize_term(term.base, fresh), term.attribute)
    if isinstance(term, ir.CBinOp):
        return ir.CBinOp(term.op, _normalize_term(term.left, fresh), _normalize_term(term.right, fresh))
    if isinstance(term, ir.CUnaryOp):
        return ir.CUnaryOp(term.op, _normalize_term(term.operand, fresh))
    if isinstance(term, ir.CCall):
        return ir.CCall(term.function, tuple(_normalize_term(a, fresh) for a in term.arguments))
    if isinstance(term, ir.Aggregate):
        return ir.Aggregate(term.op, _normalize_term(term.operand, fresh))
    if isinstance(term, ir.Merge):
        return ir.Merge(_normalize_term(term.left, fresh), _normalize_term(term.right, fresh))
    if isinstance(term, ir.MergeWith):
        return ir.MergeWith(
            term.op, _normalize_term(term.left, fresh), _normalize_term(term.right, fresh)
        )
    if isinstance(term, ir.RangeTerm):
        return ir.RangeTerm(_normalize_term(term.lower, fresh), _normalize_term(term.upper, fresh))
    if isinstance(term, ir.InRange):
        return ir.InRange(
            _normalize_term(term.value, fresh),
            _normalize_term(term.lower, fresh),
            _normalize_term(term.upper, fresh),
        )
    raise TypeError(f"unknown term node: {term!r}")


def _normalize_comprehension(comp: ir.Comprehension, fresh: ir.NameGenerator) -> ir.Term:
    # Normalize sub-terms first (bottom-up), then rewrite the qualifier list
    # until no rule applies.
    head = _normalize_term(comp.head, fresh)
    qualifiers = tuple(_normalize_qualifier(q, fresh) for q in comp.qualifiers)
    current = ir.Comprehension(head, qualifiers)
    for _ in range(_MAX_PASSES):
        rewritten, changed = _rewrite_once(current, fresh)
        if isinstance(rewritten, ir.EmptyBag):
            return rewritten
        current = rewritten
        if not changed:
            break
    return current


def _normalize_qualifier(qualifier: ir.Qualifier, fresh: ir.NameGenerator) -> ir.Qualifier:
    if isinstance(qualifier, ir.Generator):
        return ir.Generator(qualifier.pattern, _normalize_term(qualifier.domain, fresh))
    if isinstance(qualifier, ir.LetBinding):
        return ir.LetBinding(qualifier.pattern, _normalize_term(qualifier.term, fresh))
    if isinstance(qualifier, ir.Condition):
        return ir.Condition(_normalize_term(qualifier.term, fresh))
    if isinstance(qualifier, ir.GroupBy):
        # Materialize an omitted key so later passes can rely on it.
        return ir.GroupBy(qualifier.pattern, _normalize_term(qualifier.key_term(), fresh))
    raise TypeError(f"unknown qualifier: {qualifier!r}")


def _rewrite_once(comp: ir.Comprehension, fresh: ir.NameGenerator) -> tuple[ir.Term, bool]:
    """Apply at most one round of qualifier rewrites; report whether anything changed."""
    qualifiers = list(comp.qualifiers)
    changed = False

    # -- Rule 2: unnest generators over comprehensions ------------------------
    unnested: list[ir.Qualifier] = []
    for position, qualifier in enumerate(qualifiers):
        if isinstance(qualifier, ir.Generator) and isinstance(qualifier.domain, ir.Comprehension):
            inner = qualifier.domain
            has_group_by = any(isinstance(q, ir.GroupBy) for q in inner.qualifiers)
            if not has_group_by or position == 0:
                renamed = ir.rename_bound_variables(inner, fresh)
                unnested.extend(renamed.qualifiers)
                unnested.append(ir.LetBinding(qualifier.pattern, renamed.head))
                changed = True
                continue
        unnested.append(qualifier)
    qualifiers = unnested

    # -- split conjunctions, drop 'true', detect 'false' ----------------------
    split: list[ir.Qualifier] = []
    for qualifier in qualifiers:
        if isinstance(qualifier, ir.Condition):
            for conjunct in ir.conjuncts(qualifier.term):
                if isinstance(conjunct, ir.CConst) and conjunct.value is True:
                    changed = True
                    continue
                if isinstance(conjunct, ir.CConst) and conjunct.value is False:
                    return ir.EmptyBag(), True
                if _is_trivial_equality(conjunct):
                    changed = True
                    continue
                if conjunct is not qualifier.term:
                    changed = True
                split.append(ir.Condition(conjunct))
        else:
            split.append(qualifier)
    qualifiers = split

    # -- inline alias / constant lets ------------------------------------------
    inlined, inline_changed = _inline_lets(qualifiers, comp.head)
    qualifiers, head = inlined
    changed = changed or inline_changed

    # -- drop dead lets ---------------------------------------------------------
    qualifiers, dead_changed = _drop_dead_lets(qualifiers, head)
    changed = changed or dead_changed

    return ir.Comprehension(head, tuple(qualifiers)), changed


def _is_trivial_equality(term: ir.Term) -> bool:
    return isinstance(term, ir.CBinOp) and term.op == "==" and term.left == term.right


def _inline_lets(
    qualifiers: list[ir.Qualifier], head: ir.Term
) -> tuple[tuple[list[ir.Qualifier], ir.Term], bool]:
    """Inline ``let x = y`` / ``let x = c`` bindings that are safe to inline.

    A binding is *not* inlined when its variable is used after a later
    group-by: the group-by lifts the variable to a bag, so substituting the
    unlifted term would change the meaning.
    """
    changed = False
    index = 0
    while index < len(qualifiers):
        qualifier = qualifiers[index]
        if (
            isinstance(qualifier, ir.LetBinding)
            and isinstance(qualifier.pattern, ir.PVar)
            and _is_inlinable(qualifier.term)
        ):
            name = qualifier.pattern.name
            if isinstance(qualifier.term, ir.CVar) and qualifier.term.name == name:
                index += 1
                continue
            later = qualifiers[index + 1 :]
            if _used_after_group_by(name, later, head):
                index += 1
                continue
            # A later binder for the same name shadows it; restrict the
            # substitution to the qualifiers before that binder.
            mapping = {name: qualifier.term}
            new_later: list[ir.Qualifier] = []
            shadowed = False
            for later_qualifier in later:
                if shadowed:
                    new_later.append(later_qualifier)
                    continue
                new_later.append(ir.substitute_qualifier(later_qualifier, mapping))
                if name in later_qualifier.bound_variables():
                    shadowed = True
            new_head = head if shadowed else ir.substitute_term(head, mapping)
            qualifiers = qualifiers[:index] + new_later
            head = new_head
            changed = True
            continue
        index += 1
    return (qualifiers, head), changed


def _is_inlinable(term: ir.Term) -> bool:
    """Terms cheap and safe to duplicate at every use: variables, constants and
    closed tuples of those (e.g. the unit key ``()``)."""
    if isinstance(term, (ir.CVar, ir.CConst)):
        return True
    if isinstance(term, ir.CTuple):
        return all(isinstance(e, (ir.CConst, ir.CTuple)) and _is_inlinable(e) for e in term.elements)
    return False


def _used_after_group_by(name: str, later: list[ir.Qualifier], head: ir.Term) -> bool:
    """True when ``name`` is referenced after a group-by in ``later`` (or in the
    head, if any group-by appears in ``later``)."""
    seen_group_by = False
    for qualifier in later:
        if seen_group_by:
            for term in qualifier.terms():
                if name in ir.free_variables(term):
                    return True
        if name in qualifier.bound_variables():
            # Rebound: later uses refer to the new binding.
            return False
        if isinstance(qualifier, ir.GroupBy):
            seen_group_by = True
    if seen_group_by and name in ir.free_variables(head):
        return True
    return False


def _drop_dead_lets(
    qualifiers: list[ir.Qualifier], head: ir.Term
) -> tuple[list[ir.Qualifier], bool]:
    """Remove let-bindings whose variables are never used downstream."""
    changed = False
    result: list[ir.Qualifier] = []
    for index, qualifier in enumerate(qualifiers):
        if isinstance(qualifier, ir.LetBinding):
            names = set(qualifier.pattern.variables())
            used = set(ir.free_variables(head))
            for later in qualifiers[index + 1 :]:
                for term in later.terms():
                    used |= ir.free_variables(term)
                if isinstance(later, ir.GroupBy):
                    # Lifted variables may be consumed implicitly by the
                    # group-by machinery; be conservative and keep bindings
                    # whose names are also group-by pattern variables.
                    used |= set(later.bound_variables())
            if names and not (names & used):
                changed = True
                continue
        result.append(qualifier)
    return result, changed
