"""Monoid comprehension calculus (Section 3.3 of the paper).

Submodules:

* :mod:`repro.comprehension.ir` -- comprehension terms and qualifiers.
* :mod:`repro.comprehension.monoids` -- commutative monoid registry.
* :mod:`repro.comprehension.normalize` -- normalization rules (Rule 2).
* :mod:`repro.comprehension.optimize` -- group-by elimination (Rules 16/17)
  and loop-iteration elimination (Section 3.6).
* :mod:`repro.comprehension.pretty` -- pretty printer for comprehensions.
"""

from repro.comprehension.monoids import (
    ArgMin,
    Avg,
    DEFAULT_MONOIDS,
    Monoid,
    MonoidRegistry,
    argmin_monoid,
    avg_monoid,
)

__all__ = [
    "ArgMin",
    "Avg",
    "DEFAULT_MONOIDS",
    "Monoid",
    "MonoidRegistry",
    "argmin_monoid",
    "avg_monoid",
]
