"""Monoid comprehension intermediate representation (Section 3.3).

A monoid comprehension ``{ e | q1, ..., qn }`` consists of a *head* term ``e``
and a sequence of *qualifiers*:

* a **generator** ``p ← e`` draws elements from the bag ``e`` and binds the
  pattern ``p`` to each element in turn;
* a **let-binding** ``let p = e`` binds ``p`` to the value of ``e``;
* a **condition** ``e`` filters out bindings for which ``e`` is false;
* a **group-by** ``group by p [: e]`` groups all bindings by the key ``e``
  (``p`` when ``e`` is omitted); after the group-by, every pattern variable
  bound before it (other than the key variables) is *lifted* to a bag holding
  all the values in the group.

The comprehension calculus used as the translation target also includes
aggregations ``⊕/e`` (reduce a bag with the monoid ⊕), the array-merging
operator ``X ⊳ Y`` (Section 3.4), and ``range``/``inRange`` terms introduced
when for-loops are embedded as generators (Sections 3.5-3.6).

Everything here is an immutable dataclass, so terms can be compared
structurally in tests and shared freely between rewrite passes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Union

# ---------------------------------------------------------------------------
# Patterns
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Pattern:
    """Base class of binding patterns."""

    def variables(self) -> tuple[str, ...]:
        """The variable names bound by this pattern, left to right."""
        raise NotImplementedError


@dataclass(frozen=True)
class PVar(Pattern):
    """A pattern variable."""

    name: str

    def variables(self) -> tuple[str, ...]:
        return (self.name,)

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class PTuple(Pattern):
    """A tuple pattern ``(p1, ..., pn)``."""

    elements: tuple[Pattern, ...]

    def variables(self) -> tuple[str, ...]:
        names: list[str] = []
        for element in self.elements:
            names.extend(element.variables())
        return tuple(names)

    def __str__(self) -> str:
        return "(" + ", ".join(str(p) for p in self.elements) + ")"


@dataclass(frozen=True)
class PWildcard(Pattern):
    """A wildcard pattern that binds nothing."""

    def variables(self) -> tuple[str, ...]:
        return ()

    def __str__(self) -> str:
        return "_"


def pattern_from_names(*names: str) -> Pattern:
    """Convenience: build ``PVar`` or ``PTuple`` from variable names."""
    if len(names) == 1:
        return PVar(names[0])
    return PTuple(tuple(PVar(n) for n in names))


# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Term:
    """Base class of comprehension terms."""

    def children(self) -> tuple["Term", ...]:
        return ()


@dataclass(frozen=True)
class CVar(Term):
    """A variable reference."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class CConst(Term):
    """A constant."""

    value: Union[int, float, bool, str, None]

    def __str__(self) -> str:
        if isinstance(self.value, bool):
            return "true" if self.value else "false"
        return repr(self.value)


@dataclass(frozen=True)
class CTuple(Term):
    """A tuple construction ``(e1, ..., en)``."""

    elements: tuple[Term, ...]

    def children(self) -> tuple[Term, ...]:
        return self.elements

    def __str__(self) -> str:
        return "(" + ", ".join(str(e) for e in self.elements) + ")"


@dataclass(frozen=True)
class CRecord(Term):
    """A record construction ``<A1 = e1, ...>``."""

    fields: tuple[tuple[str, Term], ...]

    def children(self) -> tuple[Term, ...]:
        return tuple(e for _, e in self.fields)

    def __str__(self) -> str:
        inner = ", ".join(f"{n} = {e}" for n, e in self.fields)
        return f"<{inner}>"


@dataclass(frozen=True)
class CProject(Term):
    """A projection ``e.A`` (record field or ``_k`` tuple position)."""

    base: Term
    attribute: str

    def children(self) -> tuple[Term, ...]:
        return (self.base,)

    def __str__(self) -> str:
        return f"{self.base}.{self.attribute}"


@dataclass(frozen=True)
class CBinOp(Term):
    """A binary operation."""

    op: str
    left: Term
    right: Term

    def children(self) -> tuple[Term, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class CUnaryOp(Term):
    """A unary operation."""

    op: str
    operand: Term

    def children(self) -> tuple[Term, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"{self.op}({self.operand})"


@dataclass(frozen=True)
class CCall(Term):
    """A call to a registered scalar function."""

    function: str
    arguments: tuple[Term, ...]

    def children(self) -> tuple[Term, ...]:
        return self.arguments

    def __str__(self) -> str:
        return f"{self.function}({', '.join(str(a) for a in self.arguments)})"


@dataclass(frozen=True)
class Aggregate(Term):
    """A monoid aggregation ``⊕/e`` that reduces the bag ``e`` with ⊕."""

    op: str
    operand: Term

    def children(self) -> tuple[Term, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"{self.op}/{self.operand}"


@dataclass(frozen=True)
class Merge(Term):
    """The array-merging operation ``X ⊳ Y`` (Section 3.4).

    The result is the union of ``X`` and ``Y`` except that when the same key
    appears in both, the value from ``Y`` wins.
    """

    left: Term
    right: Term

    def children(self) -> tuple[Term, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} <| {self.right})"


@dataclass(frozen=True)
class MergeWith(Term):
    """The ⊕-aware array merge ``X ⊳⊕ Y`` used for incremental updates.

    Like :class:`Merge`, but when a key appears on both sides the two values
    are combined with the commutative monoid ``op`` instead of the right value
    simply replacing the left one.  This is how the cumulative effect of
    ``d ⊕= e`` is folded back into the old array: entries missing from the old
    array behave as if they held the identity of ⊕ (the paper assumes
    zero-initialized arrays).  On Spark both merges are coGroups; here both
    compile to a coGroup over the runtime.
    """

    op: str
    left: Term
    right: Term

    def children(self) -> tuple[Term, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} <|{self.op} {self.right})"


@dataclass(frozen=True)
class RangeTerm(Term):
    """The bag ``range(lower, upper)`` of integers (bounds inclusive)."""

    lower: Term
    upper: Term

    def children(self) -> tuple[Term, ...]:
        return (self.lower, self.upper)

    def __str__(self) -> str:
        return f"range({self.lower}, {self.upper})"


@dataclass(frozen=True)
class InRange(Term):
    """The predicate ``inRange(value, lower, upper)`` (Section 3.6)."""

    value: Term
    lower: Term
    upper: Term

    def children(self) -> tuple[Term, ...]:
        return (self.value, self.lower, self.upper)

    def __str__(self) -> str:
        return f"inRange({self.value}, {self.lower}, {self.upper})"


@dataclass(frozen=True)
class Comprehension(Term):
    """A monoid comprehension ``{ head | qualifiers }``.

    A comprehension with no qualifiers is the singleton bag ``{ head }``.
    """

    head: Term
    qualifiers: tuple["Qualifier", ...] = ()

    def children(self) -> tuple[Term, ...]:
        terms: list[Term] = [self.head]
        for qualifier in self.qualifiers:
            terms.extend(qualifier.terms())
        return tuple(terms)

    def is_singleton(self) -> bool:
        """True for ``{ e | }`` which denotes the singleton bag ``{e}``."""
        return not self.qualifiers

    def __str__(self) -> str:
        if not self.qualifiers:
            return f"{{ {self.head} }}"
        quals = ", ".join(str(q) for q in self.qualifiers)
        return f"{{ {self.head} | {quals} }}"


@dataclass(frozen=True)
class EmptyBag(Term):
    """The empty bag ∅."""

    def __str__(self) -> str:
        return "{}"


def singleton(term: Term) -> Comprehension:
    """The singleton bag ``{ term }``."""
    return Comprehension(term, ())


# ---------------------------------------------------------------------------
# Qualifiers
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Qualifier:
    """Base class of comprehension qualifiers."""

    def terms(self) -> tuple[Term, ...]:
        """The terms mentioned by the qualifier (for generic traversals)."""
        return ()

    def bound_variables(self) -> tuple[str, ...]:
        """The variables bound by this qualifier."""
        return ()


@dataclass(frozen=True)
class Generator(Qualifier):
    """A generator ``pattern ← domain``."""

    pattern: Pattern
    domain: Term

    def terms(self) -> tuple[Term, ...]:
        return (self.domain,)

    def bound_variables(self) -> tuple[str, ...]:
        return self.pattern.variables()

    def __str__(self) -> str:
        return f"{self.pattern} <- {self.domain}"


@dataclass(frozen=True)
class LetBinding(Qualifier):
    """A let-binding ``let pattern = term``."""

    pattern: Pattern
    term: Term

    def terms(self) -> tuple[Term, ...]:
        return (self.term,)

    def bound_variables(self) -> tuple[str, ...]:
        return self.pattern.variables()

    def __str__(self) -> str:
        return f"let {self.pattern} = {self.term}"


@dataclass(frozen=True)
class Condition(Qualifier):
    """A boolean condition qualifier."""

    term: Term

    def terms(self) -> tuple[Term, ...]:
        return (self.term,)

    def __str__(self) -> str:
        return str(self.term)


@dataclass(frozen=True)
class GroupBy(Qualifier):
    """A group-by qualifier ``group by pattern [: key]``.

    When ``key`` is None the key expression is the pattern itself (i.e. the
    pattern variables must already be bound and their values form the key).
    """

    pattern: Pattern
    key: Term | None = None

    def terms(self) -> tuple[Term, ...]:
        if self.key is None:
            return ()
        return (self.key,)

    def bound_variables(self) -> tuple[str, ...]:
        return self.pattern.variables()

    def key_term(self) -> Term:
        """The group-by key expression (the pattern read as a term when omitted)."""
        if self.key is not None:
            return self.key
        return pattern_to_term(self.pattern)

    def __str__(self) -> str:
        if self.key is None:
            return f"group by {self.pattern}"
        return f"group by {self.pattern} : {self.key}"


# ---------------------------------------------------------------------------
# Traversals and helpers
# ---------------------------------------------------------------------------


def pattern_to_term(pattern: Pattern) -> Term:
    """Read a pattern as a term (every pattern variable becomes a variable)."""
    if isinstance(pattern, PVar):
        return CVar(pattern.name)
    if isinstance(pattern, PTuple):
        return CTuple(tuple(pattern_to_term(p) for p in pattern.elements))
    if isinstance(pattern, PWildcard):
        return CConst(None)
    raise TypeError(f"unknown pattern: {pattern!r}")


def walk_terms(term: Term) -> Iterator[Term]:
    """Yield ``term`` and all sub-terms, pre-order (descends into comprehensions)."""
    yield term
    for child in term.children():
        yield from walk_terms(child)


def free_variables(term: Term, bound: frozenset[str] = frozenset()) -> set[str]:
    """Free variables of a term, respecting comprehension binders."""
    if isinstance(term, CVar):
        return set() if term.name in bound else {term.name}
    if isinstance(term, Comprehension):
        names: set[str] = set()
        inner_bound = set(bound)
        for qualifier in term.qualifiers:
            for sub in qualifier.terms():
                names |= free_variables(sub, frozenset(inner_bound))
            inner_bound.update(qualifier.bound_variables())
        names |= free_variables(term.head, frozenset(inner_bound))
        return names
    names = set()
    for child in term.children():
        names |= free_variables(child, bound)
    return names


def qualifier_variables(qualifiers: tuple[Qualifier, ...]) -> list[str]:
    """All variables bound by a sequence of qualifiers, in binding order."""
    names: list[str] = []
    for qualifier in qualifiers:
        names.extend(qualifier.bound_variables())
    return names


def substitute_term(term: Term, mapping: dict[str, Term]) -> Term:
    """Replace free variables of ``term`` according to ``mapping``.

    Comprehension binders shadow outer variables; binders themselves are never
    renamed here (the normalizer guarantees uniqueness of bound names before
    substitution is used across comprehension boundaries).
    """
    if not mapping:
        return term
    if isinstance(term, CVar):
        return mapping.get(term.name, term)
    if isinstance(term, CConst) or isinstance(term, EmptyBag):
        return term
    if isinstance(term, CTuple):
        return CTuple(tuple(substitute_term(e, mapping) for e in term.elements))
    if isinstance(term, CRecord):
        return CRecord(tuple((n, substitute_term(e, mapping)) for n, e in term.fields))
    if isinstance(term, CProject):
        return CProject(substitute_term(term.base, mapping), term.attribute)
    if isinstance(term, CBinOp):
        return CBinOp(term.op, substitute_term(term.left, mapping), substitute_term(term.right, mapping))
    if isinstance(term, CUnaryOp):
        return CUnaryOp(term.op, substitute_term(term.operand, mapping))
    if isinstance(term, CCall):
        return CCall(term.function, tuple(substitute_term(a, mapping) for a in term.arguments))
    if isinstance(term, Aggregate):
        return Aggregate(term.op, substitute_term(term.operand, mapping))
    if isinstance(term, Merge):
        return Merge(substitute_term(term.left, mapping), substitute_term(term.right, mapping))
    if isinstance(term, MergeWith):
        return MergeWith(
            term.op, substitute_term(term.left, mapping), substitute_term(term.right, mapping)
        )
    if isinstance(term, RangeTerm):
        return RangeTerm(substitute_term(term.lower, mapping), substitute_term(term.upper, mapping))
    if isinstance(term, InRange):
        return InRange(
            substitute_term(term.value, mapping),
            substitute_term(term.lower, mapping),
            substitute_term(term.upper, mapping),
        )
    if isinstance(term, Comprehension):
        remaining = dict(mapping)
        new_qualifiers: list[Qualifier] = []
        for qualifier in term.qualifiers:
            new_qualifiers.append(substitute_qualifier(qualifier, remaining))
            for name in qualifier.bound_variables():
                remaining.pop(name, None)
        new_head = substitute_term(term.head, remaining)
        return Comprehension(new_head, tuple(new_qualifiers))
    raise TypeError(f"unknown term node: {term!r}")


def substitute_qualifier(qualifier: Qualifier, mapping: dict[str, Term]) -> Qualifier:
    """Apply a substitution to the terms inside a qualifier."""
    if isinstance(qualifier, Generator):
        return Generator(qualifier.pattern, substitute_term(qualifier.domain, mapping))
    if isinstance(qualifier, LetBinding):
        return LetBinding(qualifier.pattern, substitute_term(qualifier.term, mapping))
    if isinstance(qualifier, Condition):
        return Condition(substitute_term(qualifier.term, mapping))
    if isinstance(qualifier, GroupBy):
        # When the key is omitted it is the pattern read as a term and refers
        # to the *current* bindings of those variables, so it participates in
        # the substitution; materialize it explicitly.
        return GroupBy(qualifier.pattern, substitute_term(qualifier.key_term(), mapping))
    raise TypeError(f"unknown qualifier: {qualifier!r}")


def rename_bound_variables(comp: Comprehension, fresh: "NameGenerator") -> Comprehension:
    """Alpha-rename every variable bound inside ``comp`` to a fresh name.

    Used before unnesting a nested comprehension into an outer one so that the
    inner binders cannot capture outer variables (Rule 2 requires it).
    """
    mapping: dict[str, Term] = {}
    new_qualifiers: list[Qualifier] = []
    for qualifier in comp.qualifiers:
        if isinstance(qualifier, Generator):
            domain = substitute_term(qualifier.domain, mapping)
            pattern, mapping = _rename_pattern(qualifier.pattern, mapping, fresh)
            new_qualifiers.append(Generator(pattern, domain))
        elif isinstance(qualifier, LetBinding):
            term = substitute_term(qualifier.term, mapping)
            pattern, mapping = _rename_pattern(qualifier.pattern, mapping, fresh)
            new_qualifiers.append(LetBinding(pattern, term))
        elif isinstance(qualifier, Condition):
            new_qualifiers.append(Condition(substitute_term(qualifier.term, mapping)))
        elif isinstance(qualifier, GroupBy):
            # When the key is omitted it is the pattern read as a term, which
            # refers to the *previously bound* variables; resolve it under the
            # current renaming before the pattern itself is alpha-renamed.
            key = substitute_term(qualifier.key_term(), mapping)
            pattern, mapping = _rename_pattern(qualifier.pattern, mapping, fresh)
            new_qualifiers.append(GroupBy(pattern, key))
        else:
            raise TypeError(f"unknown qualifier: {qualifier!r}")
    head = substitute_term(comp.head, mapping)
    return Comprehension(head, tuple(new_qualifiers))


def _rename_pattern(
    pattern: Pattern, mapping: dict[str, Term], fresh: "NameGenerator"
) -> tuple[Pattern, dict[str, Term]]:
    new_mapping = dict(mapping)
    if isinstance(pattern, PVar):
        new_name = fresh.fresh(pattern.name)
        new_mapping[pattern.name] = CVar(new_name)
        return PVar(new_name), new_mapping
    if isinstance(pattern, PTuple):
        elements: list[Pattern] = []
        for element in pattern.elements:
            renamed, new_mapping = _rename_pattern(element, new_mapping, fresh)
            elements.append(renamed)
        return PTuple(tuple(elements)), new_mapping
    if isinstance(pattern, PWildcard):
        return pattern, new_mapping
    raise TypeError(f"unknown pattern: {pattern!r}")


class NameGenerator:
    """Produces fresh variable names, deterministically within one pipeline run."""

    def __init__(self, prefix: str = "_v"):
        self.prefix = prefix
        self._counter = itertools.count(1)

    def fresh(self, hint: str = "") -> str:
        index = next(self._counter)
        base = hint.split("$")[0] if hint else "x"
        return f"{base}${index}"


# Convenience constructors -----------------------------------------------------


def equality(left: Term, right: Term) -> Condition:
    """The condition ``left == right``."""
    return Condition(CBinOp("==", left, right))


def conjuncts(term: Term) -> list[Term]:
    """Split a boolean term into its top-level ``&&`` conjuncts."""
    if isinstance(term, CBinOp) and term.op == "&&":
        return conjuncts(term.left) + conjuncts(term.right)
    return [term]
