"""Pretty printer for comprehension terms.

Renders terms in a notation close to the paper's:
``{ (i, j, +/v) | (i, k, m) <- M, (k2, j, n) <- N, k == k2, let v = (m * n), group by (i, j) }``.
"""

from __future__ import annotations

from repro.comprehension import ir


def pretty_term(term: ir.Term) -> str:
    """Render a comprehension term as a single line."""
    return str(term)


def pretty_comprehension(comp: ir.Comprehension, indent: int = 0, width: int = 100) -> str:
    """Render a comprehension, splitting qualifiers over lines when long."""
    single = str(comp)
    if len(single) <= width:
        return single
    pad = " " * (indent + 2)
    lines = [f"{{ {comp.head} |"]
    for index, qualifier in enumerate(comp.qualifiers):
        suffix = "," if index < len(comp.qualifiers) - 1 else ""
        lines.append(f"{pad}{qualifier}{suffix}")
    lines.append(" " * indent + "}")
    return "\n".join(lines)
