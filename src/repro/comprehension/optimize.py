"""Comprehension optimizations (Sections 3.6 and 4 of the paper).

Three rewrites are implemented, in the order the paper applies them:

1. **Loop-iteration elimination** (Section 3.6).  A generator
   ``i ← range(lo, hi)`` joined with an array traversal through an equality
   ``idx == f(i)`` with ``f`` an invertible affine function is replaced by the
   array traversal alone plus the predicate ``inRange(F(idx), lo, hi)`` where
   ``F`` is the right inverse of ``f``.  This removes the join between the
   index range and the array.
2. **Rule (16)** -- group-by elimination for *constant* keys.  Used for total
   aggregations such as ``n += W[i]``: the group-by over the unit key is
   removed and every lifted variable becomes a nested comprehension over the
   pre-group-by qualifiers.
3. **Rule (17)** -- group-by elimination for *unique* (injective) keys.  When
   the group-by key covers every index variable of the generators before it,
   each group is a singleton, so the group-by is removed and lifted variables
   become singleton bags.

The optimizer re-normalizes after each rewrite, so callers get a fully
normalized term back.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.comprehension import ir
from repro.comprehension.normalize import normalize


@dataclass
class OptimizerStats:
    """Counts of rewrites applied; benchmarks use these for ablation reporting."""

    ranges_eliminated: int = 0
    constant_key_group_bys_removed: int = 0
    unique_key_group_bys_removed: int = 0

    def total(self) -> int:
        return (
            self.ranges_eliminated
            + self.constant_key_group_bys_removed
            + self.unique_key_group_bys_removed
        )


class Optimizer:
    """Applies the Section 3.6 / Section 4 rewrites to comprehension terms.

    Args:
        array_variables: names of variables known to hold sparse arrays
            (key-value datasets).  Generators over these are "array
            traversals" for the purposes of the rewrites.
        enable_range_elimination: turn Section 3.6 on/off (ablation hook).
        enable_group_by_elimination: turn Rules 16/17 on/off (ablation hook).
    """

    def __init__(
        self,
        array_variables: set[str] | None = None,
        enable_range_elimination: bool = True,
        enable_group_by_elimination: bool = True,
    ):
        self.array_variables = set(array_variables or set())
        self.enable_range_elimination = enable_range_elimination
        self.enable_group_by_elimination = enable_group_by_elimination
        self.stats = OptimizerStats()

    # -- entry points ---------------------------------------------------------

    def optimize(self, term: ir.Term, fresh: ir.NameGenerator | None = None) -> ir.Term:
        """Optimize ``term`` (descending into nested comprehensions)."""
        fresh = fresh or ir.NameGenerator()
        term = normalize(term, fresh)
        return self._optimize_term(term, fresh)

    def _optimize_term(self, term: ir.Term, fresh: ir.NameGenerator) -> ir.Term:
        if isinstance(term, ir.Comprehension):
            return self._optimize_comprehension(term, fresh)
        if not term.children():
            return term
        rebuilt = self._rebuild(term, tuple(self._optimize_term(c, fresh) for c in term.children()))
        return rebuilt

    @staticmethod
    def _rebuild(term: ir.Term, children: tuple[ir.Term, ...]) -> ir.Term:
        """Rebuild a non-comprehension term with new children."""
        if isinstance(term, ir.CTuple):
            return ir.CTuple(children)
        if isinstance(term, ir.CRecord):
            return ir.CRecord(tuple((n, c) for (n, _), c in zip(term.fields, children, strict=False)))
        if isinstance(term, ir.CProject):
            return ir.CProject(children[0], term.attribute)
        if isinstance(term, ir.CBinOp):
            return ir.CBinOp(term.op, children[0], children[1])
        if isinstance(term, ir.CUnaryOp):
            return ir.CUnaryOp(term.op, children[0])
        if isinstance(term, ir.CCall):
            return ir.CCall(term.function, children)
        if isinstance(term, ir.Aggregate):
            return ir.Aggregate(term.op, children[0])
        if isinstance(term, ir.Merge):
            return ir.Merge(children[0], children[1])
        if isinstance(term, ir.MergeWith):
            return ir.MergeWith(term.op, children[0], children[1])
        if isinstance(term, ir.RangeTerm):
            return ir.RangeTerm(children[0], children[1])
        if isinstance(term, ir.InRange):
            return ir.InRange(children[0], children[1], children[2])
        return term

    def _optimize_comprehension(self, comp: ir.Comprehension, fresh: ir.NameGenerator) -> ir.Term:
        # Optimize nested comprehensions inside qualifier domains / head first.
        head = self._optimize_term(comp.head, fresh)
        qualifiers: list[ir.Qualifier] = []
        for qualifier in comp.qualifiers:
            if isinstance(qualifier, ir.Generator):
                qualifiers.append(
                    ir.Generator(qualifier.pattern, self._optimize_term(qualifier.domain, fresh))
                )
            elif isinstance(qualifier, ir.LetBinding):
                qualifiers.append(
                    ir.LetBinding(qualifier.pattern, self._optimize_term(qualifier.term, fresh))
                )
            elif isinstance(qualifier, ir.Condition):
                qualifiers.append(ir.Condition(self._optimize_term(qualifier.term, fresh)))
            elif isinstance(qualifier, ir.GroupBy):
                qualifiers.append(
                    ir.GroupBy(qualifier.pattern, self._optimize_term(qualifier.key_term(), fresh))
                )
            else:
                raise TypeError(f"unknown qualifier: {qualifier!r}")
        current = ir.Comprehension(head, tuple(qualifiers))

        if self.enable_range_elimination:
            current = self._eliminate_ranges(current)
        if self.enable_group_by_elimination:
            current = self._eliminate_group_bys(current, fresh)
        result = normalize(current, fresh)
        return result

    # -- Section 3.6: loop-iteration elimination -------------------------------

    def _eliminate_ranges(self, comp: ir.Comprehension) -> ir.Comprehension:
        changed = True
        while changed:
            changed = False
            qualifiers = list(comp.qualifiers)
            for position, qualifier in enumerate(qualifiers):
                if not isinstance(qualifier, ir.Generator):
                    continue
                if not isinstance(qualifier.domain, ir.RangeTerm):
                    continue
                if not isinstance(qualifier.pattern, ir.PVar):
                    continue
                rewrite = self._try_eliminate_range(comp, position)
                if rewrite is not None:
                    comp = rewrite
                    self.stats.ranges_eliminated += 1
                    changed = True
                    break
        return comp

    def _try_eliminate_range(
        self, comp: ir.Comprehension, range_position: int
    ) -> ir.Comprehension | None:
        qualifiers = list(comp.qualifiers)
        range_generator = qualifiers[range_position]
        assert isinstance(range_generator, ir.Generator)
        assert isinstance(range_generator.domain, ir.RangeTerm)
        assert isinstance(range_generator.pattern, ir.PVar)
        index_name = range_generator.pattern.name
        lower = range_generator.domain.lower
        upper = range_generator.domain.upper

        # Find an equality condition "v == f(index)" (or symmetric) where v is
        # bound by an array generator and f is invertible affine in the index.
        for condition_position, qualifier in enumerate(qualifiers):
            if condition_position <= range_position or not isinstance(qualifier, ir.Condition):
                continue
            term = qualifier.term
            if not (isinstance(term, ir.CBinOp) and term.op == "=="):
                continue
            for this_side, other_side in ((term.left, term.right), (term.right, term.left)):
                inverse = _invert_affine(other_side, index_name, this_side)
                if inverse is None:
                    continue
                if index_name in ir.free_variables(this_side):
                    continue
                anchor = self._binding_position(qualifiers, this_side)
                if anchor is None:
                    continue
                if not self._substitution_is_safe(qualifiers, range_position, anchor, index_name):
                    continue
                # Perform the rewrite: drop the range generator and the
                # condition, substitute the inverse for the index everywhere,
                # and guard with inRange.
                mapping = {index_name: inverse}
                new_qualifiers: list[ir.Qualifier] = []
                for position, existing in enumerate(qualifiers):
                    if position == range_position or position == condition_position:
                        continue
                    new_qualifiers.append(ir.substitute_qualifier(existing, mapping))
                guard = ir.Condition(
                    ir.InRange(
                        ir.substitute_term(inverse, {}),
                        ir.substitute_term(lower, mapping),
                        ir.substitute_term(upper, mapping),
                    )
                )
                insert_at = self._guard_insert_position(new_qualifiers, guard)
                new_qualifiers.insert(insert_at, guard)
                new_head = ir.substitute_term(comp.head, mapping)
                return ir.Comprehension(new_head, tuple(new_qualifiers))
        return None

    def _binding_position(self, qualifiers: list[ir.Qualifier], term: ir.Term) -> int | None:
        """Position after which every free variable of ``term`` is bound."""
        needed = ir.free_variables(term)
        if not needed:
            return 0
        bound: set[str] = set()
        for position, qualifier in enumerate(qualifiers):
            bound.update(qualifier.bound_variables())
            if needed <= bound:
                return position
        return None

    @staticmethod
    def _substitution_is_safe(
        qualifiers: list[ir.Qualifier], range_position: int, anchor: int, index_name: str
    ) -> bool:
        """The index may be replaced only if all its uses occur at or after the
        position where the replacement term's variables are bound."""
        for position, qualifier in enumerate(qualifiers):
            if position == range_position:
                continue
            for term in qualifier.terms():
                if index_name in ir.free_variables(term) and position < anchor:
                    return False
        return True

    @staticmethod
    def _guard_insert_position(qualifiers: list[ir.Qualifier], guard: ir.Condition) -> int:
        """Insert the inRange guard right after its variables become bound."""
        needed = ir.free_variables(guard.term)
        bound: set[str] = set()
        for position, qualifier in enumerate(qualifiers):
            if needed <= bound:
                return position
            bound.update(qualifier.bound_variables())
            if isinstance(qualifier, ir.GroupBy):
                # Never push a guard past a group-by.
                return position
        return len(qualifiers)

    # -- Rules 16 and 17: group-by elimination ----------------------------------

    def _eliminate_group_bys(
        self, comp: ir.Comprehension, fresh: ir.NameGenerator
    ) -> ir.Comprehension:
        qualifiers = list(comp.qualifiers)
        for position, qualifier in enumerate(qualifiers):
            if not isinstance(qualifier, ir.GroupBy):
                continue
            before = qualifiers[:position]
            after = qualifiers[position + 1 :]
            key = qualifier.key_term()
            bound_before = set(ir.qualifier_variables(tuple(before)))
            key_variables = ir.free_variables(key)

            if not (key_variables & bound_before):
                rewritten = self._apply_rule_16(comp, before, qualifier, after)
                self.stats.constant_key_group_bys_removed += 1
                return self._eliminate_group_bys(rewritten, fresh)

            if self._key_is_unique(before, key):
                rewritten = self._apply_rule_17(comp, before, qualifier, after)
                self.stats.unique_key_group_bys_removed += 1
                return self._eliminate_group_bys(rewritten, fresh)
        return comp

    def _lifted_variables(
        self,
        before: list[ir.Qualifier],
        group_by: ir.GroupBy,
        after: list[ir.Qualifier],
        head: ir.Term,
    ) -> list[str]:
        """Variables bound before the group-by that are used after it."""
        used: set[str] = set(ir.free_variables(head))
        for qualifier in after:
            for term in qualifier.terms():
                used |= ir.free_variables(term)
        bound_before = ir.qualifier_variables(tuple(before))
        group_pattern = set(group_by.pattern.variables())
        lifted: list[str] = []
        for name in bound_before:
            if name in group_pattern or name in lifted:
                continue
            if name in used:
                lifted.append(name)
        return lifted

    def _apply_rule_16(
        self,
        comp: ir.Comprehension,
        before: list[ir.Qualifier],
        group_by: ir.GroupBy,
        after: list[ir.Qualifier],
    ) -> ir.Comprehension:
        """Rule (16): constant group-by key -> total aggregation without group-by."""
        lifted = self._lifted_variables(before, group_by, after, comp.head)
        new_qualifiers: list[ir.Qualifier] = [ir.LetBinding(group_by.pattern, group_by.key_term())]
        for name in lifted:
            nested = ir.Comprehension(ir.CVar(name), tuple(before))
            new_qualifiers.append(ir.LetBinding(ir.PVar(name), nested))
        new_qualifiers.extend(after)
        return ir.Comprehension(comp.head, tuple(new_qualifiers))

    def _apply_rule_17(
        self,
        comp: ir.Comprehension,
        before: list[ir.Qualifier],
        group_by: ir.GroupBy,
        after: list[ir.Qualifier],
    ) -> ir.Comprehension:
        """Rule (17): unique group-by key -> singleton groups, drop the group-by."""
        lifted = self._lifted_variables(before, group_by, after, comp.head)
        new_qualifiers: list[ir.Qualifier] = list(before)
        new_qualifiers.append(ir.LetBinding(group_by.pattern, group_by.key_term()))
        for name in lifted:
            new_qualifiers.append(ir.LetBinding(ir.PVar(name), ir.singleton(ir.CVar(name))))
        new_qualifiers.extend(after)
        return ir.Comprehension(comp.head, tuple(new_qualifiers))

    def _key_is_unique(self, before: list[ir.Qualifier], key: ir.Term) -> bool:
        """The key is unique when it covers every index variable of the
        generators before the group-by, and those generators are all array
        traversals or ranges (Section 4)."""
        index_variables: set[str] = set()
        for qualifier in before:
            if not isinstance(qualifier, ir.Generator):
                continue
            domain = qualifier.domain
            if isinstance(domain, ir.RangeTerm):
                index_variables.update(qualifier.pattern.variables())
            elif isinstance(domain, ir.CVar) and domain.name in self.array_variables:
                index = _array_index_pattern(qualifier.pattern)
                if index is None:
                    return False
                index_variables.update(index)
            else:
                # A generator we cannot reason about: be conservative.
                return False
        if not index_variables:
            return False
        key_variables = _affine_key_variables(key)
        if key_variables is None:
            return False
        return index_variables <= key_variables


def _array_index_pattern(pattern: ir.Pattern) -> set[str] | None:
    """The index variables of a key-value generator pattern ``(k, v)``.

    Sparse arrays are bags of ``(key, value)`` pairs, so the pattern must be a
    2-tuple; the key component may itself be a variable or a tuple of
    variables (matrices).
    """
    if not isinstance(pattern, ir.PTuple) or len(pattern.elements) != 2:
        return None
    index = pattern.elements[0]
    if isinstance(index, ir.PVar):
        return {index.name}
    if isinstance(index, ir.PTuple) and all(isinstance(p, ir.PVar) for p in index.elements):
        return {p.name for p in index.elements if isinstance(p, ir.PVar)}
    return None


def _affine_key_variables(key: ir.Term) -> set[str] | None:
    """Variables of a group-by key made of variables / affine components.

    Returns None when the key contains components that are not affine in the
    bound variables (e.g. a projection or a function call), in which case the
    uniqueness test must fail.
    """
    if isinstance(key, ir.CVar):
        return {key.name}
    if isinstance(key, ir.CConst):
        return set()
    if isinstance(key, ir.CTuple):
        names: set[str] = set()
        for element in key.elements:
            sub = _affine_key_variables(element)
            if sub is None:
                return None
            names |= sub
        return names
    if isinstance(key, ir.CBinOp) and key.op in ("+", "-"):
        left = _affine_key_variables(key.left)
        right = _affine_key_variables(key.right)
        if left is None or right is None:
            return None
        return left | right
    if isinstance(key, ir.CBinOp) and key.op == "*":
        # affine only when one side is a constant
        if isinstance(key.left, ir.CConst):
            return _affine_key_variables(key.right)
        if isinstance(key.right, ir.CConst):
            return _affine_key_variables(key.left)
        return None
    return None


def _invert_affine(term: ir.Term, index_name: str, value: ir.Term) -> ir.Term | None:
    """Solve ``term == value`` for the variable ``index_name``.

    Supports the affine forms ``i``, ``i + c``, ``c + i``, ``i - c`` and
    ``c - i`` where ``c`` does not mention ``i``.  Returns the inverse
    expression (in terms of ``value``) or None when ``term`` is not of that
    shape.
    """
    if isinstance(term, ir.CVar) and term.name == index_name:
        return value
    if isinstance(term, ir.CBinOp) and term.op in ("+", "-"):
        left_has = index_name in ir.free_variables(term.left)
        right_has = index_name in ir.free_variables(term.right)
        if left_has and not right_has:
            # (f(i) op c) == value  =>  f(i) == value inv-op c
            inverse_op = "-" if term.op == "+" else "+"
            return _invert_affine(term.left, index_name, ir.CBinOp(inverse_op, value, term.right))
        if right_has and not left_has:
            if term.op == "+":
                # (c + f(i)) == value  =>  f(i) == value - c
                return _invert_affine(term.right, index_name, ir.CBinOp("-", value, term.left))
            # (c - f(i)) == value  =>  f(i) == c - value
            return _invert_affine(term.right, index_name, ir.CBinOp("-", term.left, value))
    return None
