"""Commutative monoids used by incremental updates and aggregations.

Section 3.5 of the paper restricts incremental updates to the form
``d ⊕= e`` where ⊕ is a *commutative* operation: the translation groups the
``e`` values by the destination index and reduces each group with ⊕, and a
DISC group-by does not preserve the original order of the data, so a
non-commutative ⊕ could change the result.

A :class:`Monoid` bundles the operator symbol used in the source program, the
identity element (used when an incremental update targets an array entry that
does not exist yet -- the paper assumes zero-initialized arrays), and the
binary combine function.  The :class:`MonoidRegistry` maps operator symbols to
monoids; programs such as KMeans register custom monoids (``^`` for the
arg-min record, ``^^`` for the running average).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable


@dataclass(frozen=True)
class Monoid:
    """A commutative monoid ``(combine, zero)`` named by an operator symbol.

    Attributes:
        symbol: the operator spelling in the loop language (``+``, ``*``, ...).
        zero: the identity element, or a zero-argument callable producing it
            (use a callable for mutable identities).
        combine: the associative, commutative binary operation.
        commutative: monoids must be commutative to be used in incremental
            updates; the flag exists so tests can construct counter-examples.
        samples: example elements of the monoid's domain, used by the
            registration-time law verifier
            (:mod:`repro.analysis.monoid_laws`) to probe associativity /
            identity / commutativity.  Required in practice for custom record
            types (``ArgMin``, ``Avg``, ...) whose values cannot be derived
            from the identity element alone.
    """

    symbol: str
    zero: Any
    combine: Callable[[Any, Any], Any]
    commutative: bool = True
    samples: tuple[Any, ...] = ()

    def identity(self) -> Any:
        """Return a fresh identity element."""
        if callable(self.zero):
            return self.zero()
        return self.zero

    def reduce(self, values: Any) -> Any:
        """Fold ``values`` with the combine function, starting from identity."""
        result = self.identity()
        for value in values:
            result = self.combine(result, value)
        return result


def _logical_and(a: Any, b: Any) -> Any:
    return bool(a) and bool(b)


def _logical_or(a: Any, b: Any) -> Any:
    return bool(a) or bool(b)


def builtin_monoids() -> dict[str, Monoid]:
    """The monoids that every compiler / interpreter instance knows about."""
    return {
        "+": Monoid("+", 0, lambda a, b: a + b),
        "*": Monoid("*", 1, lambda a, b: a * b),
        "min": Monoid("min", float("inf"), min),
        "max": Monoid("max", float("-inf"), max),
        "&&": Monoid("&&", True, _logical_and),
        "||": Monoid("||", False, _logical_or),
    }


#: Monotonic source of registry identities for compilation-cache keys.
_REGISTRY_COUNTER = itertools.count()


class MonoidRegistry:
    """A mutable mapping from operator symbols to :class:`Monoid` instances."""

    def __init__(self, extra: dict[str, Monoid] | None = None):
        self._monoids: dict[str, Monoid] = builtin_monoids()
        if extra:
            self._monoids.update(extra)
        self._uid = next(_REGISTRY_COUNTER)
        self._version = 0

    def register(self, monoid: Monoid, *, verify: bool = True) -> None:
        """Register (or replace) a monoid under its symbol.

        By default the monoid's laws (associativity, identity, claimed
        commutativity) are probed over sample elements first, and a
        counter-example raises
        :class:`~repro.errors.MonoidLawError` -- a broken monoid produces
        silently wrong distributed results, so registration is the last
        place to catch it.  Pass ``verify=False`` to skip (e.g. when
        deliberately constructing counter-examples in tests).
        """
        if verify:
            # Imported lazily: repro.analysis imports this module.
            from repro.analysis.monoid_laws import require_lawful

            require_lawful(monoid)
        self._monoids[monoid.symbol] = monoid
        self._version += 1

    def fingerprint(self) -> tuple[int, int]:
        """An identity that changes whenever the registry's contents change.

        Used in compilation-cache keys: registering (or replacing) a monoid
        must invalidate translations made under the old registry state, and
        distinct registries never share cache entries.
        """
        return (self._uid, self._version)

    def get(self, symbol: str) -> Monoid:
        """Look up the monoid for ``symbol``; raises ``KeyError`` if unknown."""
        return self._monoids[symbol]

    def __contains__(self, symbol: str) -> bool:
        return symbol in self._monoids

    def is_commutative(self, symbol: str) -> bool:
        """True when ``symbol`` names a registered commutative monoid."""
        monoid = self._monoids.get(symbol)
        return monoid is not None and monoid.commutative

    def symbols(self) -> list[str]:
        """All registered operator symbols."""
        return sorted(self._monoids)

    def copy(self) -> "MonoidRegistry":
        """A shallow copy that can be extended without affecting the original."""
        clone = MonoidRegistry()
        clone._monoids = dict(self._monoids)
        return clone


# A process-wide default registry used when callers do not supply their own.
DEFAULT_MONOIDS = MonoidRegistry()


@dataclass
class ArgMin:
    """The arg-min record used by the KMeans programs (Appendix B).

    ``ArgMin(index, distance)`` combines with another arg-min by keeping the
    record with the smaller distance -- the ``^`` operator of the paper.
    """

    index: int
    distance: float

    def combine(self, other: "ArgMin") -> "ArgMin":
        return self if self.distance <= other.distance else other


@dataclass
class Avg:
    """The running-average record used by the KMeans programs (Appendix B).

    ``Avg(total, count)`` combines with another by component-wise sum -- the
    ``^^`` operator of the paper.  ``value()`` returns the mean.
    """

    sum: Any
    count: int

    def combine(self, other: "Avg") -> "Avg":
        if isinstance(self.sum, tuple):
            merged = tuple(a + b for a, b in zip(self.sum, other.sum, strict=False))
        else:
            merged = self.sum + other.sum
        return Avg(merged, self.count + other.count)

    def value(self) -> Any:
        if self.count == 0:
            return self.sum
        if isinstance(self.sum, tuple):
            return tuple(component / self.count for component in self.sum)
        return self.sum / self.count


def argmin_monoid(large_distance: float = 1e12) -> Monoid:
    """The ``^`` monoid: pick the :class:`ArgMin` with the smaller distance.

    The law-probing samples use *distinct* distances: on a distance tie the
    combine keeps its left argument, so ``^`` is only commutative up to
    tie-breaking -- exactly like ``min`` over incomparable records.  Ties pick
    an arbitrary-but-valid arg-min, which the KMeans programs accept.
    """
    return Monoid(
        "^",
        lambda: ArgMin(0, large_distance),
        lambda a, b: a.combine(b) if isinstance(a, ArgMin) else b,
        samples=(ArgMin(1, 4.0), ArgMin(2, 1.5), ArgMin(3, 9.0), ArgMin(4, 0.25)),
    )


def avg_monoid() -> Monoid:
    """The ``^^`` monoid: merge :class:`Avg` accumulators."""
    return Monoid(
        "^^",
        lambda: Avg((0.0, 0.0), 0),
        lambda a, b: a.combine(b) if isinstance(a, Avg) and a.count else b,
        samples=(Avg((1.0, 2.0), 1), Avg((3.0, -1.0), 2), Avg((0.5, 0.5), 1)),
    )
