"""Scalar operator semantics shared by the local evaluators.

Both the sequential loop interpreter and the distributed term evaluator need
to apply the loop-language binary operators to runtime values; keeping the
table here guarantees the two execution paths agree (which the soundness tests
rely on).
"""

from __future__ import annotations

from typing import Any

from repro.comprehension.monoids import MonoidRegistry
from repro.errors import ExecutionError


def apply_binary(op: str, left: Any, right: Any, monoids: MonoidRegistry | None = None) -> Any:
    """Apply a loop-language binary operator to two values.

    Unknown operators fall back to the monoid registry (custom commutative
    operators such as KMeans' ``^`` / ``^^``).
    """
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if isinstance(left, int) and isinstance(right, int) and right != 0 and left % right == 0:
            return left // right
        return left / right
    if op == "%":
        return left % right
    if op == "==":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    if op == "&&":
        return bool(left) and bool(right)
    if op == "||":
        return bool(left) or bool(right)
    if monoids is not None and op in monoids:
        return monoids.get(op).combine(left, right)
    raise ExecutionError(f"unknown binary operator {op!r}")


def apply_unary(op: str, operand: Any) -> Any:
    """Apply a loop-language unary operator."""
    if op == "-":
        return -operand
    if op == "!":
        return not bool(operand)
    raise ExecutionError(f"unknown unary operator {op!r}")


def project_value(value: Any, attribute: str) -> Any:
    """Project a record field, tuple position (``_k``) or object attribute."""
    if isinstance(value, dict):
        if attribute in value:
            return value[attribute]
        raise ExecutionError(f"record has no field {attribute!r}: {value!r}")
    if isinstance(value, tuple) and attribute.startswith("_"):
        try:
            position = int(attribute[1:]) - 1
        except ValueError as exc:
            raise ExecutionError(f"bad tuple projection {attribute!r}") from exc
        if 0 <= position < len(value):
            return value[position]
        raise ExecutionError(f"tuple projection {attribute!r} out of range for {value!r}")
    if hasattr(value, attribute):
        attr = getattr(value, attribute)
        return attr
    raise ExecutionError(f"cannot project field {attribute!r} from {value!r}")


def update_field(record: Any, attribute: str, value: Any) -> Any:
    """Return a copy of ``record`` with ``attribute`` replaced by ``value``.

    Registered as the ``_update_field`` runtime function used by record-component
    destinations (Equation 14b).
    """
    if isinstance(record, dict):
        updated = dict(record)
        updated[attribute] = value
        return updated
    if isinstance(record, tuple) and attribute.startswith("_"):
        position = int(attribute[1:]) - 1
        items = list(record)
        items[position] = value
        return tuple(items)
    import copy

    clone = copy.copy(record)
    setattr(clone, attribute, value)
    return clone
