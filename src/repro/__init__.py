"""DIABLO reproduction: translation of array-based loops to distributed data-parallel programs.

This package reproduces the system described in Fegaras & Noor,
"Translation of Array-Based Loops to Distributed Data-Parallel Programs"
(VLDB 2020): an imperative, array-based loop language; the Definition 3.1
parallelization restrictions; the Figure 2 translation to monoid
comprehensions; the Section 3.6 / Section 4 comprehension optimizations; and a
local DISC (Spark-like) runtime that executes the generated dataflow.

Quickstart (classic facade)::

    from repro import Diablo, DistributedContext

    with Diablo(DistributedContext(num_partitions=4)) as diablo:
        program = diablo.compile('''
            var sum: double = 0.0;
            for v in V do
                if (v < 100) sum += v;
        ''')
        result = program.run(V=[1.0, 250.0, 40.0])
        assert result["sum"] == 41.0

Quickstart (jit API)::

    import repro.api as diablo

    @diablo.jit
    def conditional_sum(V):
        total: float = 0.0
        for v in V:
            if v < 100:
                total += v
        return total

    assert conditional_sum([1.0, 250.0, 40.0]) == 41.0

See ``examples/`` for complete scenarios and ``DESIGN.md`` for the system map.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.algebra.runner import ProgramResult, ProgramRunner
from repro.api import (
    Bag,
    DiabloConfig,
    Map,
    Matrix,
    Vector,
    configure,
    current_config,
    jit,
    options,
)
from repro.comprehension.monoids import (
    ArgMin,
    Avg,
    Monoid,
    MonoidRegistry,
    argmin_monoid,
    avg_monoid,
)
from repro.functions import FunctionRegistry
from repro.loop_lang import ast
from repro.loop_lang.interpreter import Interpreter, interpret_program
from repro.loop_lang.parser import parse_program
from repro.loop_lang.python_frontend import from_python_function, from_python_source
from repro.runtime.context import DistributedContext
from repro.runtime.dataset import Dataset
from repro.translate.cache import CacheInfo
from repro.translate.translator import DiabloCompiler, TranslationResult

__version__ = "1.1.0"

__all__ = [
    "Diablo",
    "CompiledProgram",
    "DiabloCompiler",
    "DiabloConfig",
    "DistributedContext",
    "Dataset",
    "Interpreter",
    "interpret_program",
    "parse_program",
    "from_python_function",
    "from_python_source",
    "jit",
    "options",
    "configure",
    "current_config",
    "Vector",
    "Matrix",
    "Map",
    "Bag",
    "CacheInfo",
    "FunctionRegistry",
    "MonoidRegistry",
    "Monoid",
    "ArgMin",
    "Avg",
    "argmin_monoid",
    "avg_monoid",
    "ProgramResult",
    "TranslationResult",
    "ast",
]


@dataclass
class CompiledProgram:
    """A loop program translated to DISC target code, ready to run.

    Produced by :meth:`Diablo.compile`; call :meth:`run` with the program's
    input variables (arrays as dicts / lists / Datasets, scalars as plain
    values).
    """

    translation: TranslationResult
    runner: ProgramRunner

    @property
    def target(self):
        """The generated target code (bulk assignments over comprehensions)."""
        return self.translation.target

    def run(self, **inputs: Any) -> ProgramResult:
        """Execute the translated program over the given inputs."""
        return self.runner.run(self.translation.target, inputs)

    def run_with(self, inputs: dict[str, Any]) -> ProgramResult:
        """Like :meth:`run` but with inputs supplied as a dict."""
        return self.runner.run(self.translation.target, inputs)

    def explain(self) -> str:
        """A textual summary of the generated target code."""
        return str(self.translation.target)


class Diablo:
    """The classic facade, now a thin compatibility layer over :mod:`repro.api`.

    Configuration is consolidated in :class:`DiabloConfig`: when ``context``
    is omitted one is built from the active configuration (honouring
    ``with repro.options(...)`` scopes), and the compiler options default to
    the configuration's values.  Explicit arguments win over the config.
    Translations go through the compiler's keyed compilation cache, so
    re-compiling the same source is free (see :meth:`cache_info`).

    Args:
        context: the distributed context to execute on (built from ``config``
            when omitted).
        functions: scalar function registry shared by compilation and
            execution (register program-specific helpers here).
        monoids: commutative monoid registry (register custom ⊕ operators
            here, e.g. KMeans' arg-min / average monoids).
        check_restrictions: reject programs violating Definition 3.1
            (None = take from ``config``).
        optimize: apply the Section 3.6 / Section 4 rewrites
            (None = take from ``config``).
        config: the unified configuration (default: the active
            :func:`repro.api.current_config`).
    """

    def __init__(
        self,
        context: DistributedContext | None = None,
        functions: FunctionRegistry | None = None,
        monoids: MonoidRegistry | None = None,
        check_restrictions: bool | None = None,
        optimize: bool | None = None,
        config: DiabloConfig | None = None,
    ):
        base = config or current_config()
        overrides: dict[str, bool] = {}
        if check_restrictions is not None:
            overrides["check_restrictions"] = check_restrictions
        if optimize is not None:
            overrides["optimize"] = optimize
        self.config = base.replace(**overrides) if overrides else base
        self.context = context if context is not None else self.config.make_context()
        self.functions = functions or FunctionRegistry()
        self.monoids = monoids or MonoidRegistry()
        self.compiler = DiabloCompiler(monoids=self.monoids, **self.config.compiler_options())
        self.runner = ProgramRunner(self.context, self.functions, self.monoids)

    def compile(self, source: str | ast.Program | Callable) -> CompiledProgram:
        """Translate a loop program (text, AST, or Python function) to DISC code."""
        translation = self.compiler.compile(source)
        return CompiledProgram(translation, self.runner)

    def run(self, source: str | ast.Program | Callable, **inputs: Any) -> ProgramResult:
        """Compile and immediately run a loop program."""
        return self.compile(source).run(**inputs)

    def cache_info(self) -> CacheInfo:
        """Hit/miss counters of this facade's compilation cache."""
        return self.compiler.cache_info()

    def cache_clear(self) -> None:
        """Drop every cached translation of this facade's compiler."""
        self.compiler.cache_clear()

    def shutdown(self) -> None:
        """Release the runtime's worker pools (see :meth:`DistributedContext.shutdown`)."""
        self.context.shutdown()

    def __enter__(self) -> "Diablo":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.shutdown()

    def register_function(self, name: str, function: Callable[..., Any]) -> None:
        """Register a scalar function usable from loop programs."""
        self.functions.register(name, function)

    def register_monoid(self, monoid: Monoid) -> None:
        """Register a commutative monoid usable in incremental updates."""
        self.monoids.register(monoid)

    def interpret(self, source: str | ast.Program, env: dict[str, Any] | None = None) -> dict[str, Any]:
        """Run the *sequential* reference interpreter (the correctness oracle)."""
        return interpret_program(source, env, functions=self.functions, monoids=self.monoids)
