"""Plain-text rendering of experiment results (tables and series)."""

from __future__ import annotations

from typing import Any, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = "") -> str:
    """Render rows as an aligned plain-text table."""
    columns = [[str(h)] + [_cell(row[i]) for row in rows] for i, h in enumerate(headers)]
    widths = [max(len(value) for value in column) for column in columns]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(str(h).ljust(width) for h, width in zip(headers, widths, strict=False))
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append("  ".join(_cell(value).ljust(width) for value, width in zip(row, widths, strict=False)))
    return "\n".join(lines)


def _cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.1f}"
        if abs(value) >= 0.01:
            return f"{value:.3f}"
        return f"{value:.5f}"
    return str(value)


def format_series(
    title: str, x_label: str, series: dict[str, list[tuple[Any, float]]]
) -> str:
    """Render one figure panel: per-series (x, seconds) points."""
    lines = [title]
    for name, points in series.items():
        rendered = ", ".join(f"{x}: {seconds:.3f}s" for x, seconds in points)
        lines.append(f"  {name:<14} {x_label}: {rendered}")
    return "\n".join(lines)
