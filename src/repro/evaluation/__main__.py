"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro.evaluation table1
    python -m repro.evaluation table2
    python -m repro.evaluation figure3 [program ...]
    python -m repro.evaluation all
"""

from __future__ import annotations

import argparse
import sys

from repro.evaluation.figure3 import format_figure3, run_figure3
from repro.evaluation.table1 import format_table1, run_table1
from repro.evaluation.table2 import format_table2, run_table2
from repro.programs import figure3_program_names


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.evaluation",
        description="Regenerate the paper's tables and figures on the local DISC runtime.",
    )
    parser.add_argument(
        "experiment",
        choices=["table1", "table2", "figure3", "all"],
        help="which experiment to run",
    )
    parser.add_argument(
        "programs",
        nargs="*",
        help="optional subset of figure3 programs (panel names such as 'pagerank')",
    )
    parser.add_argument(
        "--no-comparators",
        action="store_true",
        help="skip the MOLD/Casper comparator simulations in table1",
    )
    arguments = parser.parse_args(argv)

    if arguments.experiment in ("table1", "all"):
        rows = run_table1(include_comparators=not arguments.no_comparators)
        print(format_table1(rows))
        print()
    if arguments.experiment in ("table2", "all"):
        rows = run_table2()
        print(format_table2(rows))
        print()
    if arguments.experiment in ("figure3", "all"):
        programs = arguments.programs or figure3_program_names()
        panels = run_figure3(programs)
        print(format_figure3(panels))
    return 0


if __name__ == "__main__":
    sys.exit(main())
