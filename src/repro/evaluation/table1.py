"""Table 1 reproduction: translator running time per benchmark program.

The paper compares the time MOLD, Casper and DIABLO take to *translate* each
of sixteen loop programs (not to run them).  Here the DIABLO column measures
this package's compiler; the MOLD and Casper columns run the comparator
simulators of :mod:`repro.comparators` (see DESIGN.md for the substitution
rationale).  The shape to reproduce: DIABLO succeeds on every program and is
orders of magnitude faster; the comparators are slower and fail on the complex
programs (matrices, iterative algorithms).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.comparators.casper import CasperTranslator
from repro.comparators.mold import MoldTranslator
from repro.evaluation.harness import diablo_for
from repro.evaluation.reporting import format_table
from repro.programs import get_program, table1_program_names
from repro.workloads import workload_for_program


@dataclass
class Table1Row:
    """One row of Table 1: per-translator time (seconds) or a failure marker."""

    program: str
    mold_seconds: float | None
    casper_seconds: float | None
    diablo_seconds: float
    mold_failed: bool = False
    casper_failed: bool = False

    def cells(self) -> list[str]:
        def render(seconds: float | None, failed: bool) -> str:
            if seconds is None:
                return "-"
            if failed:
                return f"fail ({seconds:.2f}s)"
            return f"{seconds:.3f}"

        return [
            self.program,
            render(self.mold_seconds, self.mold_failed),
            render(self.casper_seconds, self.casper_failed),
            f"{self.diablo_seconds:.4f}",
        ]


def run_table1(
    programs: list[str] | None = None,
    mold_budget: int = 50_000,
    casper_budget: int = 8_000,
    include_comparators: bool = True,
) -> list[Table1Row]:
    """Measure translation time for every Table 1 program."""
    names = programs or table1_program_names()
    mold = MoldTranslator(search_budget=mold_budget)
    casper = CasperTranslator(candidate_budget=casper_budget)
    rows: list[Table1Row] = []
    for name in names:
        spec = get_program(name)
        diablo = diablo_for(spec)
        translation = diablo.compiler.compile(spec.source)
        mold_seconds: float | None = None
        casper_seconds: float | None = None
        mold_failed = False
        casper_failed = False
        if include_comparators:
            mold_result = mold.translate(spec.source, name)
            mold_seconds = mold_result.seconds
            mold_failed = not mold_result.succeeded
            casper_result = casper.translate(
                spec.source, name, workload=lambda size, _n=name: workload_for_program(_n, size)
            )
            casper_seconds = casper_result.seconds
            casper_failed = not casper_result.succeeded
        rows.append(
            Table1Row(
                program=spec.title,
                mold_seconds=mold_seconds,
                casper_seconds=casper_seconds,
                diablo_seconds=translation.translation_seconds,
                mold_failed=mold_failed,
                casper_failed=casper_failed,
            )
        )
    return rows


def format_table1(rows: list[Table1Row]) -> str:
    """Render Table 1 as text."""
    return format_table(
        ["test program", "MOLD (sim)", "Casper (sim)", "DIABLO"],
        [row.cells() for row in rows],
        title="Table 1: translation time in seconds (comparators are simulated stand-ins)",
    )
