"""Table 2 reproduction: parallel vs sequential evaluation per program.

In the paper, each loop program is compiled twice -- to Scala parallel
collections and to sequential Scala collections -- and both are run on the
same data.  The substitution here (documented in DESIGN.md): the *parallel*
column runs the translated program on the DISC runtime with the thread-pool
executor, and the *sequential* column runs the original loop program with the
reference interpreter.  The shape to reproduce is that the bulk (parallel)
evaluation wins for most programs while the cheapest shuffling-dominated
programs (Group By, KMeans in the paper) benefit the least.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.evaluation.harness import (
    default_inputs,
    run_sequential_interpreter,
    run_translated,
)
from repro.evaluation.reporting import format_table
from repro.programs import get_program, table2_program_names
from repro.runtime.context import DistributedContext

#: Input sizes per program, scaled to laptop runtimes.
DEFAULT_SIZES: dict[str, int] = {
    "conditional_sum": 20_000,
    "equal": 20_000,
    "string_match": 20_000,
    "word_count": 10_000,
    "histogram": 5_000,
    "linear_regression": 10_000,
    "group_by": 10_000,
    "matrix_addition": 40,
    "matrix_multiplication": 14,
    "pagerank": 120,
    "kmeans": 400,
    "matrix_factorization": 16,
}


@dataclass
class Table2Row:
    """One row of Table 2."""

    program: str
    count: int
    parallel_seconds: float
    sequential_seconds: float

    @property
    def speedup(self) -> float:
        if self.parallel_seconds == 0:
            return float("inf")
        return self.sequential_seconds / self.parallel_seconds

    def cells(self) -> list[str]:
        return [
            self.program,
            str(self.count),
            f"{self.parallel_seconds:.3f}",
            f"{self.sequential_seconds:.3f}",
            f"{self.speedup:.2f}x",
        ]


def run_table2(
    sizes: dict[str, int] | None = None,
    programs: list[str] | None = None,
    num_partitions: int = 4,
) -> list[Table2Row]:
    """Run every Table 2 program in parallel and sequential mode."""
    chosen_sizes = dict(DEFAULT_SIZES)
    if sizes:
        chosen_sizes.update(sizes)
    names = programs or table2_program_names()
    rows: list[Table2Row] = []
    for name in names:
        size = chosen_sizes[name]
        inputs = default_inputs(name, size)
        context = DistributedContext(num_partitions=num_partitions, executor="threads")
        parallel = run_translated(name, inputs, context)
        sequential = run_sequential_interpreter(name, inputs)
        spec = get_program(name)
        rows.append(
            Table2Row(
                program=spec.title,
                count=size,
                parallel_seconds=parallel.seconds,
                sequential_seconds=sequential.seconds,
            )
        )
        context.shutdown()
    return rows


def format_table2(rows: list[Table2Row]) -> str:
    """Render Table 2 as text."""
    return format_table(
        ["test program", "count", "par", "seq", "seq/par"],
        [row.cells() for row in rows],
        title="Table 2: parallel (DISC runtime) vs sequential (interpreter) seconds",
    )
