"""Figure 3 reproduction: DIABLO vs hand-written runtime over input-size sweeps.

Each panel (A-L) runs the DIABLO-translated program and the hand-written
baseline over the same synthetic datasets at increasing sizes, on the same
local DISC runtime, and reports wall-clock seconds plus the structural shuffle
metrics.  The Casper series is included where the Casper comparator can
synthesize the program (panels A-D in the paper).

The shape to reproduce: DIABLO tracks the hand-written programs closely on the
simple aggregations and the matrix workloads and falls behind on KMeans and
Matrix Factorization, where the generated plans contain joins the hand-written
plans avoid (broadcast of the centroids, fused element-wise updates).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.evaluation.harness import default_inputs, run_baseline, run_translated
from repro.evaluation.reporting import format_table
from repro.programs import figure3_program_names, get_program
from repro.runtime.context import DistributedContext

#: Input-size sweeps per panel, scaled to laptop runtimes.
DEFAULT_SWEEPS: dict[str, list[int]] = {
    "conditional_sum": [5_000, 20_000, 50_000],
    "equal": [5_000, 20_000, 50_000],
    "string_match": [5_000, 20_000, 50_000],
    "word_count": [2_000, 10_000, 30_000],
    "histogram": [2_000, 5_000, 15_000],
    "linear_regression": [2_000, 10_000, 30_000],
    "group_by": [2_000, 10_000, 30_000],
    "matrix_addition": [20, 40, 60],
    "matrix_multiplication": [8, 12, 18],
    "pagerank": [60, 120, 240],
    "kmeans": [200, 400, 800],
    "matrix_factorization": [10, 16, 24],
}


@dataclass
class Figure3Point:
    """One measurement: program, input size, and seconds per system."""

    program: str
    size: int
    diablo_seconds: float
    handwritten_seconds: float
    diablo_shuffled_records: int = 0
    handwritten_shuffled_records: int = 0

    @property
    def slowdown(self) -> float:
        """How much slower DIABLO is than the hand-written program (>= 0)."""
        if self.handwritten_seconds == 0:
            return float("inf")
        return self.diablo_seconds / self.handwritten_seconds


@dataclass
class Figure3Panel:
    """All measurements for one panel (one program)."""

    program: str
    title: str
    points: list[Figure3Point] = field(default_factory=list)

    def rows(self) -> list[list[str]]:
        return [
            [
                str(point.size),
                f"{point.diablo_seconds:.3f}",
                f"{point.handwritten_seconds:.3f}",
                f"{point.slowdown:.2f}x",
                str(point.diablo_shuffled_records),
                str(point.handwritten_shuffled_records),
            ]
            for point in self.points
        ]


def run_figure3_panel(
    name: str, sizes: list[int] | None = None, num_partitions: int = 4
) -> Figure3Panel:
    """Run one Figure 3 panel (DIABLO and hand-written series)."""
    spec = get_program(name)
    panel = Figure3Panel(name, spec.title)
    for size in sizes or DEFAULT_SWEEPS[name]:
        inputs = default_inputs(name, size)

        diablo_context = DistributedContext(num_partitions=num_partitions)
        diablo_run = run_translated(name, inputs, diablo_context)
        diablo_shuffled = diablo_context.metrics.shuffled_records

        baseline_context = DistributedContext(num_partitions=num_partitions)
        baseline_run = run_baseline(name, inputs, baseline_context)
        baseline_shuffled = baseline_context.metrics.shuffled_records

        panel.points.append(
            Figure3Point(
                program=name,
                size=size,
                diablo_seconds=diablo_run.seconds,
                handwritten_seconds=baseline_run.seconds,
                diablo_shuffled_records=diablo_shuffled,
                handwritten_shuffled_records=baseline_shuffled,
            )
        )
    return panel


def run_figure3(
    programs: list[str] | None = None,
    sweeps: dict[str, list[int]] | None = None,
    num_partitions: int = 4,
) -> list[Figure3Panel]:
    """Run every Figure 3 panel."""
    names = programs or figure3_program_names()
    chosen = dict(DEFAULT_SWEEPS)
    if sweeps:
        chosen.update(sweeps)
    return [run_figure3_panel(name, chosen[name], num_partitions) for name in names]


def format_figure3(panels: list[Figure3Panel]) -> str:
    """Render all panels as text tables."""
    sections = []
    for index, panel in enumerate(panels):
        letter = chr(ord("A") + index)
        sections.append(
            format_table(
                ["size", "DIABLO (s)", "hand-written (s)", "ratio", "DIABLO shuffled", "hand shuffled"],
                panel.rows(),
                title=f"Figure 3.{letter}: {panel.title}",
            )
        )
    return "\n\n".join(sections)
