"""Shared helpers for the experiment harness and the benchmark suite."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable

from repro import Diablo
from repro.algebra.runner import ProgramResult
from repro.baselines import get_baseline
from repro.programs import ProgramSpec, get_program
from repro.runtime.context import DistributedContext
from repro.workloads import workload_for_program


@dataclass
class TimedRun:
    """A result value together with the wall-clock seconds it took to produce."""

    value: Any
    seconds: float


def time_call(function: Callable[[], Any]) -> TimedRun:
    """Run ``function`` once and measure it."""
    started = time.perf_counter()
    value = function()
    return TimedRun(value, time.perf_counter() - started)


def diablo_for(
    spec: ProgramSpec | str,
    context: DistributedContext | None = None,
    **compiler_options: Any,
) -> Diablo:
    """A :class:`Diablo` instance with the program's functions and monoids registered."""
    if isinstance(spec, str):
        spec = get_program(spec)
    diablo = Diablo(context or DistributedContext(num_partitions=4), **compiler_options)
    for name, function in spec.functions.items():
        diablo.register_function(name, function)
    for monoid in spec.monoids:
        diablo.register_monoid(monoid)
    return diablo


def default_inputs(name: str, size: int) -> dict[str, Any]:
    """The benchmark inputs for program ``name`` at ``size`` (seeded, reproducible)."""
    return workload_for_program(name, size)


def run_translated(
    name: str,
    inputs: dict[str, Any],
    context: DistributedContext | None = None,
    **compiler_options: Any,
) -> TimedRun:
    """Compile and run the DIABLO program; the timing covers execution only."""
    spec = get_program(name)
    diablo = diablo_for(spec, context, **compiler_options)
    compiled = diablo.compile(spec.source)
    return time_call(lambda: compiled.run(**inputs))


def run_baseline(
    name: str, inputs: dict[str, Any], context: DistributedContext | None = None
) -> TimedRun:
    """Run the hand-written distributed baseline for program ``name``."""
    module = get_baseline(name)
    ctx = context or DistributedContext(num_partitions=4)
    return time_call(lambda: module.distributed(ctx, inputs))


def run_sequential_baseline(name: str, inputs: dict[str, Any]) -> TimedRun:
    """Run the plain-Python sequential baseline for program ``name``."""
    module = get_baseline(name)
    return time_call(lambda: module.sequential(inputs))


def run_sequential_interpreter(name: str, inputs: dict[str, Any]) -> TimedRun:
    """Run the loop program sequentially with the reference interpreter."""
    spec = get_program(name)
    diablo = diablo_for(spec)
    return time_call(lambda: diablo.interpret(spec.source, dict(inputs)))


def translated_outputs(name: str, result: ProgramResult) -> dict[str, Any]:
    """Extract the program's declared outputs (scalars plus arrays as dicts)."""
    spec = get_program(name)
    outputs: dict[str, Any] = {}
    for scalar in spec.scalar_outputs:
        outputs[scalar] = result[scalar]
    for array in spec.array_outputs:
        outputs[array] = result.array(array)
    return outputs
