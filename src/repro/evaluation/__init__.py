"""Experiment harness: regenerates every table and figure of the paper.

* :mod:`repro.evaluation.harness` -- shared helpers (build a configured
  Diablo instance per program, timed runs of the translated program, the
  hand-written baseline and the sequential interpreter).
* :mod:`repro.evaluation.table1` -- translator-time comparison (Table 1).
* :mod:`repro.evaluation.table2` -- parallel vs sequential evaluation (Table 2).
* :mod:`repro.evaluation.figure3` -- DIABLO vs hand-written runtime sweeps
  (Figure 3, panels A-L).
* :mod:`repro.evaluation.reporting` -- plain-text table rendering.

Run from the command line::

    python -m repro.evaluation table1
    python -m repro.evaluation table2
    python -m repro.evaluation figure3
"""

from repro.evaluation.harness import (
    diablo_for,
    run_baseline,
    run_sequential_baseline,
    run_sequential_interpreter,
    run_translated,
)
from repro.evaluation.table1 import Table1Row, run_table1
from repro.evaluation.table2 import Table2Row, run_table2
from repro.evaluation.figure3 import Figure3Point, run_figure3_panel, run_figure3
from repro.evaluation.reporting import format_table

__all__ = [
    "diablo_for",
    "run_translated",
    "run_baseline",
    "run_sequential_baseline",
    "run_sequential_interpreter",
    "Table1Row",
    "run_table1",
    "Table2Row",
    "run_table2",
    "Figure3Point",
    "run_figure3_panel",
    "run_figure3",
    "format_table",
]
