"""Pretty printer for loop-language programs.

The printer produces text in the same concrete syntax accepted by the parser,
so ``parse_program(pretty_program(p))`` round-trips (module formatting).
"""

from __future__ import annotations

from repro.loop_lang import ast

_INDENT = "  "


def pretty_type(typ: ast.Type) -> str:
    """Render a type."""
    return str(typ)


def pretty_expr(expr: ast.Expr) -> str:
    """Render an expression in concrete syntax."""
    if isinstance(expr, ast.Const):
        if isinstance(expr.value, bool):
            return "true" if expr.value else "false"
        if isinstance(expr.value, str):
            return '"' + expr.value.replace("\\", "\\\\").replace('"', '\\"') + '"'
        return repr(expr.value)
    if isinstance(expr, ast.Var):
        return expr.name
    if isinstance(expr, ast.Project):
        return f"{pretty_expr(expr.base)}.{expr.attribute}"
    if isinstance(expr, ast.Index):
        indices = ", ".join(pretty_expr(i) for i in expr.indices)
        return f"{pretty_expr(expr.array)}[{indices}]"
    if isinstance(expr, ast.BinOp):
        return f"({pretty_expr(expr.left)} {expr.op} {pretty_expr(expr.right)})"
    if isinstance(expr, ast.UnaryOp):
        return f"{expr.op}{pretty_expr(expr.operand)}"
    if isinstance(expr, ast.TupleExpr):
        return "(" + ", ".join(pretty_expr(e) for e in expr.elements) + ")"
    if isinstance(expr, ast.RecordExpr):
        inner = ", ".join(f"{name} = {pretty_expr(e)}" for name, e in expr.fields)
        return f"<{inner}>"
    if isinstance(expr, ast.Call):
        args = ", ".join(pretty_expr(a) for a in expr.arguments)
        return f"{expr.function}({args})"
    raise TypeError(f"unknown expression node: {expr!r}")


def pretty_stmt(stmt: ast.Stmt, indent: int = 0) -> str:
    """Render a statement with the given indentation level."""
    pad = _INDENT * indent
    if isinstance(stmt, ast.IncrementalUpdate):
        return f"{pad}{pretty_expr(stmt.destination)} {stmt.op}= {pretty_expr(stmt.value)};"
    if isinstance(stmt, ast.Assign):
        return f"{pad}{pretty_expr(stmt.destination)} := {pretty_expr(stmt.value)};"
    if isinstance(stmt, ast.VarDecl):
        return f"{pad}var {stmt.name}: {pretty_type(stmt.type)} = {pretty_expr(stmt.init)};"
    if isinstance(stmt, ast.ForRange):
        header = f"{pad}for {stmt.variable} = {pretty_expr(stmt.lower)}, {pretty_expr(stmt.upper)} do"
        return header + "\n" + pretty_stmt(stmt.body, indent + 1)
    if isinstance(stmt, ast.ForIn):
        header = f"{pad}for {stmt.variable} in {pretty_expr(stmt.source)} do"
        return header + "\n" + pretty_stmt(stmt.body, indent + 1)
    if isinstance(stmt, ast.While):
        header = f"{pad}while ({pretty_expr(stmt.condition)})"
        return header + "\n" + pretty_stmt(stmt.body, indent + 1)
    if isinstance(stmt, ast.If):
        text = f"{pad}if ({pretty_expr(stmt.condition)})\n" + pretty_stmt(stmt.then_branch, indent + 1)
        if stmt.else_branch is not None:
            text += f"\n{pad}else\n" + pretty_stmt(stmt.else_branch, indent + 1)
        return text
    if isinstance(stmt, ast.Block):
        lines = [f"{pad}{{"]
        for inner in stmt.statements:
            lines.append(pretty_stmt(inner, indent + 1))
        lines.append(f"{pad}}}")
        return "\n".join(lines)
    raise TypeError(f"unknown statement node: {stmt!r}")


def pretty_program(program: ast.Program) -> str:
    """Render a complete program."""
    return "\n".join(pretty_stmt(s) for s in program.statements) + "\n"
